"""Persistent classification store: cold-run vs warm-run benchmark.

Four full audits of the same corpus, in order:

1. **baseline** — no store (in-memory caching only);
2. **cold**     — empty ``--cache-dir``: every unique key reaches the
   inner classifier once and is written through to the store;
3. **warm**     — same store, fresh process state: every lookup is
   answered from memory or disk, zero inner-classifier calls;
4. **warm parallel** — same store under ``--jobs N``: worker processes
   share the store file, so every shard reuses verdicts it never
   computed (the cross-process reuse PR 1's in-memory cache could not
   provide).

Invariants asserted on every run, not just measured: all JSON
documents are byte-identical, the warm runs perform zero inner calls,
and (outside ``--quick`` smoke runs, where the margin is noise-sized)
the warm run is faster than the cold run.  The cold and warm timings
are each best-of-two (the two cold runs use two separate stores), so
a single scheduler hiccup cannot flip the comparison.

Runs under pytest (``python -m pytest benchmarks/bench_cache.py``,
``REPRO_BENCH_SCALE`` sets the volume) or standalone
(``python benchmarks/bench_cache.py --quick`` for the CI smoke step).
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro import CorpusConfig, DiffAudit
from repro.datatypes.store import ClassificationStore, store_path_for
from repro.reporting.export import result_to_json

PARALLEL_JOBS = 2


def _timed_run(
    config: CorpusConfig, cache_dir: Path | None, jobs: int = 1
) -> tuple[float, str]:
    start = time.perf_counter()
    result = DiffAudit(config, cache_dir=cache_dir, jobs=jobs).run()
    return time.perf_counter() - start, result_to_json(result)


def _last_run(cache_dir: Path):
    with ClassificationStore(store_path_for(cache_dir)) as store:
        return store.stats()


def run_cache_benchmark(
    scale: float, profile: str = "standard", strict_timing: bool = True
) -> str:
    """Run the audits, assert the invariants, render the report.

    Correctness invariants (byte-identical output, zero warm inner
    calls) are always hard.  The ``warm < cold`` wall-clock comparison
    is hard only with ``strict_timing``: at smoke scales the margin is
    thin enough that a contended CI runner could flip it without any
    real regression, so ``--quick`` downgrades it to a report warning.
    """
    config = CorpusConfig(scale=scale, profile=profile)
    # One tiny untimed run first: module imports and lexicon setup are
    # one-time process costs that would otherwise all land on whichever
    # timed run happens to go first.
    DiffAudit(CorpusConfig(scale=0.001, services=("youtube",))).run()
    workdir = Path(tempfile.mkdtemp(prefix="bench-cache-"))
    try:
        baseline_s, baseline_json = _timed_run(config, None)
        # Cold must start from an empty store each time, so the two
        # cold samples populate two independent store directories; the
        # warm runs then reuse the second one.
        cold_a_s, cold_json = _timed_run(config, workdir / "a")
        cold_b_s, cold_b_json = _timed_run(config, workdir / "b")
        cold_s = min(cold_a_s, cold_b_s)
        cold_stats = _last_run(workdir / "b")
        warm_a_s, warm_json = _timed_run(config, workdir / "b")
        warm_b_s, warm_b_json = _timed_run(config, workdir / "b")
        warm_s = min(warm_a_s, warm_b_s)
        warm_stats = _last_run(workdir / "b")
        warm_par_s, warm_par_json = _timed_run(
            config, workdir / "b", jobs=PARALLEL_JOBS
        )
        warm_par_stats = _last_run(workdir / "b")
        entries = cold_stats.total_entries
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    assert cold_json == baseline_json, "cold cached run diverged from baseline"
    assert cold_b_json == baseline_json, "second cold run diverged"
    assert warm_json == baseline_json, "warm run diverged from baseline"
    assert warm_b_json == baseline_json, "second warm run diverged"
    assert warm_par_json == baseline_json, "warm parallel run diverged"
    assert cold_stats.last_run.misses > 0, "cold run should classify keys"
    assert warm_stats.last_run.misses == 0, "warm run called the inner classifier"
    assert warm_par_stats.last_run.misses == 0, (
        "warm parallel run called the inner classifier"
    )
    timing_warning = None
    if warm_s >= cold_s:
        message = (
            f"warm run ({warm_s:.2f}s, best of 2) not faster than cold "
            f"({cold_s:.2f}s, best of 2)"
        )
        if strict_timing:
            raise AssertionError(message)
        timing_warning = f"WARNING: {message} — runner noise at smoke scale?"

    speedup = cold_s / warm_s if warm_s else float("inf")
    warm = warm_stats.last_run
    lines = [
        "Persistent classification store — cold vs warm audits",
        "",
        f"scale:                {scale}",
        f"profile:              {profile}",
        f"store entries:        {entries}",
        f"baseline (no store):  {baseline_s:.2f} s",
        f"cold  (empty store):  {cold_s:.2f} s, best of 2 "
        f"({cold_stats.last_run.misses} keys classified)",
        f"warm  (jobs=1):       {warm_s:.2f} s, best of 2 "
        f"({warm.store_hits} store hits, 0 classified)",
        f"warm  (jobs={PARALLEL_JOBS}):       {warm_par_s:.2f} s "
        f"({warm_par_stats.last_run.store_hits} store hits, 0 classified)",
        f"warm-vs-cold speedup: {speedup:.2f}x",
        f"warm hit rate:        {warm.hit_rate:.1%}",
        "",
        "results byte-identical: yes (baseline = cold = warm = warm-parallel)",
    ]
    if timing_warning:
        lines += ["", timing_warning]
    return "\n".join(lines)


def test_cache_cold_vs_warm(corpus_config, save_artifact):
    report = run_cache_benchmark(
        scale=corpus_config.scale, profile=corpus_config.profile
    )
    save_artifact("bench_cache.txt", report)
    print(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small corpus for CI smoke runs (scale 0.005)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="corpus scale (default 0.02)"
    )
    args = parser.parse_args(argv)
    scale = 0.005 if args.quick else args.scale
    try:
        report = run_cache_benchmark(scale=scale, strict_timing=not args.quick)
    except AssertionError as exc:
        print(f"benchmark invariant violated: {exc}", file=sys.stderr)
        return 1
    print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
