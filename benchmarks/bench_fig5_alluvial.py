"""Figure 5 — top third-party ATS organizations sent linkable data."""

from repro.linkability.alluvial import alluvial_edges, top_ats_organizations
from repro.reporting import render_fig5

# Organizations named in the paper's Figure 5 that must rank highly.
PAPER_HEAD_ORGS = (
    "Google LLC",
    "PubMatic, Inc.",
    "Amazon Technologies",
    "Adobe Inc.",
)


def compute_edges(result):
    # Recompute from the flow table (the benchmark target); owner
    # resolution uses the entity DB captured in the result's census.
    owner_cache = {}
    for label_set in result.census.per_label_fqdns.values():
        for fqdn in label_set:
            owner_cache.setdefault(fqdn, None)

    def owner_of(service, fqdn):
        from repro.destinations.entities import default_entity_db

        return default_entity_db().owner_of(fqdn)

    return alluvial_edges(result.flows, owner_of)


def test_fig5_alluvial(benchmark, result, save_artifact):
    edges = benchmark.pedantic(compute_edges, args=(result,), rounds=1, iterations=1)
    save_artifact("fig5.txt", render_fig5(edges))

    ranking = [organization for organization, _ in top_ats_organizations(edges)]
    for expected in PAPER_HEAD_ORGS:
        assert expected in ranking[:8], (expected, ranking[:12])
    # YouTube contacts no third parties → contributes no edges.
    assert "youtube" not in {edge.service for edge in edges}
    # Quizlet contacts the most ATS with linkable data (bar width).
    from collections import Counter

    weight_by_service = Counter()
    for edge in edges:
        weight_by_service[edge.service] += edge.weight
    assert weight_by_service.most_common(1)[0][0] == "quizlet"
