"""Table 2 — observed data type categories (19 of 35 starred)."""

from collections import Counter

from repro.ontology.coppa_ccpa import OBSERVED_LEVEL3
from repro.reporting import render_table2


def observed_categories(result, min_support: int = 20):
    support = Counter()
    for observation in result.flows.observations():
        support[observation.level3] += 1
    return {label for label, count in support.items() if count >= min_support}


def test_table2_observed_categories(benchmark, result, save_artifact):
    observed = benchmark(observed_categories, result)
    save_artifact(
        "table2.txt",
        render_table2(result.flows)
        + f"\n\nwell-supported observed categories: {len(observed)} (paper: 19)",
    )
    assert observed == set(OBSERVED_LEVEL3)
