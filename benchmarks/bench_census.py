"""§4.2 — destination census (party classes and organizations).

Paper: 320 first-party, 33 first-party ATS, 150 third-party, 485
third-party ATS domains; at least 212 organizations.
"""

from repro.reporting import render_census


def test_destination_census(benchmark, result, save_artifact):
    census = benchmark(lambda r: r.census, result)
    save_artifact("census.txt", render_census(census))

    assert 240 <= census.first_party <= 360  # paper: 320
    assert 20 <= census.first_party_ats <= 45  # paper: 33
    assert 60 <= census.third_party <= 180  # paper: 150
    assert 400 <= census.third_party_ats <= 560  # paper: 485
    assert census.organizations >= 212  # paper: "at least 212 companies"
    assert census.third_party_ats > census.third_party  # ATS dominate
