"""Figure 4 — sizes of the largest linkable data type sets."""

from repro.linkability.analysis import linkability_matrix, most_common_linkable_set
from repro.model import ALL_COLUMNS, TraceColumn
from repro.reporting import render_fig4

PAPER = {
    "duolingo": (11, 11, 11, 11),
    "minecraft": (9, 10, 11, 8),
    "quizlet": (10, 12, 13, 12),
    "roblox": (8, 9, 8, 8),
    "tiktok": (5, 7, 10, 5),
    "youtube": (0, 0, 0, 0),
}


def test_fig4_largest_linkable_sets(benchmark, result, save_artifact):
    matrix = benchmark(linkability_matrix, result.flows)
    common_set, common_count = most_common_linkable_set(result.flows)
    rendered = render_fig4(matrix)
    save_artifact(
        "fig4.txt",
        rendered
        + "\n\nmost common linkable set "
        + f"({common_count} occurrences): "
        + ", ".join(sorted(level3.value for level3 in common_set))
        + "\n(paper: network connection information, language, service "
        "information, app or service usage, device information)",
    )

    for service, expected in PAPER.items():
        measured = tuple(
            matrix[(service, column)].largest_set_size for column in ALL_COLUMNS
        )
        assert measured == expected, (service, measured, expected)
    # §4.2: largest overall set is Quizlet/adult with 13 types.
    assert matrix[("quizlet", TraceColumn.ADULT)].largest_set_size == 13
    assert len(common_set) == 5  # the paper's most common set size
