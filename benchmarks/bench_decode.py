"""Decode throughput: archived PCAPs → plaintext HTTP requests.

Times the cold decode path in isolation — PCAP record walk, frame
parsing, TCP reassembly, TLS decryption, HTTP stream parsing — over
the session-shared generated corpus, through both read APIs:

* **streaming** — raw bytes through :class:`repro.net.pcap.PcapReader`
  (the zero-copy path the pipeline uses);
* **eager** — :class:`repro.net.pcap.PcapFile` materializing every
  record (the pre-streaming API, kept for tools and tests).

Parity is asserted, not assumed: both APIs must recover identical
requests from every capture.  Runs under pytest or standalone
(``python benchmarks/bench_decode.py [--quick]``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.capture.decrypt import decrypt_mobile_artifact
from repro.net.pcap import PcapFile


def _load_pcap_units(directory):
    from repro.pipeline.replay import ReplayCorpus

    corpus = ReplayCorpus.scan(directory)
    units = []
    for unit in corpus.units:
        if unit.pcap is None:
            continue
        keylog_text = unit.keylog.read_text(encoding="utf-8") if unit.keylog else ""
        units.append((unit.pcap.read_bytes(), keylog_text))
    return units


def run_decode_benchmark(directory, repeats: int = 2) -> str:
    units = _load_pcap_units(directory)
    assert units, f"no .pcap artifacts in {directory}"
    total_bytes = sum(len(raw) for raw, _ in units)

    streaming_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        streaming = [decrypt_mobile_artifact(raw, keylog) for raw, keylog in units]
        streaming_s = min(streaming_s, time.perf_counter() - start)

    eager_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        eager = [
            decrypt_mobile_artifact(PcapFile.from_bytes(raw), keylog)
            for raw, keylog in units
        ]
        eager_s = min(eager_s, time.perf_counter() - start)

    assert streaming == eager, "streaming and eager decode disagree"
    requests = sum(len(d.requests) for d in streaming)
    lines = [
        "PCAP decode — streaming (zero-copy) vs eager API",
        "",
        f"captures:            {len(units)}",
        f"pcap bytes:          {total_bytes:,}",
        f"requests recovered:  {requests}",
        f"streaming decode:    {streaming_s:.3f} s "
        f"({total_bytes / streaming_s / 1e6:.2f} MB/s)",
        f"eager decode:        {eager_s:.3f} s "
        f"({total_bytes / eager_s / 1e6:.2f} MB/s)",
        f"streaming vs eager:  {eager_s / streaming_s:.2f}x",
        "",
        "results identical: yes (streaming == eager, per capture)",
    ]
    return "\n".join(lines)


def test_decode_throughput(generated_corpus, save_artifact):
    report = run_decode_benchmark(generated_corpus.directory)
    save_artifact("bench_decode.txt", report)
    print(report)


def main(argv: list[str] | None = None) -> int:
    import tempfile

    from repro import CorpusConfig
    from repro.pipeline.engine import generate_corpus_artifacts

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small corpus for CI smoke runs"
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="corpus scale (default 0.02)"
    )
    args = parser.parse_args(argv)
    scale = 0.005 if args.quick else args.scale
    with tempfile.TemporaryDirectory(prefix="bench-decode-") as workdir:
        generate_corpus_artifacts(CorpusConfig(scale=scale), workdir)
        try:
            report = run_decode_benchmark(workdir)
        except AssertionError as exc:
            print(f"benchmark invariant violated: {exc}", file=sys.stderr)
            return 1
    print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
