"""Streaming audit throughput and parity: batch vs streamed-to-EOF.

Times the incremental decode path (packet-at-a-time reassembly → TLS
→ HTTP with the default eviction policy) against the batch decoder
over the session-shared generated corpus, and asserts — not assumes —
that streaming a capture to EOF recovers identical results, while
reporting the decoder's buffering high-water mark (the bounded-memory
half of the trade).

Runs under pytest or standalone
(``python benchmarks/bench_stream.py [--quick]``).
"""

from __future__ import annotations

import argparse
import sys
import time


def _load_pcap_units(directory):
    from repro.pipeline.replay import ReplayCorpus

    corpus = ReplayCorpus.scan(directory)
    units = []
    for unit in corpus.units:
        if unit.pcap is None:
            continue
        keylog_text = unit.keylog.read_text(encoding="utf-8") if unit.keylog else ""
        units.append((unit.pcap.read_bytes(), keylog_text))
    return units


def run_stream_benchmark(directory, repeats: int = 2) -> str:
    from repro.capture.decrypt import decrypt_mobile_artifact
    from repro.net.pcap import PcapReader
    from repro.net.tls import KeyLog
    from repro.stream.incremental import IncrementalTraceDecoder

    units = _load_pcap_units(directory)
    assert units, f"no .pcap artifacts in {directory}"
    total_bytes = sum(len(raw) for raw, _ in units)
    keylogs = [KeyLog.from_text(text) for _, text in units]

    def fingerprint(decryption):
        return (
            [(r.flow, r.request.to_bytes()) for r in decryption.requests],
            [(o.host, o.frame_count) for o in decryption.opaque],
            decryption.packet_count,
            decryption.flow_count,
            decryption.undecryptable_flows,
        )

    batch_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        batch = [decrypt_mobile_artifact(raw, keylog) for (raw, keylog) in units]
        batch_s = min(batch_s, time.perf_counter() - start)

    stream_s = float("inf")
    high_water = 0
    for _ in range(repeats):
        start = time.perf_counter()
        streamed = []
        high_water = 0
        for (raw, _), keylog in zip(units, keylogs):
            decoder = IncrementalTraceDecoder(keylog)
            reader = PcapReader(raw)
            for record in reader.iter_packets():
                decoder.feed(record.timestamp, record.data)
            streamed.append(decoder.finish())
            high_water = max(high_water, decoder.high_water_bytes)
            reader.close()
        stream_s = min(stream_s, time.perf_counter() - start)

    assert [fingerprint(d) for d in streamed] == [
        fingerprint(d) for d in batch
    ], "streamed-to-EOF decode disagrees with batch decode"
    requests = sum(len(d.requests) for d in batch)
    lines = [
        "Streaming decode — packet-at-a-time vs batch",
        "",
        f"captures:             {len(units)}",
        f"pcap bytes:           {total_bytes:,}",
        f"requests recovered:   {requests}",
        f"batch decode:         {batch_s:.3f} s "
        f"({total_bytes / batch_s / 1e6:.2f} MB/s)",
        f"streamed decode:      {stream_s:.3f} s "
        f"({total_bytes / stream_s / 1e6:.2f} MB/s)",
        f"stream vs batch:      {batch_s / stream_s:.2f}x",
        f"buffering high water: {high_water:,} bytes "
        f"({high_water / max(1, total_bytes):.1%} of corpus)",
        "",
        "results identical: yes (streamed == batch, per capture)",
    ]
    return "\n".join(lines)


def test_stream_throughput(generated_corpus, save_artifact):
    report = run_stream_benchmark(generated_corpus.directory)
    save_artifact("bench_stream.txt", report)
    print(report)


def main(argv: list[str] | None = None) -> int:
    import tempfile

    from repro import CorpusConfig
    from repro.pipeline.engine import generate_corpus_artifacts

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small corpus for CI smoke runs"
    )
    parser.add_argument(
        "--scale", type=float, default=0.02, help="corpus scale (default 0.02)"
    )
    args = parser.parse_args(argv)
    scale = 0.005 if args.quick else args.scale
    with tempfile.TemporaryDirectory(prefix="bench-stream-") as workdir:
        generate_corpus_artifacts(CorpusConfig(scale=scale), workdir)
        try:
            report = run_stream_benchmark(workdir)
        except AssertionError as exc:
            print(f"benchmark invariant violated: {exc}", file=sys.stderr)
            return 1
    print(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
