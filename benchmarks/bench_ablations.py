"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. ATS decision rule: any-list (paper) vs majority-of-lists.
2. Classification confidence threshold: accuracy/coverage trade-off.
3. Oracle classifier (manual-labeling upper bound) vs the default
   majority-vote pipeline.
4. Entity database coverage: how unknown-owner rates grow as the
   Tracker-Radar stand-in loses tail coverage.
"""

import pytest

from repro import CorpusConfig, DiffAudit
from repro.datatypes.majority import MajorityVoteClassifier
from repro.datatypes.validation import draw_sample
from repro.destinations.blocklists import default_blocklists
from repro.destinations.dataset import default_universe
from repro.destinations.entities import EntityDatabase
from repro.flows.builder import GroundTruthClassifier
from repro.model import ALL_COLUMNS
from repro.reporting.tables import render_table
from repro.services.payloads import PayloadFactory


def test_ablation_blocklist_rule(benchmark, save_artifact):
    """Any-list vs majority rule over every universe ATS host."""
    universe = default_universe()
    collection = default_blocklists()
    hosts = universe.all_blocklisted_hosts()

    def classify_all():
        any_rule = sum(1 for host in hosts if collection.is_ats(host))
        majority_rule = sum(1 for host in hosts if collection.is_ats_majority(host))
        return any_rule, majority_rule

    any_rule, majority_rule = benchmark(classify_all)
    save_artifact(
        "ablation_blocklist.txt",
        render_table(
            ["Rule", "ATS hosts flagged", "of"],
            [
                ["any list (paper)", str(any_rule), str(len(hosts))],
                ["majority of lists", str(majority_rule), str(len(hosts))],
            ],
            "Ablation: ATS decision rule",
        ),
    )
    assert any_rule == len(hosts)  # union is complete
    assert majority_rule < any_rule  # majority misses list-tail trackers


def test_ablation_confidence_threshold(benchmark, save_artifact):
    """Accuracy/coverage across thresholds (paper picked 0.8)."""
    factory = PayloadFactory()
    sample = draw_sample(factory.registry.truth)
    classifier = MajorityVoteClassifier(confidence_mode="avg")

    def sweep():
        predictions = classifier.classify_batch(sorted(sample))
        rows = []
        for threshold in (0.5, 0.6, 0.7, 0.8, 0.9, 0.95):
            kept = [p for p in predictions if p.confidence >= threshold]
            correct = sum(1 for p in kept if p.label == sample[p.text])
            rows.append(
                (
                    threshold,
                    correct / len(kept) if kept else 0.0,
                    len(kept) / len(predictions),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        "ablation_threshold.txt",
        render_table(
            ["Threshold", "Accuracy", "Coverage"],
            [[f"{t:.2f}", f"{a:.3f}", f"{c:.3f}"] for t, a, c in rows],
            "Ablation: confidence threshold trade-off",
        ),
    )
    accuracies = [a for _, a, _ in rows]
    coverages = [c for _, _, c in rows]
    assert accuracies == sorted(accuracies)  # monotone up
    assert coverages == sorted(coverages, reverse=True)  # monotone down


@pytest.mark.slow
def test_ablation_oracle_classifier(benchmark, corpus_config, save_artifact):
    """Manual-labeling upper bound: the oracle classifier reproduces
    the linkability matrix at least as exactly as the default model."""
    small = CorpusConfig(
        scale=0.005, services=("tiktok", "duolingo"), seed=corpus_config.seed
    )

    def run_oracle():
        truth = PayloadFactory(seed=small.seed).registry.truth
        oracle = GroundTruthClassifier(truth=truth)
        return DiffAudit(small, classifier=oracle, confidence_threshold=0.5).run()

    oracle_result = benchmark.pedantic(run_oracle, rounds=1, iterations=1)
    default_result = DiffAudit(small).run()

    rows = []
    for service in ("tiktok", "duolingo"):
        for column in ALL_COLUMNS:
            oracle_link = oracle_result.linkability[(service, column)]
            default_link = default_result.linkability[(service, column)]
            rows.append(
                [
                    f"{service}/{column.value}",
                    str(oracle_link.linkable_third_parties),
                    str(default_link.linkable_third_parties),
                ]
            )
    save_artifact(
        "ablation_oracle.txt",
        render_table(
            ["Trace", "Oracle linkable 3Ps", "Default linkable 3Ps"],
            rows,
            "Ablation: oracle vs majority-vote classifier",
        ),
    )
    # The stable-key design makes the default pipeline match the
    # oracle on linkable partner counts.
    for oracle_row in rows:
        assert oracle_row[1] == oracle_row[2], oracle_row


def test_ablation_entity_coverage(benchmark, save_artifact):
    """Unknown-owner rates as Tracker-Radar coverage degrades."""
    universe = default_universe()
    fqdns = universe.ats_fqdns()[:400]

    def sweep():
        rows = []
        for coverage in (1.0, 0.9, 0.5, 0.1):
            db = EntityDatabase(universe, coverage=coverage, seed=3)
            unknown = sum(1 for f in fqdns if db.owner_of(f) is None)
            rows.append((coverage, unknown / len(fqdns)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_artifact(
        "ablation_entity_coverage.txt",
        render_table(
            ["Tracker Radar coverage", "Unknown-owner fraction"],
            [[f"{c:.1f}", f"{u:.3f}"] for c, u in rows],
            "Ablation: entity database coverage",
        ),
    )
    unknown_rates = [u for _, u in rows]
    assert unknown_rates == sorted(unknown_rates)  # degrade monotonically
    assert unknown_rates[0] == 0.0
