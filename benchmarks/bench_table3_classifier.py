"""Table 3 — GPT-4 classification validation.

Regenerates the paper's per-temperature and majority-vote rows:
accuracy plus accuracy/coverage at confidence 0.7/0.8/0.9 on the
manually-labeled 10% sample.
"""

import pytest

from repro.datatypes.gpt4 import temperature_sweep
from repro.datatypes.majority import MajorityVoteClassifier
from repro.datatypes.validation import draw_sample, validate_classifier
from repro.reporting import render_table3
from repro.services.payloads import PayloadFactory

PAPER = {
    "gpt4-t0": 0.72,
    "gpt4-t0.25": 0.74,
    "gpt4-t0.5": 0.69,
    "gpt4-t0.75": 0.66,
    "gpt4-t1": 0.65,
    "gpt4-majority-max": 0.75,
    "gpt4-majority-avg": 0.75,
}


@pytest.fixture(scope="module")
def sample():
    return draw_sample(PayloadFactory().registry.truth)


def run_sweep(sample):
    reports = [validate_classifier(model, sample) for model in temperature_sweep()]
    for mode in ("max", "avg"):
        reports.append(
            validate_classifier(MajorityVoteClassifier(confidence_mode=mode), sample)
        )
    return reports


def test_table3_gpt4_sweep(benchmark, sample, save_artifact):
    reports = benchmark.pedantic(run_sweep, args=(sample,), rounds=1, iterations=1)
    paper_lines = "\n".join(f"  paper {k}: {v:.2f}" for k, v in PAPER.items())
    save_artifact(
        "table3.txt",
        render_table3(reports) + f"\n\nsample n={len(sample)} (paper: 397)\n" + paper_lines,
    )

    by_name = {report.classifier: report for report in reports}
    # Accuracy within ±0.06 of the paper for every row.
    for name, paper_accuracy in PAPER.items():
        assert abs(by_name[name].accuracy - paper_accuracy) <= 0.06, name
    # Temperature decay and majority gain.
    assert by_name["gpt4-t0"].accuracy > by_name["gpt4-t1"].accuracy
    assert by_name["gpt4-majority-avg"].accuracy >= by_name["gpt4-t1"].accuracy
    # Threshold behaviour: accuracy up, coverage down.
    majority = by_name["gpt4-majority-avg"]
    assert majority.at(0.9).accuracy >= majority.at(0.7).accuracy
    assert majority.at(0.9).labeled <= majority.at(0.7).labeled
