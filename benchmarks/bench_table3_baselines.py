"""Table 3 (companion text, §3.2.2) — alternative classifier baselines.

Paper: TF-IDF fuzzy 31%, BERT fuzzy 18%, SetFit few-shot 16%,
zero-shot 4% — all far below the GPT-4 classifier.
"""

import pytest

from repro.datatypes import (
    BertFuzzyClassifier,
    FewShotClassifier,
    MajorityVoteClassifier,
    TfidfFuzzyClassifier,
    ZeroShotClassifier,
)
from repro.datatypes.validation import draw_sample, validate_classifier
from repro.reporting import render_table
from repro.services.payloads import PayloadFactory

PAPER = {
    "fuzzy-tfidf": 0.31,
    "fuzzy-bert": 0.18,
    "few-shot": 0.16,
    "zero-shot": 0.04,
}


@pytest.fixture(scope="module")
def sample():
    return draw_sample(PayloadFactory().registry.truth)


def run_baselines(sample):
    reports = {}
    for classifier in (
        TfidfFuzzyClassifier(),
        BertFuzzyClassifier(),
        FewShotClassifier(),
        ZeroShotClassifier(),
    ):
        reports[classifier.name] = validate_classifier(classifier, sample)
    return reports


def test_table3_baselines(benchmark, sample, save_artifact):
    reports = benchmark.pedantic(run_baselines, args=(sample,), rounds=1, iterations=1)
    majority = validate_classifier(MajorityVoteClassifier(confidence_mode="avg"), sample)
    rows = [
        [name, f"{report.accuracy:.2f}", f"{PAPER[name]:.2f}"]
        for name, report in reports.items()
    ]
    rows.append(["gpt4-majority-avg", f"{majority.accuracy:.2f}", "0.75"])
    save_artifact(
        "table3_baselines.txt",
        render_table(
            ["Classifier", "Measured", "Paper"], rows, "Baseline classifier accuracy"
        ),
    )

    # The paper's ordering: GPT ≫ TF-IDF > BERT ≈ few-shot ≫ zero-shot.
    assert majority.accuracy > reports["fuzzy-tfidf"].accuracy + 0.2
    assert reports["fuzzy-tfidf"].accuracy > reports["fuzzy-bert"].accuracy
    assert reports["fuzzy-bert"].accuracy >= reports["few-shot"].accuracy - 0.05
    assert reports["few-shot"].accuracy > reports["zero-shot"].accuracy
    assert abs(reports["fuzzy-tfidf"].accuracy - 0.31) <= 0.08
    assert reports["zero-shot"].accuracy <= 0.15
