"""Table 5 — the COPPA/CCPA data type ontology itself."""

from repro.reporting import render_table5
from repro.reporting.tables import ontology_statistics


def test_table5_ontology(benchmark, save_artifact):
    rendered = benchmark(render_table5)
    statistics = ontology_statistics()
    save_artifact(
        "table5.txt",
        rendered
        + "\n\nstructure: "
        + ", ".join(f"{k}={v}" for k, v in statistics.items()),
    )
    assert statistics["level1"] == 2
    assert statistics["level2"] == 8
    assert statistics["level3"] == 35
    assert statistics["observed_level3"] == 19
    assert statistics["level4_examples"] >= 300
