"""Sequential-vs-parallel audit engine: wall time and result parity.

Runs the full DiffAudit pipeline twice — once on the in-process
sequential executor (``jobs=1``) and once on the process-pool executor
(``jobs=2``) — and records both wall times.  The speedup tracks the
machine: per-service shards run concurrently, so with C cores and S
services the capture/parse/classify stage approaches ``max(shard)``
instead of ``sum(shard)``; on a single-core box the pool only adds
process overhead and the numbers say so.

Parity is part of the benchmark: both runs must serialize to the same
JSON document, which is the engine's core contract (shard merge in
service-spec order, classification as a pure function of the key).
"""

from __future__ import annotations

import time

from repro import CorpusConfig, DiffAudit
from repro.reporting.export import result_to_json

PARALLEL_JOBS = 2


def _timed_run(config: CorpusConfig, jobs: int) -> tuple[float, str]:
    start = time.perf_counter()
    result = DiffAudit(config, jobs=jobs).run()
    elapsed = time.perf_counter() - start
    return elapsed, result_to_json(result)


def test_parallel_engine_wall_time(corpus_config, save_artifact):
    sequential_s, sequential_json = _timed_run(corpus_config, jobs=1)
    parallel_s, parallel_json = _timed_run(corpus_config, jobs=PARALLEL_JOBS)

    assert sequential_json == parallel_json, "parallel run diverged from sequential"

    speedup = sequential_s / parallel_s if parallel_s else float("inf")
    lines = [
        "Parallel sharded audit engine — wall time",
        "",
        f"scale:              {corpus_config.scale}",
        f"profile:            {corpus_config.profile}",
        f"sequential (jobs=1): {sequential_s:.2f} s",
        f"parallel (jobs={PARALLEL_JOBS}):  {parallel_s:.2f} s",
        f"speedup:            {speedup:.2f}x",
        "",
        "results byte-identical: yes",
    ]
    report = "\n".join(lines)
    save_artifact("bench_parallel_engine.txt", report)
    print(report)
