"""§4.1 — the differential audit's headline findings.

Regenerates the paper's key takeaways: pre-consent processing by all
services, ATS sharing while logged out by all but YouTube, policy
inconsistencies for all but YouTube, and near-identical age grids.
"""

from repro.audit.findings import FindingKind, Severity
from repro.reporting.tables import render_table

SERVICES = ("duolingo", "minecraft", "quizlet", "roblox", "tiktok", "youtube")


def summarize_audits(result):
    rows = []
    for service in SERVICES:
        report = result.audits[service]
        by_severity = report.findings_by_severity()
        child_similarity = next(
            d.similarity for d in report.age_differentials if d.left.value == "child"
        )
        # "Data processing practices that were not disclosed in their
        # privacy policy": a direct contradiction of a quoted
        # commitment, or third-party sharing the policy never mentions.
        strict_inconsistency = any(
            finding.kind is FindingKind.POLICY_INCONSISTENCY
            or (
                finding.kind is FindingKind.UNDISCLOSED_FLOW
                and finding.cell is not None
                and finding.cell.is_share
            )
            for finding in report.findings
        )
        rows.append(
            [
                service,
                str(len(report.findings)),
                str(by_severity.get(Severity.HIGH, 0)),
                "yes" if report.processed_before_consent else "no",
                "yes" if report.shared_with_ats_before_consent else "no",
                "yes" if strict_inconsistency else "no",
                f"{child_similarity:.2f}",
            ]
        )
    return rows


def test_audit_findings(benchmark, result, save_artifact):
    rows = benchmark(summarize_audits, result)
    save_artifact(
        "audit_findings.txt",
        render_table(
            [
                "Service",
                "Findings",
                "High",
                "Pre-consent",
                "ATS@logged-out",
                "Policy issues",
                "Child≈Adult",
            ],
            rows,
            "§4.1 Differential audit summary",
        ),
    )

    by_service = {row[0]: row for row in rows}
    for service in SERVICES:
        # "All of the services engaged in data collection and/or
        # sharing prior to consent and age disclosure."
        assert by_service[service][3] == "yes", service
        # "All but one of the services (YouTube) was observed sharing
        # ... with third party ATS while logged-out."
        assert by_service[service][4] == ("no" if service == "youtube" else "yes")
        # "All but one of the services engaged in data processing
        # practices that were not disclosed in their privacy policy."
        assert by_service[service][5] == ("no" if service == "youtube" else "yes")
        # "No service exhibited significantly different data processing
        # treatment of the child ... compared to the adult users."
        assert float(by_service[service][6]) >= 0.75, service
