"""Shared benchmark fixtures.

``REPRO_BENCH_SCALE`` (default 0.02) sets the traffic volume relative
to the paper's Table 1; structural results (Table 4 grid, Figures 3/4)
are scale-independent, while packet/flow volumes scale linearly.

Every benchmark writes its rendered table/figure to
``benchmarks/results/`` so a run leaves the full set of paper artifacts
on disk.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import CorpusConfig, DiffAudit

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))


@pytest.fixture(scope="session")
def corpus_config() -> CorpusConfig:
    return CorpusConfig(scale=bench_scale())


@pytest.fixture(scope="session")
def result(corpus_config):
    """One full six-service DiffAudit run shared by all benchmarks."""
    return DiffAudit(corpus_config).run()


@pytest.fixture(scope="session")
def save_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / name
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save
