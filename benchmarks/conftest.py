"""Shared benchmark fixtures.

``REPRO_BENCH_SCALE`` (default 0.02) sets the traffic volume relative
to the paper's Table 1; structural results (Table 4 grid, Figures 3/4)
are scale-independent, while packet/flow volumes scale linearly.
``--quick`` (pytest flag, honored uniformly by every ``bench_*.py``
module through the shared ``corpus_config`` fixture) drops the scale
to the CI-smoke volume unless ``REPRO_BENCH_SCALE`` explicitly
overrides it.

One generated artifacts corpus (``generated_corpus``) is shared by
every benchmark module that needs on-disk artifacts — generating it is
the single most expensive setup step, so it happens once per session,
not once per file.

Every benchmark writes its rendered table/figure to
``benchmarks/results/`` so a run leaves the full set of paper artifacts
on disk.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import CorpusConfig, DiffAudit
from repro.pipeline.engine import generate_corpus_artifacts

RESULTS_DIR = Path(__file__).parent / "results"
QUICK_SCALE = 0.005


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help=f"benchmark smoke mode: scale {QUICK_SCALE} unless "
        "REPRO_BENCH_SCALE is set",
    )


def bench_scale(request=None) -> float:
    """The session's corpus scale: env override > --quick > default."""
    env = os.environ.get("REPRO_BENCH_SCALE")
    if env is not None:
        return float(env)
    if request is not None and request.config.getoption("--quick", default=False):
        return QUICK_SCALE
    return 0.02


@pytest.fixture(scope="session")
def corpus_config(request) -> CorpusConfig:
    return CorpusConfig(scale=bench_scale(request))


@dataclass(frozen=True)
class GeneratedCorpus:
    """The session-shared artifacts directory plus its setup timings."""

    directory: Path
    traces: int
    generate_s: float  # wall time of the one generation run


@pytest.fixture(scope="session")
def generated_corpus(corpus_config, tmp_path_factory) -> GeneratedCorpus:
    """One artifacts corpus generated once and shared across modules."""
    directory = tmp_path_factory.mktemp("bench-shared-corpus")
    start = time.perf_counter()
    traces = generate_corpus_artifacts(corpus_config, directory)
    return GeneratedCorpus(
        directory=directory,
        traces=traces,
        generate_s=time.perf_counter() - start,
    )


@pytest.fixture(scope="session")
def result(corpus_config):
    """One full six-service DiffAudit run shared by all benchmarks."""
    return DiffAudit(corpus_config).run()


@pytest.fixture(scope="session")
def save_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> Path:
        path = RESULTS_DIR / name
        path.write_text(text + "\n", encoding="utf-8")
        return path

    return _save
