"""Figure 3 — counts of third parties sent linkable data."""

from repro.linkability.analysis import linkability_matrix
from repro.model import ALL_COLUMNS
from repro.reporting import render_fig3

PAPER = {
    "duolingo": (19, 58, 51, 14),
    "minecraft": (31, 31, 18, 17),
    "quizlet": (31, 219, 234, 160),
    "roblox": (15, 20, 20, 4),
    "tiktok": (2, 6, 5, 3),
    "youtube": (0, 0, 0, 0),
}


def test_fig3_linkable_third_parties(benchmark, result, save_artifact):
    matrix = benchmark(linkability_matrix, result.flows)
    rendered = render_fig3(matrix)
    paper_lines = "\n".join(
        f"  paper {service}: child={a} adolescent={b} adult={c} logged_out={d}"
        for service, (a, b, c, d) in PAPER.items()
    )
    save_artifact("fig3.txt", rendered + "\n\nPaper reference:\n" + paper_lines)

    for service, expected in PAPER.items():
        measured = tuple(
            matrix[(service, column)].linkable_third_parties for column in ALL_COLUMNS
        )
        assert measured == expected, (service, measured, expected)
