"""Table 1 — dataset summary (domains, eSLDs, packets, TCP flows).

Regenerates the paper's per-service dataset statistics.  Packet and
flow volumes scale with ``REPRO_BENCH_SCALE``; domain and eSLD counts
are scale-independent and land within ~10% of the paper's.
"""

from repro.pipeline.corpus import CorpusProcessor
from repro.pipeline.dataset import DatasetSummary
from repro.reporting import render_table1

PAPER_ROWS = {
    "duolingo": (122, 69, 60_909, 1_466),
    "minecraft": (136, 56, 134_852, 2_004),
    "quizlet": (532, 257, 88_102, 6_158),
    "roblox": (152, 24, 103_642, 2_302),
    "tiktok": (80, 14, 32_234, 2_412),
    "youtube": (76, 15, 20_774, 226),
}


def build_dataset_summary(corpus_config) -> DatasetSummary:
    summary = DatasetSummary()
    for trace in CorpusProcessor(config=corpus_config):
        summary.add_trace(trace)
    return summary


def test_table1_dataset_summary(benchmark, corpus_config, save_artifact):
    summary = benchmark.pedantic(
        build_dataset_summary, args=(corpus_config,), rounds=1, iterations=1
    )
    rendered = render_table1(summary)
    paper = "\n".join(
        f"  paper {service}: domains={d} eslds={e} packets={p:,} flows={f:,}"
        for service, (d, e, p, f) in PAPER_ROWS.items()
    )
    save_artifact(
        "table1.txt",
        rendered
        + f"\n\n(volume scale: {corpus_config.scale})\n\nPaper reference:\n"
        + paper,
    )

    # Shape assertions: domain/eSLD counts near the paper's.
    for service, (domains, eslds, _, _) in PAPER_ROWS.items():
        stats = summary.per_service[service]
        assert abs(stats.domain_count - domains) <= max(4, domains * 0.12)
        assert abs(stats.esld_count - eslds) <= max(3, eslds * 0.12)
    assert 850 <= summary.total_domains <= 1_050  # paper: 964
    assert 290 <= summary.total_eslds <= 370  # paper: 326
    # Volume ordering holds at any scale: Minecraft heaviest in
    # packets; Quizlet most TCP flows; YouTube lightest.
    per = summary.per_service
    assert per["quizlet"].tcp_flows == max(s.tcp_flows for s in per.values())
    assert per["youtube"].packets == min(s.packets for s in per.values())
