"""Extension — CNAME-cloaking detection over the simulated universe.

FQDN-level ATS labeling (the paper's §3.2.3 approach) misses trackers
aliased behind first-party subdomains; the uncloaking pass catches
them.  This benchmark quantifies the blind spot.
"""

from repro.destinations.cname import audit_cloaking, default_cloaked_zone
from repro.destinations.party import DestinationLabeler
from repro.reporting.tables import render_table
from repro.services.catalog import service


def _labeler_for(service_key):
    spec = service(service_key)
    return DestinationLabeler(
        service_names=spec.first_party_names,
        first_party_owner=spec.first_party_owner,
    )


def test_cname_cloaking_detection(benchmark, save_artifact):
    verdicts = benchmark(audit_cloaking, _labeler_for)
    zone = default_cloaked_zone()
    rows = [
        [
            verdict.fqdn,
            verdict.hidden_target or "",
            verdict.apparent_party.value,
            verdict.effective_party.value,
            "yes" if verdict.evaded_blocklists else "no",
        ]
        for verdict in verdicts
    ]
    save_artifact(
        "cname_cloaking.txt",
        render_table(
            ["Alias", "Hidden tracker", "Apparent", "Effective", "Evaded lists"],
            rows,
            "Extension: CNAME-cloaked trackers behind first-party subdomains",
        ),
    )
    assert len(verdicts) == len(zone.cloaked_hosts)
    assert all(v.cloaked for v in verdicts)
    # Every cloak evades FQDN-level labeling — the blind spot.
    assert all(v.evaded_blocklists for v in verdicts)
    # Uncloaking reclassifies them all as ATS.
    assert all(v.effective_party.is_ats for v in verdicts)
