"""§3.2.1 — contextual-integrity appropriateness of observed flows.

The paper frames its audit as "a special case of appropriate
information flows in the contextual integrity framework"; this
benchmark materializes that framing: every observed flow judged
against the COPPA/CCPA-derived norm set.
"""

from repro.audit.contextual import summarize
from repro.model import TraceColumn
from repro.reporting.tables import render_table

SERVICES = ("duolingo", "minecraft", "quizlet", "roblox", "tiktok", "youtube")


def judge_corpus(result):
    rows = {}
    for service in SERVICES:
        observations = [
            o for o in result.flows.observations() if o.service == service
        ]
        rows[service] = summarize(observations)
    return rows


def test_contextual_integrity(benchmark, result, save_artifact):
    summaries = benchmark(judge_corpus, result)
    save_artifact(
        "contextual_integrity.txt",
        render_table(
            ["Service", "Appropriate", "Conditional", "Inappropriate", "Inappropriate %"],
            [
                [
                    service,
                    str(s.appropriate),
                    str(s.conditional),
                    str(s.inappropriate),
                    f"{s.inappropriate_fraction:.1%}",
                ]
                for service, s in summaries.items()
            ],
            "Contextual-integrity judgment of observed flows",
        ),
    )

    # Every service has some norm-violating flows (pre-consent at
    # minimum) — the paper's headline.
    for service, summary in summaries.items():
        assert summary.inappropriate > 0, service
    # YouTube is the least norm-violating service by fraction.
    fractions = {
        service: summary.inappropriate_fraction
        for service, summary in summaries.items()
    }
    assert fractions["youtube"] == min(fractions.values())
    # Quizlet ranks among the worst (it shares everything everywhere).
    assert fractions["quizlet"] >= sorted(fractions.values())[-3]
