"""Table 4 — the data-flow grid by age category and platform.

The paper's central result: for every service × level-2 category ×
audit column × flow cell, on which platforms the flow was observed.
Our pipeline reproduces the grid cell-for-cell.
"""

from repro.model import ALL_COLUMNS
from repro.reporting import render_table4
from repro.services.profiles import FLOW_CELLS, LEVEL2_ROWS, all_profiles


def compute_grid(result):
    grids = {}
    for service in result.flows.services():
        grids[service] = result.flows.grid_for(service)
    return grids


def test_table4_grid(benchmark, result, save_artifact):
    grids = benchmark(compute_grid, result)
    save_artifact("table4.txt", render_table4(result.flows))

    total = agreements = 0
    mismatches = []
    for service, profile in all_profiles().items():
        for level2 in LEVEL2_ROWS:
            for column in ALL_COLUMNS:
                for cell in FLOW_CELLS:
                    want = profile.presence(level2, column, cell)
                    got = grids[service][(level2, column, cell)]
                    total += 1
                    if want == got:
                        agreements += 1
                    else:
                        mismatches.append((service, level2, column, cell, want, got))
    save_artifact(
        "table4_agreement.txt",
        f"Table 4 cell agreement vs paper: {agreements}/{total} "
        f"({agreements / total:.1%})\n"
        + "\n".join(str(m) for m in mismatches),
    )
    assert agreements == total, mismatches
