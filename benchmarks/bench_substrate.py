"""Substrate performance micro-benchmarks.

Throughput of the hot paths the pipeline runs at full scale: PCAP
round-trips, TCP reassembly, TLS decryption, eSLD extraction, and
classification.
"""

import random

from repro.datatypes.gpt4 import Gpt4Classifier
from repro.net.pcap import PcapFile, PcapPacket
from repro.net.psl import default_psl
from repro.net.tcp import FlowId, TcpReassembler, segment_request
from repro.net.tls import TlsSession, decrypt_stream, encrypt_stream
from repro.services.payloads import PayloadFactory

FLOW = FlowId(client_ip="10.0.0.1", client_port=40000, server_ip="34.0.0.1", server_port=443)


def test_perf_tcp_segment_and_reassemble(benchmark):
    payload = b"x" * 100_000

    def round_trip():
        frames = segment_request(payload, FLOW, 0.0)
        reassembler = TcpReassembler()
        for frame in frames:
            reassembler.add_frame(frame)
        return reassembler.flows()[0].data

    assert benchmark(round_trip) == payload


def test_perf_pcap_round_trip(benchmark):
    pcap = PcapFile()
    rng = random.Random(1)
    for index in range(500):
        pcap.append(
            PcapPacket(timestamp=index * 0.001, data=rng.randbytes(300))
        )

    def round_trip():
        return PcapFile.from_bytes(pcap.to_bytes())

    assert len(benchmark(round_trip)) == 500


def test_perf_tls_stream(benchmark):
    session = TlsSession.derive(b"bench")
    plaintext = b"A" * 50_000

    def round_trip():
        return decrypt_stream(encrypt_stream(plaintext, session), session)

    assert benchmark(round_trip) == plaintext


def test_perf_esld_extraction(benchmark):
    psl = default_psl()
    hosts = [
        f"sub{i}.tracker{i % 50}.{suffix}"
        for i, suffix in enumerate(["com", "co.uk", "net", "io"] * 125)
    ]

    def extract_all():
        return [psl.extract(host).registered_domain for host in hosts]

    results = benchmark(extract_all)
    assert len(results) == 500


def test_perf_classification_throughput(benchmark):
    factory = PayloadFactory()
    keys = sorted(factory.registry.truth)[:300]
    model = Gpt4Classifier(temperature=0.0)

    def classify_all():
        return [model.classify(key) for key in keys]

    verdicts = benchmark(classify_all)
    assert len(verdicts) == 300
