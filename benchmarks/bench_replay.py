"""Replay throughput vs the in-memory audit, plus the parity check.

Measures the three legs of the artifact pipeline on the same config:

* ``generate`` — write every HAR/PCAP/keylog artifact plus the manifest
  (timed once per session by the shared ``generated_corpus`` fixture);
* in-memory audit — generate → capture → parse → audit in one process
  tree, nothing touching disk;
* replay audit — scan the artifacts directory and audit it
  (``audit --from-artifacts``), mmap-decoding the archived PCAPs.

Replay skips traffic generation and capture encryption but adds file
I/O and (for mobile) PCAP parsing of archived bytes; the throughput
numbers show where that trade lands on this machine.  Parity is part
of the benchmark: the replayed result must serialize to the same JSON
document as the in-memory run — the replay subsystem's core contract.
"""

from __future__ import annotations

import time

from repro import DiffAudit
from repro.reporting.export import result_to_json


def test_replay_throughput(corpus_config, generated_corpus, save_artifact):
    trace_count = generated_corpus.traces
    generate_s = generated_corpus.generate_s

    start = time.perf_counter()
    in_memory = DiffAudit(corpus_config).run()
    in_memory_s = time.perf_counter() - start

    start = time.perf_counter()
    replayed = DiffAudit(corpus_config, replay=generated_corpus.directory).run()
    replay_s = time.perf_counter() - start

    in_memory_json = result_to_json(in_memory)
    replayed_json = result_to_json(replayed)
    assert replayed_json == in_memory_json, "replay diverged from in-memory audit"

    artifact_bytes = sum(
        path.stat().st_size
        for path in generated_corpus.directory.iterdir()
        if path.is_file()
    )
    lines = [
        "Artifact replay — throughput vs in-memory audit",
        "",
        f"scale:               {corpus_config.scale}",
        f"profile:             {corpus_config.profile}",
        f"traces:              {trace_count}",
        f"artifact bytes:      {artifact_bytes:,}",
        f"generate:            {generate_s:.2f} s ({trace_count / generate_s:.1f} traces/s)",
        f"in-memory audit:     {in_memory_s:.2f} s ({trace_count / in_memory_s:.1f} traces/s)",
        f"replay audit:        {replay_s:.2f} s ({trace_count / replay_s:.1f} traces/s)",
        f"replay vs in-memory: {in_memory_s / replay_s:.2f}x",
        "",
        "results byte-identical: yes",
    ]
    save_artifact("bench_replay.txt", "\n".join(lines))
