"""Unit tests for data flow construction and the flow table."""

import json

import pytest

from repro.destinations.party import DestinationLabeler, PartyLabel
from repro.flows import FlowBuilder, FlowObservation, FlowTable, GroundTruthClassifier
from repro.flows.dataflow import cell_for
from repro.model import AgeGroup, FlowCell, Platform, Presence, TraceColumn, TraceKind
from repro.net.http import Header, HttpRequest
from repro.net.url import parse_url
from repro.ontology.nodes import Level2, Level3
from repro.services.catalog import service


def observation(
    level3=Level3.ALIASES,
    fqdn="ads.tracker.example",
    party=PartyLabel.THIRD_PARTY_ATS,
    column=TraceColumn.CHILD,
    platform=Platform.WEB,
    service_name="testsvc",
) -> FlowObservation:
    return FlowObservation(
        service=service_name,
        column=column,
        platform=platform,
        level3=level3,
        fqdn=fqdn,
        esld="tracker.example",
        party=party,
        raw_key="k",
    )


class TestCellMapping:
    @pytest.mark.parametrize(
        "party,cell",
        [
            (PartyLabel.FIRST_PARTY, FlowCell.COLLECT_1ST),
            (PartyLabel.FIRST_PARTY_ATS, FlowCell.COLLECT_1ST_ATS),
            (PartyLabel.THIRD_PARTY, FlowCell.SHARE_3RD),
            (PartyLabel.THIRD_PARTY_ATS, FlowCell.SHARE_3RD_ATS),
        ],
    )
    def test_party_to_cell(self, party, cell):
        assert cell_for(party) is cell


class TestFlowObservation:
    def test_level2_rollup(self):
        assert observation(Level3.COARSE_GEOLOCATION).level2 is Level2.GEOLOCATION

    def test_flow_pair_identity(self):
        pair = observation().flow_pair
        assert pair == (Level3.ALIASES, "ads.tracker.example")


class TestFlowTable:
    def test_presence_aggregation(self):
        table = FlowTable()
        table.add(observation(platform=Platform.WEB))
        assert (
            table.presence("testsvc", Level2.PERSONAL_IDENTIFIERS, TraceColumn.CHILD, FlowCell.SHARE_3RD_ATS)
            is Presence.WEB_ONLY
        )
        table.add(observation(platform=Platform.MOBILE))
        assert (
            table.presence("testsvc", Level2.PERSONAL_IDENTIFIERS, TraceColumn.CHILD, FlowCell.SHARE_3RD_ATS)
            is Presence.BOTH
        )

    def test_desktop_merges_into_web(self):
        table = FlowTable()
        table.add(observation(platform=Platform.DESKTOP))
        assert (
            table.presence("testsvc", Level2.PERSONAL_IDENTIFIERS, TraceColumn.CHILD, FlowCell.SHARE_3RD_ATS)
            is Presence.WEB_ONLY
        )

    def test_absent_cell_is_none(self):
        assert (
            FlowTable().presence("x", Level2.SENSORS, TraceColumn.ADULT, FlowCell.COLLECT_1ST)
            is Presence.NONE
        )

    def test_unique_flows(self):
        table = FlowTable()
        table.add(observation())
        table.add(observation())  # duplicate pair
        table.add(observation(level3=Level3.LANGUAGE))
        assert len(table.unique_flows()) == 2

    def test_third_party_type_sets(self):
        table = FlowTable()
        table.add(observation(level3=Level3.ALIASES))
        table.add(observation(level3=Level3.LANGUAGE))
        table.add(
            observation(
                level3=Level3.NAME,
                fqdn="api.testsvc.example",
                party=PartyLabel.FIRST_PARTY,
            )
        )
        sets = table.third_party_type_sets("testsvc", TraceColumn.CHILD)
        assert sets == {"ads.tracker.example": {Level3.ALIASES, Level3.LANGUAGE}}

    def test_observed_level_sets(self):
        table = FlowTable()
        table.add(observation(level3=Level3.AGE))
        assert table.observed_level3() == {Level3.AGE}
        assert table.observed_level2() == {Level2.PERSONAL_CHARACTERISTICS}

    def test_services_listing(self):
        table = FlowTable()
        table.add(observation(service_name="b"))
        table.add(observation(service_name="a"))
        assert table.services() == ["a", "b"]


class TestGroundTruthClassifier:
    def test_known_key(self):
        oracle = GroundTruthClassifier(truth={"email": Level3.CONTACT_INFORMATION})
        verdict = oracle.classify("email")
        assert verdict.label is Level3.CONTACT_INFORMATION
        assert verdict.confidence == 1.0

    def test_unknown_key(self):
        oracle = GroundTruthClassifier(truth={})
        assert oracle.classify("mystery").label is None


class TestFlowBuilder:
    @pytest.fixture()
    def builder(self):
        truth = {
            "email": Level3.CONTACT_INFORMATION,
            "gaid": Level3.DEVICE_SOFTWARE_IDENTIFIERS,
            "lang": Level3.LANGUAGE,
        }
        return FlowBuilder(classifier=GroundTruthClassifier(truth=truth))

    @pytest.fixture()
    def labeler(self):
        spec = service("roblox")
        return DestinationLabeler(
            service_names=spec.first_party_names,
            first_party_owner=spec.first_party_owner,
        )

    def _request(self, host, body):
        return HttpRequest(
            method="POST",
            url=parse_url(f"https://{host}/x"),
            headers=[Header("Content-Type", "application/json")],
            body=json.dumps(body).encode(),
        )

    def test_flows_constructed(self, builder, labeler):
        request = self._request("ad.doubleclick.net", {"email": "a@b.c", "lang": "en"})
        flows = builder.flows_for_request(
            request,
            labeler,
            service="roblox",
            platform=Platform.WEB,
            kind=TraceKind.LOGGED_IN,
            age=AgeGroup.CHILD,
        )
        assert {f.level3 for f in flows} == {
            Level3.CONTACT_INFORMATION,
            Level3.LANGUAGE,
        }
        assert all(f.party is PartyLabel.THIRD_PARTY_ATS for f in flows)
        assert all(f.column is TraceColumn.CHILD for f in flows)

    def test_unknown_keys_dropped(self, builder, labeler):
        request = self._request("www.roblox.com", {"internal_junk": 1})
        flows = builder.flows_for_request(
            request, labeler, "roblox", Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.ADULT
        )
        assert flows == []

    def test_duplicate_types_collapse_per_request(self, builder, labeler):
        request = self._request("www.roblox.com", {"email": "x", "gaid": "y"})
        request.url = parse_url("https://www.roblox.com/x?email=z")
        flows = builder.flows_for_request(
            request, labeler, "roblox", Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.ADULT
        )
        contact = [f for f in flows if f.level3 is Level3.CONTACT_INFORMATION]
        assert len(contact) == 1

    def test_threshold_filters(self, labeler):
        class HalfConfident:
            name = "half"

            def classify(self, text):
                from repro.datatypes.base import Classification

                return Classification(text=text, label=Level3.AGE, confidence=0.5)

        builder = FlowBuilder(classifier=HalfConfident(), confidence_threshold=0.8)
        request = self._request("www.roblox.com", {"age": 9})
        assert (
            builder.flows_for_request(
                request, labeler, "roblox", Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.CHILD
            )
            == []
        )

    def test_classification_memoized(self, builder, labeler):
        request = self._request("www.roblox.com", {"email": "x"})
        builder.flows_for_request(
            request, labeler, "roblox", Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.ADULT
        )
        assert builder.classified_keys == 1
        builder.flows_for_request(
            request, labeler, "roblox", Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.ADULT
        )
        assert builder.classified_keys == 1
