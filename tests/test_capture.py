"""Unit tests for the capture tooling simulations."""

import pytest

from repro.capture import (
    DevToolsCapture,
    FridaPolicy,
    PcapdroidCapture,
    ProxymanCapture,
    decrypt_mobile_artifact,
)
from repro.model import AgeGroup, Platform, TraceKind
from repro.net.har import har_from_json, har_to_json
from repro.net.pcap import PcapFile
from repro.services import CorpusConfig, TrafficGenerator
from repro.services.catalog import service


@pytest.fixture(scope="module")
def generator():
    return TrafficGenerator(CorpusConfig(scale=0.003))


@pytest.fixture(scope="module")
def mobile_trace(generator):
    return generator.generate_unit(
        service("tiktok"), Platform.MOBILE, TraceKind.LOGGED_IN, AgeGroup.ADULT,
        packet_target=200,
    )


@pytest.fixture(scope="module")
def web_trace(generator):
    return generator.generate_unit(
        service("tiktok"), Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.ADULT,
        packet_target=120,
    )


class TestPcapdroid:
    def test_artifact_shape(self, mobile_trace):
        artifact = PcapdroidCapture().capture(mobile_trace)
        assert artifact.packet_count > 0
        assert artifact.keylog.secrets  # decryptable sessions recorded

    def test_pcap_bytes_parse(self, mobile_trace):
        artifact = PcapdroidCapture().capture(mobile_trace)
        parsed = PcapFile.from_bytes(artifact.pcap_bytes())
        assert len(parsed) == artifact.packet_count

    def test_full_decryption_round_trip(self, mobile_trace):
        artifact = PcapdroidCapture().capture(mobile_trace)
        decryption = decrypt_mobile_artifact(
            artifact.pcap_bytes(), artifact.keylog_text()
        )
        expected_visible = sum(1 for t in mobile_trace.requests if not t.pinned)
        assert len(decryption.requests) == expected_visible

    def test_pinned_flows_stay_opaque(self, mobile_trace):
        artifact = PcapdroidCapture().capture(mobile_trace)
        decryption = decrypt_mobile_artifact(
            artifact.pcap_bytes(), artifact.keylog_text()
        )
        pinned_connections = {
            t.connection for t in mobile_trace.requests if t.pinned
        }
        assert decryption.undecryptable_flows == len(pinned_connections)
        # Destinations of opaque flows remain attributable via SNI.
        assert all(contact.host for contact in decryption.opaque)

    def test_without_keylog_nothing_decrypts(self, mobile_trace):
        artifact = PcapdroidCapture().capture(mobile_trace)
        decryption = decrypt_mobile_artifact(artifact.pcap_bytes(), "")
        assert decryption.requests == []
        assert decryption.undecryptable_flows == decryption.flow_count

    def test_request_content_preserved(self, mobile_trace):
        artifact = PcapdroidCapture().capture(mobile_trace)
        decryption = decrypt_mobile_artifact(
            artifact.pcap_bytes(), artifact.keylog_text()
        )
        original_hosts = {
            t.request.url.host for t in mobile_trace.requests if not t.pinned
        }
        recovered_hosts = {d.request.url.host for d in decryption.requests}
        assert recovered_hosts == original_hosts


class TestDevTools:
    def test_har_round_trip(self, web_trace):
        artifact = DevToolsCapture().capture(web_trace)
        assert artifact.packet_count == len(web_trace.requests)
        parsed = har_from_json(har_to_json(artifact.har))
        assert len(parsed.entries) == len(web_trace.requests)

    def test_connections_stable(self, web_trace):
        artifact = DevToolsCapture().capture(web_trace)
        generator_connections = {t.connection for t in web_trace.requests}
        har_connections = {e.connection for e in artifact.har.entries}
        assert len(har_connections) == len(generator_connections)

    def test_server_ips_attached(self, web_trace):
        artifact = DevToolsCapture().capture(web_trace)
        assert all(entry.server_ip for entry in artifact.har.entries)


class TestProxyman:
    def test_desktop_capture(self, generator):
        trace = generator.generate_unit(
            service("roblox"), Platform.DESKTOP, TraceKind.LOGGED_IN, AgeGroup.ADULT,
            packet_target=80,
        )
        artifact = ProxymanCapture().capture(trace)
        assert artifact.har.creator_name == "Proxyman"
        assert artifact.har.comment.startswith("proxyman-ssl-proxying:")
        assert artifact.packet_count == len(trace.requests)


class TestFridaPolicy:
    def test_deterministic(self):
        policy = FridaPolicy()
        assert policy.decryptable("conn-1", False) == policy.decryptable("conn-1", False)

    def test_forced_opaque_never_bypassed(self):
        policy = FridaPolicy(bypass_rate=1.0)
        assert not policy.decryptable("conn-1", True)

    def test_bypass_rate_zero(self):
        policy = FridaPolicy(bypass_rate=0.0)
        assert not policy.decryptable("conn-1", False)

    def test_bypass_rate_partitions(self):
        policy = FridaPolicy(bypass_rate=0.5)
        outcomes = [policy.decryptable(f"conn-{i}", False) for i in range(200)]
        assert 40 < sum(outcomes) < 160
