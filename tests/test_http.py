"""Unit and property tests for the HTTP message model."""

import pytest
from hypothesis import given, strategies as st

from repro.net.http import (
    Header,
    HttpParseError,
    HttpRequest,
    HttpResponse,
    parse_request_stream,
)
from repro.net.url import parse_url


def make_request(body: bytes = b"", **kwargs) -> HttpRequest:
    defaults = dict(
        method="POST",
        url=parse_url("https://api.example.com/v1/data?x=1"),
        headers=[Header("User-Agent", "test"), Header("Content-Type", "application/json")],
        body=body,
    )
    defaults.update(kwargs)
    return HttpRequest(**defaults)


class TestHeaders:
    def test_case_insensitive_lookup(self):
        request = make_request()
        assert request.header("user-agent") == "test"
        assert request.header("USER-AGENT") == "test"

    def test_missing_header_is_none(self):
        assert make_request().header("X-Missing") is None

    def test_content_type_strips_params(self):
        request = make_request(
            headers=[Header("Content-Type", "application/json; charset=utf-8")]
        )
        assert request.content_type == "application/json"


class TestCookies:
    def test_no_cookie_header(self):
        assert make_request().cookies() == []

    def test_cookie_parsing(self):
        request = make_request(
            headers=[Header("Cookie", "session=abc; theme=dark ;empty=")]
        )
        assert request.cookies() == [
            ("session", "abc"),
            ("theme", "dark"),
            ("empty", ""),
        ]


class TestSerialization:
    def test_round_trip(self):
        original = make_request(body=b'{"a": 1}')
        parsed = HttpRequest.from_bytes(original.to_bytes())
        assert parsed.method == "POST"
        assert str(parsed.url) == str(original.url)
        assert parsed.body == original.body
        assert parsed.header("User-Agent") == "test"

    def test_host_header_injected(self):
        wire = make_request().to_bytes()
        assert b"Host: api.example.com" in wire

    def test_content_length_injected(self):
        wire = make_request(body=b"12345").to_bytes()
        assert b"Content-Length: 5" in wire

    def test_scheme_comes_from_caller(self):
        wire = make_request().to_bytes()
        assert HttpRequest.from_bytes(wire, scheme="http").url.scheme == "http"

    @pytest.mark.parametrize(
        "data",
        [
            b"GET /\r\n\r\n",  # bad request line (missing version)
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",  # bad header
            b"GET / HTTP/1.1\r\nAccept: */*\r\n\r\n",  # missing Host
            b"garbage",  # no separator
        ],
    )
    def test_parse_errors(self, data):
        with pytest.raises(HttpParseError):
            HttpRequest.from_bytes(data)

    @given(st.binary(max_size=200))
    def test_body_round_trip_property(self, body):
        original = make_request(body=body)
        parsed = HttpRequest.from_bytes(original.to_bytes())
        assert parsed.body == body


class TestRequestStream:
    def test_single_request(self):
        stream = make_request(body=b"hello").to_bytes()
        requests = parse_request_stream(stream)
        assert len(requests) == 1
        assert requests[0].body == b"hello"

    def test_pipelined_requests(self):
        first = make_request(body=b"first")
        second = make_request(
            body=b"", method="GET", url=parse_url("https://api.example.com/other")
        )
        third = make_request(body=b"third-body")
        stream = first.to_bytes() + second.to_bytes() + third.to_bytes()
        requests = parse_request_stream(stream)
        assert [r.method for r in requests] == ["POST", "GET", "POST"]
        assert requests[2].body == b"third-body"

    def test_truncated_trailing_request_dropped(self):
        full = make_request(body=b"complete").to_bytes()
        partial = make_request(body=b"this-will-be-cut").to_bytes()[:-5]
        requests = parse_request_stream(full + partial)
        assert len(requests) == 1
        assert requests[0].body == b"complete"

    def test_garbage_stream_yields_nothing(self):
        assert parse_request_stream(b"\x00\x01\x02 not http") == []

    def test_empty_stream(self):
        assert parse_request_stream(b"") == []

    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=5))
    def test_n_requests_round_trip(self, bodies):
        stream = b"".join(make_request(body=body).to_bytes() for body in bodies)
        requests = parse_request_stream(stream)
        assert [r.body for r in requests] == bodies


class TestResponse:
    def test_serialization(self):
        response = HttpResponse(
            status=204,
            status_text="No Content",
            headers=[Header("Content-Type", "text/plain")],
        )
        wire = response.to_bytes()
        assert wire.startswith(b"HTTP/1.1 204 No Content\r\n")
        assert b"Content-Length: 0" in wire

    def test_header_lookup(self):
        response = HttpResponse(headers=[Header("X-Test", "1")])
        assert response.header("x-test") == "1"
        assert response.header("other") is None
