"""Unit and property tests for the public-suffix-list engine."""

import pytest
from hypothesis import given, strategies as st

from repro.net.psl import PublicSuffixList, default_psl, esld, extract


class TestExtract:
    @pytest.mark.parametrize(
        "host,subdomain,domain,suffix",
        [
            ("www.example.com", "www", "example", "com"),
            ("example.com", "", "example", "com"),
            ("a.b.example.co.uk", "a.b", "example", "co.uk"),
            ("example.co.uk", "", "example", "co.uk"),
            ("browser.events.data.microsoft.com", "browser.events.data", "microsoft", "com"),
            ("metrics.roblox.com", "metrics", "roblox", "com"),
        ],
    )
    def test_standard_cases(self, host, subdomain, domain, suffix):
        result = extract(host)
        assert result.subdomain == subdomain
        assert result.domain == domain
        assert result.suffix == suffix

    def test_registered_domain(self):
        assert esld("ssl.google-analytics.com") == "google-analytics.com"
        assert esld("p16-sign-va.tiktokcdn.com") == "tiktokcdn.com"

    def test_private_section_cloudfront(self):
        """tldextract honours the private section by default, so a
        CloudFront distribution hostname is its own registered domain."""
        assert esld("d1234.cloudfront.net") == "d1234.cloudfront.net"

    def test_icann_only_mode(self):
        psl = PublicSuffixList(include_private=False)
        assert psl.extract("d1234.cloudfront.net").registered_domain == "cloudfront.net"

    def test_wildcard_rule(self):
        # *.ck: any single label under .ck is a public suffix.
        assert extract("a.b.ck").registered_domain == "a.b.ck"

    def test_wildcard_exception_rule(self):
        # !www.ck: www.ck is a registered domain despite the wildcard.
        assert extract("www.ck").registered_domain == "www.ck"
        assert extract("sub.www.ck").registered_domain == "www.ck"

    def test_unknown_tld_uses_last_label(self):
        assert extract("example.unknowntld").registered_domain == "example.unknowntld"

    def test_pure_suffix_has_no_registered_domain(self):
        result = extract("co.uk")
        assert result.registered_domain == ""
        assert result.suffix == "co.uk"

    def test_ip_literal_has_no_suffix(self):
        result = extract("10.1.2.3")
        assert result.suffix == ""
        assert result.registered_domain == ""

    def test_case_and_trailing_dot_normalized(self):
        assert esld("WWW.EXAMPLE.COM.") == "example.com"

    def test_single_label(self):
        result = extract("localhost")
        assert result.domain == "localhost"
        assert result.suffix == ""


class TestProperties:
    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8),
            min_size=1,
            max_size=5,
        )
    )
    def test_fqdn_reconstructs_host(self, labels):
        host = ".".join(labels)
        result = extract(host)
        assert result.fqdn == host

    @given(
        st.lists(
            st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8),
            min_size=2,
            max_size=5,
        )
    )
    def test_registered_domain_is_host_suffix(self, labels):
        host = ".".join(labels)
        registered = extract(host).registered_domain
        if registered:
            assert host.endswith(registered)

    def test_default_psl_is_cached(self):
        assert default_psl() is default_psl()

    def test_psl_parsed_rules_nonempty(self):
        assert len(default_psl()) > 50
