"""Unit tests for the parallel sharded audit engine."""

import json
import pickle

import pytest

from repro import CorpusConfig, DiffAudit
from repro.datatypes.base import Classification
from repro.datatypes.cache import CachingClassifier
from repro.destinations.party import PartyLabel
from repro.flows.dataflow import FlowObservation, FlowTable
from repro.model import Platform, TraceColumn
from repro.ontology.nodes import Level3
from repro.pipeline.dataset import DatasetSummary, ServiceDatasetStats
from repro.pipeline.engine import (
    AuditEngine,
    ProcessPoolShardExecutor,
    SequentialExecutor,
    ThreadPoolShardExecutor,
    executor_for,
    pack_shard_result,
    partition_costs,
    process_shard,
    shard_unit_costs,
    split_shard_tasks,
)
from repro.services.generator import LOAD_PROFILES, estimate_unit_costs


def _observation(
    service="svc",
    fqdn="t.tracker.com",
    level3=Level3.AGE,
    party=PartyLabel.THIRD_PARTY_ATS,
    platform=Platform.WEB,
    column=TraceColumn.ADULT,
):
    return FlowObservation(
        service=service,
        column=column,
        platform=platform,
        level3=level3,
        fqdn=fqdn,
        esld="tracker.com",
        party=party,
        raw_key="age",
    )


class TestFlowTableMerge:
    def test_merge_rebuilds_rollups(self):
        left = FlowTable()
        left.add(_observation(service="a"))
        right = FlowTable()
        right.add(_observation(service="b", fqdn="x.other.com"))
        right.add(
            _observation(
                service="b", level3=Level3.ALIASES, platform=Platform.MOBILE
            )
        )

        left.merge(right)
        assert len(left) == 3
        assert left.services() == ["a", "b"]
        assert left.party_of("b", "x.other.com") is PartyLabel.THIRD_PARTY_ATS
        # Per-destination linkability sets merged for third parties,
        # keyed by service: b's aliases never mix into a's set.
        sets = left.third_party_type_sets("b", TraceColumn.ADULT)
        assert sets["t.tracker.com"] == {Level3.ALIASES}
        assert sets["x.other.com"] == {Level3.AGE}
        assert left.third_party_type_sets("a", TraceColumn.ADULT)[
            "t.tracker.com"
        ] == {Level3.AGE}

    def test_merge_is_order_preserving(self):
        one, two = FlowTable(), FlowTable()
        first = _observation(service="a")
        second = _observation(service="b")
        one.add(first)
        two.add(second)
        merged = FlowTable()
        merged.merge(one)
        merged.merge(two)
        assert merged.observations() == [first, second]

    def test_merge_equals_direct_adds(self):
        observations = [
            _observation(service="a"),
            _observation(service="a", level3=Level3.NAME),
            _observation(service="b", fqdn="y.other.com", party=PartyLabel.THIRD_PARTY),
        ]
        direct = FlowTable()
        direct.extend(observations)
        sharded = FlowTable()
        for observation in observations:
            shard = FlowTable()
            shard.add(observation)
            sharded.merge(shard)
        assert sharded.observations() == direct.observations()
        assert sharded._grid == direct._grid
        assert sharded._per_destination == direct._per_destination
        assert sharded._party_by_fqdn == direct._party_by_fqdn

    def test_register_party_never_overrides_observed(self):
        table = FlowTable()
        table.add(_observation())
        table.register_party("svc", "t.tracker.com", PartyLabel.FIRST_PARTY)
        assert table.party_of("svc", "t.tracker.com") is PartyLabel.THIRD_PARTY_ATS

    def test_register_party_fills_opaque_contacts(self):
        table = FlowTable()
        table.register_party("svc", "pinned.cdn.com", PartyLabel.FIRST_PARTY)
        assert table.party_of("svc", "pinned.cdn.com") is PartyLabel.FIRST_PARTY

    def test_merge_keeps_registered_parties(self):
        shard = FlowTable()
        shard.register_party("svc", "opaque.host.com", PartyLabel.THIRD_PARTY)
        merged = FlowTable()
        merged.merge(shard)
        assert merged.party_of("svc", "opaque.host.com") is PartyLabel.THIRD_PARTY


class TestDatasetSummaryMerge:
    def test_merge_disjoint_services(self):
        left, right = DatasetSummary(), DatasetSummary()
        left.per_service["a"] = ServiceDatasetStats(
            service="a", fqdns={"x.a.com"}, eslds={"a.com"}, packets=5, tcp_flows=2
        )
        right.per_service["b"] = ServiceDatasetStats(
            service="b", fqdns={"y.b.com"}, eslds={"b.com"}, packets=7, tcp_flows=3
        )
        left.merge(right)
        assert left.total_packets == 12
        assert left.total_domains == 2

    def test_merge_same_service_unions(self):
        left, right = DatasetSummary(), DatasetSummary()
        left.per_service["a"] = ServiceDatasetStats(
            service="a", fqdns={"x.a.com"}, eslds={"a.com"}, packets=5, tcp_flows=2
        )
        right.per_service["a"] = ServiceDatasetStats(
            service="a",
            fqdns={"x.a.com", "z.a.com"},
            eslds={"a.com"},
            packets=1,
            tcp_flows=1,
        )
        left.merge(right)
        stats = left.per_service["a"]
        assert stats.domain_count == 2
        assert stats.packets == 6
        assert stats.tcp_flows == 3


class CountingClassifier:
    """Deterministic classifier that counts classify() invocations."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def classify(self, text):
        self.calls += 1
        return Classification(text=text, label=Level3.AGE, confidence=0.9)

    def classify_batch(self, texts):
        return [self.classify(text) for text in texts]


class TestCachingClassifier:
    def test_repeated_keys_classified_once(self):
        inner = CountingClassifier()
        cache = CachingClassifier(inner)
        first = cache.classify("age")
        second = cache.classify("age")
        assert first == second
        assert inner.calls == 1
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1
        assert cache.cached_keys() == {"age"}

    def test_distinct_keys_all_miss(self):
        inner = CountingClassifier()
        cache = CachingClassifier(inner)
        cache.classify_batch(["a", "b", "a", "c"])
        assert inner.calls == 3
        assert cache.hit_rate == pytest.approx(0.25)
        assert cache.name == "cached-counting"


class TestExecutors:
    def test_jobs_one_is_sequential(self):
        assert isinstance(executor_for(1), SequentialExecutor)

    def test_jobs_many_is_process_pool(self):
        executor = executor_for(4)
        assert isinstance(executor, ProcessPoolShardExecutor)
        assert executor.jobs == 4

    def test_jobs_zero_rejected(self):
        with pytest.raises(ValueError):
            executor_for(0)


class TestLoadProfiles:
    def test_known_profiles(self):
        assert set(LOAD_PROFILES) == {"light", "standard", "heavy", "stress"}

    def test_standard_is_identity(self):
        config = CorpusConfig(scale=0.01)
        assert config.effective_scale == pytest.approx(0.01)

    def test_profiles_scale_volume(self):
        light = CorpusConfig(scale=0.01, profile="light")
        heavy = CorpusConfig(scale=0.01, profile="heavy")
        assert light.effective_scale == pytest.approx(0.0025)
        assert heavy.effective_scale == pytest.approx(0.04)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown load profile"):
            CorpusConfig(profile="ludicrous")

    def test_for_service_restricts_and_keeps_knobs(self):
        config = CorpusConfig(scale=0.01, seed=9, profile="light")
        shard = config.for_service("tiktok")
        assert shard.services == ("tiktok",)
        assert shard.seed == 9 and shard.profile == "light"
        assert [spec.key for spec in shard.service_specs()] == ["tiktok"]

    def test_heavier_profile_means_more_packets(self):
        # At scale 0.02 the volume targets bind (filler traffic is
        # non-zero), so profiles must separate the packet totals.
        light = CorpusConfig(scale=0.02, services=("youtube",), profile="light")
        heavy = CorpusConfig(scale=0.02, services=("youtube",), profile="heavy")
        engine_light = AuditEngine(config=light).run()
        engine_heavy = AuditEngine(config=heavy).run()
        assert (
            engine_heavy.dataset.total_packets
            > engine_light.dataset.total_packets
        )
        # A profile is exactly a scale multiplier for volume purposes:
        # heavy at 0.02 produces the same packet count as standard at
        # the equivalent 0.08 scale.
        equivalent = CorpusConfig(scale=0.08, services=("youtube",))
        engine_equivalent = AuditEngine(config=equivalent).run()
        assert (
            engine_heavy.dataset.total_packets
            == engine_equivalent.dataset.total_packets
        )


class _CostedItem:
    """Minimal picklable work item for executor-ordering tests."""

    def __init__(self, index: int, estimated_cost: float) -> None:
        self.index = index
        self.estimated_cost = estimated_cost


def _echo_index(item: _CostedItem) -> int:
    return item.index


class TestSizeBalancedScheduling:
    """Cost estimation, shard splitting, and unordered execution."""

    def test_partition_costs_covers_contiguously(self):
        costs = [5.0, 1.0, 1.0, 1.0, 5.0, 1.0, 1.0, 1.0]
        ranges = partition_costs(costs, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(costs)
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start  # contiguous, no gaps or overlaps
        assert all(stop > start for start, stop in ranges)

    def test_partition_costs_balances_skew(self):
        # One heavy unit up front must not drag everything into part 0.
        costs = [10.0] + [1.0] * 10
        ranges = partition_costs(costs, 2)
        assert ranges[0][1] <= 2  # the heavy unit fills its part quickly
        assert len(ranges) == 2

    def test_partition_costs_clamps_parts(self):
        assert partition_costs([1.0, 2.0], 10) == [(0, 1), (1, 2)]
        assert partition_costs([1.0, 2.0, 3.0], 1) == [(0, 3)]
        assert partition_costs([0.0, 0.0], 2) == [(0, 2)]  # zero total: whole

    def test_estimated_unit_costs_are_positive_and_skewed(self):
        config = CorpusConfig(scale=0.01)
        for spec in config.service_specs():
            costs = estimate_unit_costs(config, spec)
            assert len(costs) > 0
            assert all(cost > 0 for cost in costs)
        totals = {
            spec.key: sum(estimate_unit_costs(config, spec))
            for spec in config.service_specs()
        }
        # The paper's services differ in volume — the estimates must
        # reflect that skew, or splitting would have nothing to fix.
        assert max(totals.values()) > 1.2 * min(totals.values())

    def test_split_preserves_canonical_order_and_unit_coverage(self):
        config = CorpusConfig(scale=0.01)
        engine = AuditEngine(config=config, jobs=4)
        tasks = split_shard_tasks(engine.shard_tasks(), 4)
        assert len(tasks) > len(config.service_specs())  # something split
        services = [spec.key for spec in config.service_specs()]
        seen_order = [task.service for task in tasks]
        # Canonical order: grouped by service in spec order, parts ascending.
        assert seen_order == sorted(
            seen_order, key=lambda s: services.index(s)
        )
        by_service: dict[str, list] = {}
        for task in tasks:
            by_service.setdefault(task.service, []).append(task)
        for service, parts in by_service.items():
            assert [task.part for task in parts] == list(range(len(parts)))
            if len(parts) == 1:
                continue
            ranges = [task.unit_range for task in parts]
            assert ranges[0][0] == 0
            for (_, stop), (start, _) in zip(ranges, ranges[1:]):
                assert stop == start
            assert all(task.estimated_cost > 0 for task in parts)

    def test_split_balances_estimated_cost(self):
        config = CorpusConfig(scale=0.05)
        engine = AuditEngine(config=config, jobs=4)
        whole = engine.shard_tasks()
        whole_costs = [sum(shard_unit_costs(task)) for task in whole]
        split = split_shard_tasks(whole, 4)
        split_costs = [task.estimated_cost for task in split]
        # Splitting must strictly shrink the largest schedulable chunk —
        # that is the whole point of sub-sharding a skewed corpus.
        assert max(split_costs) < max(whole_costs)
        assert sum(split_costs) == pytest.approx(sum(whole_costs))

    def test_split_replay_units_cover_the_corpus(self, tmp_path):
        from repro.pipeline.engine import generate_corpus_artifacts

        config = CorpusConfig(scale=0.002, seed=3, services=("youtube",))
        generate_corpus_artifacts(config, tmp_path)
        engine = AuditEngine(config=config, replay=tmp_path, jobs=3)
        tasks = split_shard_tasks(engine.shard_tasks(), 3)
        rejoined = [
            unit for task in tasks for unit in (task.replay_units or ())
        ]
        (original,) = engine.shard_tasks()
        assert tuple(rejoined) == original.replay_units
        # Replay sub-shards carry their slice in replay_units directly.
        assert all(task.unit_range is None for task in tasks)
        assert all(task.estimated_cost > 0 for task in tasks)

    def test_sequential_jobs_never_split(self):
        engine = AuditEngine(config=CorpusConfig(scale=0.05), jobs=1)
        tasks = engine.shard_tasks()
        assert split_shard_tasks(tasks, 1) is tasks

    def test_pool_executor_returns_results_in_input_order(self):
        items = [_CostedItem(i, cost) for i, cost in enumerate([1, 9, 3, 7, 5])]
        results = ProcessPoolShardExecutor(jobs=2).map_shards(
            items, work=_echo_index
        )
        assert results == [0, 1, 2, 3, 4]


class TestExecutorSelection:
    """``--executor KIND`` / ``--jobs N`` → the executor that runs."""

    def test_explicit_kinds_honoured(self):
        assert isinstance(executor_for(2, "sequential"), SequentialExecutor)
        thread = executor_for(2, "thread")
        assert isinstance(thread, ThreadPoolShardExecutor)
        assert thread.jobs == 2
        process = executor_for(2, "process")
        assert isinstance(process, ProcessPoolShardExecutor)
        assert process.jobs == 2

    def test_explicit_pools_allowed_at_one_job(self):
        assert isinstance(executor_for(1, "thread"), ThreadPoolShardExecutor)
        assert isinstance(executor_for(1, "process"), ProcessPoolShardExecutor)

    def test_auto_is_sequential_at_one_job(self):
        assert isinstance(executor_for(1, "auto"), SequentialExecutor)
        assert isinstance(
            executor_for(1, "auto", replay=True), SequentialExecutor
        )

    def test_auto_prefers_threads_for_replay(self):
        # Replayed corpora are decode I/O + store round-trips — both
        # GIL-releasing — so auto picks the zero-serialization pool.
        assert isinstance(
            executor_for(4, "auto", replay=True), ThreadPoolShardExecutor
        )
        assert isinstance(
            executor_for(4, "auto", replay=False), ProcessPoolShardExecutor
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            executor_for(2, "fibers")

    def test_thread_pool_returns_results_in_input_order(self):
        items = [_CostedItem(i, cost) for i, cost in enumerate([2, 8, 4, 6, 1])]
        results = ThreadPoolShardExecutor(jobs=3).map_shards(
            items, work=_echo_index
        )
        assert results == [0, 1, 2, 3, 4]

    def test_pools_short_circuit_single_tasks(self):
        items = [_CostedItem(0, 1.0)]
        for pool in (
            ThreadPoolShardExecutor(jobs=4),
            ProcessPoolShardExecutor(jobs=4),
        ):
            assert pool.map_shards(items, work=_echo_index) == [0]


class TestSlimTasks:
    """Pool-bound tasks must stay cheap to pickle."""

    CONFIG = CorpusConfig(scale=0.002, seed=3, services=("tiktok", "youtube"))

    def test_default_components_stripped_and_payload_small(self):
        engine = AuditEngine(config=self.CONFIG, jobs=2)
        tasks = split_shard_tasks(engine.shard_tasks(), 2)
        engine._slim_tasks(tasks)
        for task in tasks:
            assert task.classifier is None
            assert task.entity_db is None
            assert task.blocklists is None
            # The whole point of slimming: a task is a service name
            # plus config knobs, not a pickled catalog + entity
            # database + blocklist stack.
            assert len(pickle.dumps(task)) < 16 * 1024

    def test_slimming_forwards_cache_dir(self, tmp_path):
        engine = AuditEngine(config=self.CONFIG, jobs=2, cache_dir=tmp_path)
        tasks = engine.shard_tasks()
        engine._slim_tasks(tasks)
        assert all(task.classifier is None for task in tasks)
        assert all(task.cache_dir == tmp_path for task in tasks)

    def test_custom_classifier_still_travels(self):
        engine = AuditEngine(
            config=self.CONFIG, classifier=CountingClassifier(), jobs=2
        )
        tasks = engine.shard_tasks()
        engine._slim_tasks(tasks)
        for task in tasks:
            # Only *default* components are rebuilt worker-side; a
            # caller-customized classifier must keep travelling.
            assert task.classifier is engine.classifier
            assert task.entity_db is None
            assert task.blocklists is None


class TestPackedShardResult:
    """The compact IPC transport must be faithful and actually compact."""

    @pytest.fixture(scope="class")
    def shard_result(self):
        config = CorpusConfig(scale=0.002, seed=3, services=("youtube",))
        (task,) = AuditEngine(config=config).shard_tasks()
        return process_shard(task)

    def test_round_trip_is_faithful(self, shard_result):
        packed = pack_shard_result(shard_result)
        revived = pickle.loads(pickle.dumps(packed)).unpack()
        assert revived.service == shard_result.service
        assert (
            revived.flows.observations() == shard_result.flows.observations()
        )
        # Roll-ups are rebuilt on unpack, not shipped — they must
        # still come out identical to the originals.
        assert revived.flows._grid == shard_result.flows._grid
        assert (
            revived.flows._per_destination
            == shard_result.flows._per_destination
        )
        assert revived.flows._party_by_fqdn == shard_result.flows._party_by_fqdn
        assert revived.contacted == shard_result.contacted
        assert revived.raw_keys == shard_result.raw_keys
        assert revived.classified == shard_result.classified
        assert revived.owners == shard_result.owners
        assert revived.trace_count == shard_result.trace_count
        assert revived.cache_hits == shard_result.cache_hits
        assert revived.cache_misses == shard_result.cache_misses
        assert revived.stage_times == shard_result.stage_times

    def test_packed_pickle_is_smaller(self, shard_result):
        raw = len(pickle.dumps(shard_result))
        packed = len(pickle.dumps(pack_shard_result(shard_result)))
        assert packed < raw


class TestEngineParity:
    """Sequential and parallel paths must be result-identical."""

    CONFIG = CorpusConfig(scale=0.003, seed=11, services=("tiktok", "youtube"))

    def test_sequential_vs_parallel_results(self):
        from repro.reporting.export import result_to_json

        sequential = DiffAudit(self.CONFIG, jobs=1).run()
        parallel = DiffAudit(self.CONFIG, jobs=2).run()
        assert result_to_json(sequential) == result_to_json(parallel)
        assert sequential.flows.observations() == parallel.flows.observations()
        assert sequential.classified_keys == parallel.classified_keys
        assert sequential.unique_data_types == parallel.unique_data_types
        assert sequential.linkability == parallel.linkability
        assert (
            sequential.common_linkable_set == parallel.common_linkable_set
        )

    def test_engine_output_contacts_every_service(self):
        merged = AuditEngine(config=self.CONFIG).run()
        assert set(merged.contacted) == {"tiktok", "youtube"}
        assert merged.trace_count > 0
        assert merged.classified_keys > 0
        # The per-request memoization means far more hits than misses.
        assert merged.cache_hits > merged.cache_misses

    def test_artifacts_written_once_per_shard(self, tmp_path):
        config = CorpusConfig(scale=0.002, seed=3, services=("youtube",))
        AuditEngine(config=config, artifacts_dir=tmp_path).run()
        assert list(tmp_path.glob("*.har"))
        assert list(tmp_path.glob("*.pcap"))


def _result_bytes(result) -> bytes:
    """The audit result as canonical JSON bytes, for byte-equality."""
    from repro.reporting.export import result_to_json

    return json.dumps(result_to_json(result), sort_keys=True).encode()


class TestExecutorParityMatrix:
    """Every executor × jobs × store-temperature cell must produce the
    byte-identical audit result.

    This is the contract that makes the executor a pure performance
    knob: sequential at one job is the reference, and no pool, worker
    count, or persistent-store state may perturb a single output byte.
    """

    CONFIG = CorpusConfig(scale=0.002, seed=7, services=("tiktok", "youtube"))

    @pytest.fixture(scope="class")
    def baseline(self):
        return _result_bytes(DiffAudit(self.CONFIG, jobs=1).run())

    @pytest.fixture(scope="class")
    def warm_cache_dir(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("parity-store")
        DiffAudit(self.CONFIG, jobs=1, cache_dir=cache_dir).run()
        return cache_dir

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("executor", ["sequential", "thread", "process"])
    def test_cold_store_parity(self, executor, jobs, baseline, tmp_path):
        audit = DiffAudit(
            self.CONFIG, jobs=jobs, executor=executor, cache_dir=tmp_path
        )
        assert _result_bytes(audit.run()) == baseline

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize("executor", ["sequential", "thread", "process"])
    def test_warm_store_parity(self, executor, jobs, baseline, warm_cache_dir):
        audit = DiffAudit(
            self.CONFIG, jobs=jobs, executor=executor, cache_dir=warm_cache_dir
        )
        assert _result_bytes(audit.run()) == baseline


class TestStoreRoundTripBudget:
    """Batched priming means O(shards) store round-trips, not O(keys)."""

    CONFIG = CorpusConfig(scale=0.002, seed=5, services=("tiktok", "youtube"))

    def _counting_store(self, monkeypatch) -> dict:
        from repro.datatypes.store import ClassificationStore

        calls = {"get_many": 0, "put_many": 0}
        real_get = ClassificationStore.get_many
        real_put = ClassificationStore.put_many

        def counting_get(store, classifier, texts):
            calls["get_many"] += 1
            return real_get(store, classifier, texts)

        def counting_put(store, classifier, verdicts):
            calls["put_many"] += 1
            return real_put(store, classifier, verdicts)

        monkeypatch.setattr(ClassificationStore, "get_many", counting_get)
        monkeypatch.setattr(ClassificationStore, "put_many", counting_put)
        return calls

    def test_cold_audit_one_round_trip_per_shard(self, tmp_path, monkeypatch):
        calls = self._counting_store(monkeypatch)
        DiffAudit(self.CONFIG, jobs=1, cache_dir=tmp_path).run()
        shards = len(self.CONFIG.service_specs())
        assert 1 <= calls["get_many"] <= shards
        assert 1 <= calls["put_many"] <= shards

    def test_warm_audit_never_writes(self, tmp_path, monkeypatch):
        DiffAudit(self.CONFIG, jobs=1, cache_dir=tmp_path).run()  # prime
        calls = self._counting_store(monkeypatch)
        DiffAudit(self.CONFIG, jobs=1, cache_dir=tmp_path).run()
        shards = len(self.CONFIG.service_specs())
        # One batched get per shard answers everything; a fully warm
        # store has no misses left to write back.
        assert 1 <= calls["get_many"] <= shards
        assert calls["put_many"] == 0
