"""Failure-injection tests: the pipeline on damaged or hostile inputs.

Real traces are messy (the paper kept encrypted and partial traffic in
its counts); the analysis side must degrade, not crash.
"""

import json
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.capture import PcapdroidCapture, decrypt_mobile_artifact
from repro.datatypes.extract import extract_from_request
from repro.model import AgeGroup, Platform, TraceKind
from repro.net.har import HarError, har_from_json
from repro.net.http import Header, HttpRequest
from repro.net.packet import Ipv6Header, PacketError, ipv6_to_bytes, ipv6_to_str
from repro.net.pcap import PcapFile, PcapPacket
from repro.net.url import parse_url
from repro.services import CorpusConfig, TrafficGenerator
from repro.services.catalog import service


@pytest.fixture(scope="module")
def artifact():
    generator = TrafficGenerator(CorpusConfig(scale=0.003))
    trace = generator.generate_unit(
        service("tiktok"), Platform.MOBILE, TraceKind.LOGGED_IN, AgeGroup.ADULT,
        packet_target=150,
    )
    return PcapdroidCapture().capture(trace)


class TestDamagedPcap:
    def test_non_tcp_noise_skipped(self, artifact):
        """ARP/garbage frames in the capture are ignored, not fatal."""
        pcap = PcapFile.from_bytes(artifact.pcap_bytes())
        pcap.packets.insert(3, PcapPacket(timestamp=0.0, data=b"\x00" * 40))
        pcap.packets.insert(7, PcapPacket(timestamp=0.0, data=b"arp?"))
        decryption = decrypt_mobile_artifact(pcap, artifact.keylog_text())
        baseline = decrypt_mobile_artifact(
            artifact.pcap_bytes(), artifact.keylog_text()
        )
        assert len(decryption.requests) == len(baseline.requests)

    def test_dropped_frames_degrade_gracefully(self, artifact):
        """Losing every 7th frame loses some flows, crashes nothing."""
        pcap = PcapFile.from_bytes(artifact.pcap_bytes())
        pcap.packets = [
            packet for index, packet in enumerate(pcap.packets) if index % 7
        ]
        decryption = decrypt_mobile_artifact(pcap, artifact.keylog_text())
        baseline = decrypt_mobile_artifact(
            artifact.pcap_bytes(), artifact.keylog_text()
        )
        assert 0 < len(decryption.requests) <= len(baseline.requests)

    def test_reordered_frames_fully_recover(self, artifact):
        import random

        pcap = PcapFile.from_bytes(artifact.pcap_bytes())
        random.Random(9).shuffle(pcap.packets)
        decryption = decrypt_mobile_artifact(pcap, artifact.keylog_text())
        baseline = decrypt_mobile_artifact(
            artifact.pcap_bytes(), artifact.keylog_text()
        )
        assert len(decryption.requests) == len(baseline.requests)

    def test_wrong_keylog_secrets_yield_opaque_flows(self, artifact):
        from repro.net.tls import KeyLog, TlsSession

        wrong = KeyLog()
        for random_bytes in artifact.keylog.secrets:
            wrong.secrets[random_bytes] = b"\x00" * 32  # wrong secret
        decryption = decrypt_mobile_artifact(artifact.pcap_bytes(), wrong.to_text())
        # Wrong keys produce garbage plaintext, which fails HTTP
        # parsing — flows survive as zero-request flows, no crash.
        assert decryption.requests == []

    @given(st.binary(min_size=24, max_size=400))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_bytes_never_crash_decryption(self, blob):
        pcap = PcapFile()
        pcap.append(PcapPacket(timestamp=0.0, data=blob))
        decryption = decrypt_mobile_artifact(pcap, "")
        assert decryption.packet_count == 1


class TestHostileHar:
    def base_doc(self):
        return {
            "log": {
                "version": "1.2",
                "creator": {"name": "x", "version": "1"},
                "entries": [
                    {
                        "startedDateTime": "2023-10-15T10:00:00.000Z",
                        "time": 1.0,
                        "request": {
                            "method": "GET",
                            "url": "https://x.example.com/",
                            "headers": [],
                        },
                        "response": {},
                    }
                ],
            }
        }

    def test_minimal_entry_parses(self):
        har = har_from_json(self.base_doc())
        assert len(har.entries) == 1

    def test_bad_url_raises_har_error(self):
        doc = self.base_doc()
        doc["log"]["entries"][0]["request"]["url"] = "not-a-url"
        with pytest.raises(HarError):
            har_from_json(doc)

    def test_bad_timestamp_raises_har_error(self):
        doc = self.base_doc()
        doc["log"]["entries"][0]["startedDateTime"] = "yesterday"
        with pytest.raises(HarError):
            har_from_json(doc)


class TestHostilePayloads:
    def _request(self, body: bytes, content_type="application/json"):
        return HttpRequest(
            method="POST",
            url=parse_url("https://x.example.com/"),
            headers=[Header("Content-Type", content_type)],
            body=body,
        )

    @pytest.mark.parametrize(
        "body",
        [
            b"{" * 500,  # deeply broken nesting
            b'{"a": NaN}',  # JSON extensions (Python accepts NaN)
            b"\xff\xfe\x00\x01",  # not UTF-8
            b"null",
            b"[1, 2, 3]",
            b'"just a string"',
            b"",
        ],
    )
    def test_weird_bodies_never_crash(self, body):
        extract_from_request(self._request(body))

    def test_enormous_flat_object(self):
        body = json.dumps({f"k{i}": i for i in range(5_000)}).encode()
        items = extract_from_request(self._request(body))
        assert len(items) == 5_000

    def test_deep_nesting_extracts_every_level(self):
        payload = {"l0": {}}
        node = payload["l0"]
        for depth in range(1, 40):
            node[f"l{depth}"] = {}
            node = node[f"l{depth}"]
        node["leaf"] = 1
        items = extract_from_request(self._request(json.dumps(payload).encode()))
        assert {i.key for i in items} == {f"l{d}" for d in range(40)} | {"leaf"}


class TestIpv6:
    def test_round_trip(self):
        header = Ipv6Header(src="2001:db8::1", dst="2001:db8::2")
        payload = b"hello v6"
        parsed, body = Ipv6Header.from_bytes(header.to_bytes(len(payload)) + payload)
        assert parsed.src == "2001:db8:0:0:0:0:0:1"
        assert body == payload

    def test_compression_forms(self):
        assert ipv6_to_str(ipv6_to_bytes("::1")) == "0:0:0:0:0:0:0:1"
        assert ipv6_to_str(ipv6_to_bytes("fe80::")) == "fe80:0:0:0:0:0:0:0"
        full = "2001:db8:1:2:3:4:5:6"
        assert ipv6_to_str(ipv6_to_bytes(full)) == full

    @pytest.mark.parametrize("bad", ["::1::2", "1:2:3", "gggg::1", "1:2:3:4:5:6:7:8:9"])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(PacketError):
            ipv6_to_bytes(bad)

    def test_version_check(self):
        blob = Ipv6Header(src="::1", dst="::2").to_bytes(0)
        corrupted = struct.pack("!I", (4 << 28)) + blob[4:]
        with pytest.raises(PacketError):
            Ipv6Header.from_bytes(corrupted)

    def test_truncated(self):
        with pytest.raises(PacketError):
            Ipv6Header.from_bytes(b"\x60" + b"\x00" * 10)
