"""Unit tests for the classifiers and the Table 3 validation harness.

The band assertions here are the reproduction contract for Table 3:
accuracy ordering and rough magnitudes must match the paper.
"""

import pytest

from repro.datatypes import (
    BertFuzzyClassifier,
    FewShotClassifier,
    Gpt4Classifier,
    MajorityVoteClassifier,
    TfidfFuzzyClassifier,
    ZeroShotClassifier,
    validate_classifier,
)
from repro.datatypes.base import Classification
from repro.datatypes.gpt4 import GPT4_PROMPT, TEMPERATURES, temperature_sweep
from repro.datatypes.validation import CONFIDENCE_THRESHOLDS, draw_sample, score
from repro.ontology.nodes import Level3


@pytest.fixture(scope="module")
def sample(payload_factory):
    return draw_sample(payload_factory.registry.truth)


class TestGpt4Classifier:
    def test_deterministic(self):
        model = Gpt4Classifier(temperature=0.5)
        assert model.classify("email") == model.classify("email")

    def test_temperature_bounds(self):
        with pytest.raises(ValueError):
            Gpt4Classifier(temperature=1.5)  # paper: >1 hallucinates
        with pytest.raises(ValueError):
            Gpt4Classifier(temperature=-0.1)

    def test_confidence_in_range(self):
        model = Gpt4Classifier()
        for key in ("email", "zxq9", "IsOptOutEmailShown", "rtt", ""):
            verdict = model.classify(key)
            assert 0.0 <= verdict.confidence <= 1.0

    def test_clear_key_classified_confidently(self):
        verdict = Gpt4Classifier().classify("advertising_id")
        assert verdict.label is Level3.DEVICE_SOFTWARE_IDENTIFIERS
        assert verdict.confidence >= 0.9

    def test_opaque_key_low_confidence(self):
        verdict = Gpt4Classifier().classify("zzqx9k")
        assert verdict.confidence < 0.7

    def test_abbreviation_world_knowledge(self):
        """'idfa' shares no surface text with 'advertising identifier';
        only abbreviation knowledge solves it."""
        verdict = Gpt4Classifier().classify("idfa")
        assert verdict.label is Level3.DEVICE_SOFTWARE_IDENTIFIERS
        assert Gpt4Classifier().classify("rtt").label is (
            Level3.NETWORK_CONNECTION_INFORMATION
        )

    def test_correlated_noise_is_shared_across_temperatures(self):
        """Keys the model misreads are misread the same way at every
        temperature ('dob' is one) — this is what caps the majority
        vote's gain in Table 3."""
        labels = {m.classify("dob").label for m in temperature_sweep()}
        assert len(labels) == 1  # consistent (wrong or right) everywhere

    def test_decorator_stripping(self):
        verdict = Gpt4Classifier().classify("ga_email")
        assert verdict.label is Level3.CONTACT_INFORMATION

    def test_prompt_contains_required_format(self):
        assert "<input text> // <category> // <score> // <explanation>" in GPT4_PROMPT

    def test_prompt_messages_carry_ontology(self):
        messages = Gpt4Classifier().prompt_messages()
        assert messages[0]["role"] == "system"
        assert "Aliases" in messages[1]["content"]

    def test_formatted_output_shape(self):
        verdict = Gpt4Classifier().classify("email")
        formatted = verdict.formatted()
        assert formatted.count(" // ") == 3

    def test_sweep_has_five_models(self):
        sweep = temperature_sweep()
        assert [m.temperature for m in sweep] == list(TEMPERATURES)


class TestMajorityVote:
    def test_requires_models(self):
        with pytest.raises(ValueError):
            MajorityVoteClassifier(models=[])

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            MajorityVoteClassifier(confidence_mode="median")

    def test_max_geq_avg_confidence(self):
        avg = MajorityVoteClassifier(confidence_mode="avg")
        maximum = MajorityVoteClassifier(confidence_mode="max")
        for key in ("email", "session_id", "country_code", "rtt"):
            assert maximum.classify(key).confidence >= avg.classify(key).confidence

    def test_majority_label_wins(self):
        class Fixed:
            name = "fixed"

            def __init__(self, label, confidence):
                self._label, self._confidence = label, confidence

            def classify(self, text):
                return Classification(text=text, label=self._label, confidence=self._confidence)

        voters = [
            Fixed(Level3.AGE, 0.9),
            Fixed(Level3.AGE, 0.7),
            Fixed(Level3.NAME, 0.99),
        ]
        ensemble = MajorityVoteClassifier(models=voters, confidence_mode="avg")
        verdict = ensemble.classify("x")
        assert verdict.label is Level3.AGE
        assert verdict.confidence == pytest.approx(0.8)


class TestTable3Bands:
    """Accuracy bands pinned to the paper's Table 3 (±0.06)."""

    def test_temperature_zero_accuracy(self, sample):
        report = validate_classifier(Gpt4Classifier(temperature=0.0, seed=11), sample)
        assert 0.66 <= report.accuracy <= 0.78  # paper: 0.72

    def test_temperature_one_accuracy(self, sample):
        model = temperature_sweep()[-1]
        report = validate_classifier(model, sample)
        assert 0.59 <= report.accuracy <= 0.71  # paper: 0.65

    def test_accuracy_decays_with_temperature(self, sample):
        accuracies = [
            validate_classifier(model, sample).accuracy
            for model in temperature_sweep()
        ]
        assert accuracies[0] > accuracies[-1]

    def test_majority_beats_high_temperature_singles(self, sample):
        majority = validate_classifier(
            MajorityVoteClassifier(confidence_mode="avg"), sample
        )
        worst_single = validate_classifier(temperature_sweep()[-1], sample)
        assert majority.accuracy > worst_single.accuracy
        assert 0.69 <= majority.accuracy <= 0.81  # paper: 0.75

    def test_confidence_threshold_raises_accuracy(self, sample):
        report = validate_classifier(
            MajorityVoteClassifier(confidence_mode="avg"), sample
        )
        assert report.at(0.8).accuracy >= report.accuracy
        assert report.at(0.9).accuracy >= report.at(0.7).accuracy

    def test_coverage_decreases_with_threshold(self, sample):
        report = validate_classifier(
            MajorityVoteClassifier(confidence_mode="avg"), sample
        )
        labeled = [report.at(t).labeled for t in CONFIDENCE_THRESHOLDS]
        assert labeled[0] >= labeled[1] >= labeled[2]
        assert labeled[0] <= report.sample_size

    def test_baseline_ordering_matches_paper(self, sample):
        """Paper: GPT-4 ≫ TF-IDF (.31) > BERT (.18) ≈ SetFit (.16) ≫
        zero-shot (.04)."""
        majority = validate_classifier(
            MajorityVoteClassifier(confidence_mode="avg"), sample
        ).accuracy
        tfidf = validate_classifier(TfidfFuzzyClassifier(), sample).accuracy
        bert = validate_classifier(BertFuzzyClassifier(), sample).accuracy
        few = validate_classifier(FewShotClassifier(), sample).accuracy
        zero = validate_classifier(ZeroShotClassifier(), sample).accuracy
        assert majority > tfidf + 0.2
        assert tfidf > bert
        assert bert >= few - 0.05
        assert few > zero
        assert 0.2 <= tfidf <= 0.45  # paper: 0.31
        assert zero <= 0.15  # paper: 0.04


class TestValidationHarness:
    def test_sample_fraction(self, payload_factory):
        sample = draw_sample(payload_factory.registry.truth, fraction=0.10)
        expected = round(len(payload_factory.registry.truth) * 0.10)
        assert abs(len(sample) - expected) <= 1

    def test_sample_deterministic(self, payload_factory):
        a = draw_sample(payload_factory.registry.truth, seed=1)
        b = draw_sample(payload_factory.registry.truth, seed=1)
        assert a == b

    def test_bad_fraction_rejected(self, payload_factory):
        with pytest.raises(ValueError):
            draw_sample(payload_factory.registry.truth, fraction=0.0)

    def test_score_empty_rejected(self):
        with pytest.raises(ValueError):
            score([], {})

    def test_report_at_unknown_threshold(self, sample):
        report = validate_classifier(Gpt4Classifier(), sample)
        with pytest.raises(KeyError):
            report.at(0.5)


# ----------------------------------------------------------------------
# Property tests: classify_batch ≡ map(classify)
# ----------------------------------------------------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.datatypes.cache import CachingClassifier  # noqa: E402
from repro.datatypes.store import (  # noqa: E402
    PersistentClassifier,
    store_path_for,
)

# Keys as they appear in traffic: short, lowercase, digits and
# underscores.  Duplicates and the empty string are deliberately in
# range — batching must tolerate multisets, not just key sets.
_KEY = st.text(alphabet="abcdef_0123456789", max_size=12)
_KEYS = st.lists(_KEY, max_size=20)


class TestBatchPointwiseProperty:
    """For every classifier layer the engine stacks, ``classify_batch``
    over ANY multiset of keys must equal the per-item ``classify`` map
    — order kept, duplicates answered consistently.  This is the
    property all the batching/memoization optimizations lean on."""

    TFIDF = TfidfFuzzyClassifier()
    BERT = BertFuzzyClassifier()

    @settings(max_examples=25, deadline=None)
    @given(keys=_KEYS)
    def test_tfidf_batch_matches_per_item(self, keys):
        assert self.TFIDF.classify_batch(keys) == [
            self.TFIDF.classify(key) for key in keys
        ]

    @settings(max_examples=25, deadline=None)
    @given(keys=_KEYS)
    def test_bertsim_batch_matches_per_item(self, keys):
        assert self.BERT.classify_batch(keys) == [
            self.BERT.classify(key) for key in keys
        ]

    @settings(max_examples=25, deadline=None)
    @given(keys=_KEYS)
    def test_fresh_cache_batch_matches_per_item(self, keys):
        cache = CachingClassifier(TfidfFuzzyClassifier())
        assert cache.classify_batch(keys) == [
            self.TFIDF.classify(key) for key in keys
        ]

    @settings(max_examples=25, deadline=None)
    @given(keys=_KEYS, primed=_KEYS)
    def test_primed_cache_batch_matches_per_item(self, keys, primed):
        # A cache warmed with an arbitrary other multiset must answer
        # identically to the bare classifier — hits and misses mixed.
        cache = CachingClassifier(TfidfFuzzyClassifier())
        cache.classify_batch(primed)
        assert cache.classify_batch(keys) == [
            self.TFIDF.classify(key) for key in keys
        ]


class TestStoreBatchProperty:
    """The persistent-store layer under the same property: the store
    starts absent and warms across examples, so early draws exercise
    the miss path and later draws the primed round-trip path."""

    @pytest.fixture(scope="class")
    def store_classifier(self, tmp_path_factory):
        path = store_path_for(tmp_path_factory.mktemp("prop-store"))
        return PersistentClassifier.wrap(TfidfFuzzyClassifier(), path)

    @settings(max_examples=25, deadline=None)
    @given(keys=_KEYS)
    def test_store_batch_matches_per_item(self, store_classifier, keys):
        plain = TfidfFuzzyClassifier()
        assert store_classifier.classify_batch(keys) == [
            plain.classify(key) for key in keys
        ]
