"""Unit and property tests for TCP segmentation and reassembly."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import TcpHeader, TcpSegment
from repro.net.tcp import DEFAULT_MSS, FlowId, TcpReassembler, segment_request

FLOW = FlowId(client_ip="10.0.0.1", client_port=40000, server_ip="34.0.0.1", server_port=443)


class TestSegmentation:
    def test_small_payload_three_frames(self):
        frames = segment_request(b"hello", FLOW, timestamp=0.0)
        # SYN + one data segment + FIN
        assert len(frames) == 3
        assert frames[0].tcp.flags & TcpHeader.FLAG_SYN
        assert frames[-1].tcp.flags & TcpHeader.FLAG_FIN

    def test_large_payload_segmented_at_mss(self):
        payload = b"x" * (DEFAULT_MSS * 2 + 10)
        frames = segment_request(payload, FLOW, timestamp=0.0)
        data_frames = [f for f in frames if f.payload]
        assert len(data_frames) == 3
        assert all(len(f.payload) <= DEFAULT_MSS for f in data_frames)

    def test_sequence_numbers_contiguous(self):
        payload = b"a" * 3000
        frames = segment_request(payload, FLOW, timestamp=0.0, isn=100)
        data_frames = [f for f in frames if f.payload]
        expected = 101  # ISN + 1 for SYN
        for frame in data_frames:
            assert frame.tcp.seq == expected
            expected += len(frame.payload)

    def test_without_handshake(self):
        frames = segment_request(b"abc", FLOW, timestamp=0.0, with_handshake=False)
        assert all(f.payload for f in frames)

    def test_timestamps_increase(self):
        frames = segment_request(b"x" * 5000, FLOW, timestamp=10.0)
        stamps = [f.timestamp for f in frames]
        assert stamps == sorted(stamps)
        assert stamps[0] >= 10.0


class TestReassembly:
    def reassemble(self, frames):
        reassembler = TcpReassembler()
        for frame in frames:
            reassembler.add_frame(frame)
        return reassembler.flows()

    def test_in_order(self):
        payload = b"the quick brown fox" * 200
        flows = self.reassemble(segment_request(payload, FLOW, 0.0))
        assert len(flows) == 1
        assert flows[0].data == payload
        assert flows[0].complete

    def test_out_of_order(self):
        payload = b"0123456789" * 500
        frames = segment_request(payload, FLOW, 0.0)
        rng = random.Random(4)
        rng.shuffle(frames)
        flows = self.reassemble(frames)
        assert flows[0].data == payload
        assert flows[0].complete

    def test_duplicates_dropped(self):
        payload = b"abc" * 1000
        frames = segment_request(payload, FLOW, 0.0)
        flows = self.reassemble(frames + frames)
        assert flows[0].data == payload

    def test_hole_marks_incomplete(self):
        payload = b"z" * (DEFAULT_MSS * 3)
        frames = segment_request(payload, FLOW, 0.0)
        data_frames = [f for f in frames if f.payload]
        frames.remove(data_frames[1])  # drop the middle segment
        flows = self.reassemble(frames)
        assert not flows[0].complete
        assert len(flows[0].data) < len(payload)

    def test_two_flows_kept_separate(self):
        other = FlowId(
            client_ip="10.0.0.1",
            client_port=40001,
            server_ip="34.0.0.2",
            server_port=443,
        )
        frames = segment_request(b"first", FLOW, 0.0) + segment_request(
            b"second", other, 1.0
        )
        flows = self.reassemble(frames)
        assert len(flows) == 2
        assert {f.data for f in flows} == {b"first", b"second"}

    def test_flow_id_str(self):
        assert str(FLOW) == "10.0.0.1:40000->34.0.0.1:443"

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=8000), st.integers(0, 2**31))
    def test_shuffle_round_trip_property(self, payload, seed):
        frames = segment_request(payload, FLOW, 0.0)
        random.Random(seed).shuffle(frames)
        flows = self.reassemble(frames)
        assert flows[0].data == payload
        assert flows[0].complete

    def test_empty_reassembler(self):
        assert TcpReassembler().flows() == []

    def test_len_counts_flows(self):
        reassembler = TcpReassembler()
        for frame in segment_request(b"x", FLOW, 0.0):
            reassembler.add_frame(frame)
        assert len(reassembler) == 1


def segment(seq: int, payload: bytes, flags: int = 0x18, ts: float = 0.0) -> TcpSegment:
    return TcpSegment(
        timestamp=ts,
        src_ip=FLOW.client_ip,
        src_port=FLOW.client_port,
        dst_ip=FLOW.server_ip,
        dst_port=FLOW.server_port,
        seq=seq,
        flags=flags,
        payload=payload,
    )


def impaired_segments(payload: bytes, seed: int) -> list[TcpSegment]:
    """SYN + MSS segments + FIN, plus seeded reorder / duplication /
    partial-overlap retransmissions carrying consistent stream bytes."""
    rng = random.Random(seed)
    isn = 1
    segments = [segment(isn, b"", flags=TcpHeader.FLAG_SYN)]
    offsets = list(range(0, len(payload), 700))
    for start in offsets:
        segments.append(segment(isn + 1 + start, payload[start : start + 700]))
    # Partial-overlap retransmissions: random ranges of the true
    # stream.  They avoid the originals' exact sequence numbers — a
    # *shorter* same-seq copy would shadow an original under the
    # first-copy-wins rule and legitimately leave a hole, which is a
    # loss scenario, not a recoverable-overlap one.
    for _ in range(rng.randint(0, 6)):
        start = rng.randrange(0, len(payload))
        if start % 700 == 0:
            start += 1
            if start >= len(payload):
                continue
        stop = min(len(payload), start + rng.randint(1, 1500))
        segments.append(segment(isn + 1 + start, payload[start:stop]))
    # Exact duplicates.
    for _ in range(rng.randint(0, 4)):
        segments.append(rng.choice(segments[1:]))
    segments.append(
        segment(isn + 1 + len(payload), b"", flags=TcpHeader.FLAG_FIN | TcpHeader.FLAG_ACK)
    )
    rng.shuffle(segments)
    return segments


class TestIncrementalReassembly:
    """The streaming API (drain_ready/pop_flow) against the batch walk."""

    def run_incremental(self, segments) -> tuple[bytes, bool, "TcpReassembler"]:
        reassembler = TcpReassembler()
        drained = bytearray()
        for item in segments:
            reassembler.add_segment(item)
            drained += reassembler.drain_ready(FLOW)
        flow = reassembler.pop_flow(FLOW)
        return bytes(drained) + flow.data, flow.complete, reassembler

    def run_batch(self, segments) -> tuple[bytes, bool]:
        reassembler = TcpReassembler()
        for item in segments:
            reassembler.add_segment(item)
        (flow,) = reassembler.flows()
        return flow.data, flow.complete

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=6000), st.integers(0, 2**31))
    def test_incremental_equals_batch_under_impairment(self, payload, seed):
        segments = impaired_segments(payload, seed)
        batch_data, batch_complete = self.run_batch(segments)
        inc_data, inc_complete, reassembler = self.run_incremental(segments)
        assert inc_data == batch_data
        assert inc_complete == batch_complete
        # Payload reconstruction is exact despite the impairment.
        assert batch_data == payload
        assert batch_complete
        # Everything was released: popping left no buffered bytes.
        assert reassembler.buffered_bytes() == 0
        assert len(reassembler) == 0

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=6000), st.integers(0, 2**31))
    def test_incremental_equals_batch_with_holes(self, payload, seed):
        rng = random.Random(seed)
        segments = impaired_segments(payload, seed)
        # Drop a random data segment outright: both paths must agree on
        # the (possibly incomplete) result, byte for byte.
        data_indexes = [i for i, s in enumerate(segments) if s.payload]
        if data_indexes:
            del segments[rng.choice(data_indexes)]
        batch_data, batch_complete = self.run_batch(segments)
        inc_data, inc_complete, _ = self.run_incremental(segments)
        assert inc_data == batch_data
        assert inc_complete == batch_complete

    def test_drain_releases_memory_as_stream_arrives(self):
        payload = b"m" * 50_000
        reassembler = TcpReassembler()
        high_water = 0
        drained = bytearray()
        for frame in segment_request(payload, FLOW, 0.0):
            reassembler.add_frame(frame)
            drained += reassembler.drain_ready(FLOW)
            high_water = max(high_water, reassembler.buffered_bytes())
        # In-order traffic drains continuously: the reassembler never
        # holds more than one segment's bytes at a time.
        assert high_water <= DEFAULT_MSS
        flow = reassembler.pop_flow(FLOW)
        assert bytes(drained) + flow.data == payload
        assert flow.complete

    def test_idle_and_lru_bookkeeping(self):
        other = FlowId(
            client_ip="10.0.0.9", client_port=1, server_ip="34.0.0.9", server_port=443
        )
        reassembler = TcpReassembler()
        reassembler.add_segment(segment(1, b"a", ts=10.0))
        reassembler.add_segment(
            TcpSegment(
                timestamp=200.0,
                src_ip=other.client_ip,
                src_port=other.client_port,
                dst_ip=other.server_ip,
                dst_port=other.server_port,
                seq=1,
                flags=0x18,
                payload=b"b",
            )
        )
        assert reassembler.idle_flows(now=200.0, timeout=60.0) == [FLOW]
        assert reassembler.lru_flow() == FLOW
        assert reassembler.flow_ids() == [FLOW, other]
        reassembler.pop_flow(FLOW)
        assert reassembler.lru_flow() == other
