"""Unit and property tests for TCP segmentation and reassembly."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import TcpHeader
from repro.net.tcp import DEFAULT_MSS, FlowId, TcpReassembler, segment_request

FLOW = FlowId(client_ip="10.0.0.1", client_port=40000, server_ip="34.0.0.1", server_port=443)


class TestSegmentation:
    def test_small_payload_three_frames(self):
        frames = segment_request(b"hello", FLOW, timestamp=0.0)
        # SYN + one data segment + FIN
        assert len(frames) == 3
        assert frames[0].tcp.flags & TcpHeader.FLAG_SYN
        assert frames[-1].tcp.flags & TcpHeader.FLAG_FIN

    def test_large_payload_segmented_at_mss(self):
        payload = b"x" * (DEFAULT_MSS * 2 + 10)
        frames = segment_request(payload, FLOW, timestamp=0.0)
        data_frames = [f for f in frames if f.payload]
        assert len(data_frames) == 3
        assert all(len(f.payload) <= DEFAULT_MSS for f in data_frames)

    def test_sequence_numbers_contiguous(self):
        payload = b"a" * 3000
        frames = segment_request(payload, FLOW, timestamp=0.0, isn=100)
        data_frames = [f for f in frames if f.payload]
        expected = 101  # ISN + 1 for SYN
        for frame in data_frames:
            assert frame.tcp.seq == expected
            expected += len(frame.payload)

    def test_without_handshake(self):
        frames = segment_request(b"abc", FLOW, timestamp=0.0, with_handshake=False)
        assert all(f.payload for f in frames)

    def test_timestamps_increase(self):
        frames = segment_request(b"x" * 5000, FLOW, timestamp=10.0)
        stamps = [f.timestamp for f in frames]
        assert stamps == sorted(stamps)
        assert stamps[0] >= 10.0


class TestReassembly:
    def reassemble(self, frames):
        reassembler = TcpReassembler()
        for frame in frames:
            reassembler.add_frame(frame)
        return reassembler.flows()

    def test_in_order(self):
        payload = b"the quick brown fox" * 200
        flows = self.reassemble(segment_request(payload, FLOW, 0.0))
        assert len(flows) == 1
        assert flows[0].data == payload
        assert flows[0].complete

    def test_out_of_order(self):
        payload = b"0123456789" * 500
        frames = segment_request(payload, FLOW, 0.0)
        rng = random.Random(4)
        rng.shuffle(frames)
        flows = self.reassemble(frames)
        assert flows[0].data == payload
        assert flows[0].complete

    def test_duplicates_dropped(self):
        payload = b"abc" * 1000
        frames = segment_request(payload, FLOW, 0.0)
        flows = self.reassemble(frames + frames)
        assert flows[0].data == payload

    def test_hole_marks_incomplete(self):
        payload = b"z" * (DEFAULT_MSS * 3)
        frames = segment_request(payload, FLOW, 0.0)
        data_frames = [f for f in frames if f.payload]
        frames.remove(data_frames[1])  # drop the middle segment
        flows = self.reassemble(frames)
        assert not flows[0].complete
        assert len(flows[0].data) < len(payload)

    def test_two_flows_kept_separate(self):
        other = FlowId(
            client_ip="10.0.0.1",
            client_port=40001,
            server_ip="34.0.0.2",
            server_port=443,
        )
        frames = segment_request(b"first", FLOW, 0.0) + segment_request(
            b"second", other, 1.0
        )
        flows = self.reassemble(frames)
        assert len(flows) == 2
        assert {f.data for f in flows} == {b"first", b"second"}

    def test_flow_id_str(self):
        assert str(FLOW) == "10.0.0.1:40000->34.0.0.1:443"

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=8000), st.integers(0, 2**31))
    def test_shuffle_round_trip_property(self, payload, seed):
        frames = segment_request(payload, FLOW, 0.0)
        random.Random(seed).shuffle(frames)
        flows = self.reassemble(frames)
        assert flows[0].data == payload
        assert flows[0].complete

    def test_empty_reassembler(self):
        assert TcpReassembler().flows() == []

    def test_len_counts_flows(self):
        reassembler = TcpReassembler()
        for frame in segment_request(b"x", FLOW, 0.0):
            reassembler.add_frame(frame)
        assert len(reassembler) == 1
