"""Unit tests for the privacy-policy text analyzer."""

import pytest

from repro.audit.policytext import ParsedPolicy, parse_policy, parse_sentence
from repro.model import AGE_COLUMNS, FlowCell, TraceColumn
from repro.ontology.nodes import Level2


class TestSentences:
    def test_negative_commitment(self):
        statement = parse_sentence(
            "We do not sell personal information to third parties."
        )
        assert statement is not None
        assert statement.prohibits
        assert not statement.discloses
        assert (Level2.PERSONAL_IDENTIFIERS, FlowCell.SHARE_3RD) in statement.prohibits

    def test_positive_disclosure(self):
        statement = parse_sentence(
            "We may share usage data with advertising partners."
        )
        assert statement is not None
        assert statement.discloses == (
            (Level2.USER_INTERESTS_AND_BEHAVIORS, FlowCell.SHARE_3RD_ATS),
        )

    def test_child_audience_scoping(self):
        statement = parse_sentence(
            "We do not share personal information of children under 13 with anyone."
        )
        assert statement.audiences == (TraceColumn.CHILD,)

    def test_under16_scopes_to_child_and_adolescent(self):
        statement = parse_sentence(
            "We do not sell the personal information of users under 16 to third parties."
        )
        assert set(statement.audiences) == {
            TraceColumn.CHILD,
            TraceColumn.ADOLESCENT,
        }

    def test_unscoped_applies_to_all_ages(self):
        statement = parse_sentence(
            "We share device information with service providers."
        )
        assert statement.audiences == AGE_COLUMNS

    def test_out_of_grammar_returns_none(self):
        assert parse_sentence("We value your privacy very much.") is None

    def test_longest_vocabulary_match_wins(self):
        """'personal identifiers' must not be swallowed by 'identifiers'."""
        statement = parse_sentence(
            "We may share personal identifiers with service providers."
        )
        assert statement.discloses == (
            (Level2.PERSONAL_IDENTIFIERS, FlowCell.SHARE_3RD),
        )


class TestDocuments:
    POLICY = """
    Welcome to ExampleApp. We value your privacy very much.
    We collect device information and usage data with our analytics providers.
    We may share usage information with advertising partners for all users.
    We do not sell personal information of children under 13 to third parties.
    Our offices are located in California.
    We will not disclose location information of users under 16 to advertisers.
    We engage in various commercial activities with assorted firms.
    """

    def test_parse_policy_statements(self):
        parsed = parse_policy(self.POLICY)
        assert len(parsed.statements) >= 4
        prohibitions = [s for s in parsed.statements if s.prohibits]
        disclosures = [s for s in parsed.statements if s.discloses]
        assert len(prohibitions) == 2
        assert len(disclosures) >= 2

    def test_unparsed_sharing_sentences_surface(self):
        parsed = parse_policy(
            "We may share some stuff with some folks sometimes."
        )
        assert not parsed.statements
        assert len(parsed.unparsed) == 1

    def test_inert_sentences_silently_skipped(self):
        parsed = parse_policy("Our offices are located in California.")
        assert not parsed.statements
        assert not parsed.unparsed

    def test_to_model_integrates_with_auditor(self):
        parsed = parse_policy(self.POLICY)
        model = parsed.to_model("exampleapp")
        # The child prohibition must be enforceable by the audit engine.
        assert model.prohibited(
            TraceColumn.CHILD, Level2.PERSONAL_IDENTIFIERS, FlowCell.SHARE_3RD
        )
        assert not model.prohibited(
            TraceColumn.ADULT, Level2.PERSONAL_IDENTIFIERS, FlowCell.SHARE_3RD
        )
        # The advertising disclosure is honoured for adults...
        assert model.disclosed(
            TraceColumn.ADULT,
            Level2.USER_INTERESTS_AND_BEHAVIORS,
            FlowCell.SHARE_3RD_ATS,
        )
        # ...but nothing is disclosed pre-consent.
        assert not model.disclosed(
            TraceColumn.LOGGED_OUT,
            Level2.USER_INTERESTS_AND_BEHAVIORS,
            FlowCell.SHARE_3RD_ATS,
        )

    def test_round_trip_with_quoted_paper_statements(self):
        """Some of the paper's actual quoted policy lines parse."""
        tiktok = parse_sentence(
            "TikTok does not sell information from children to third parties."
        )
        assert tiktok is not None
        assert tiktok.audiences == (TraceColumn.CHILD,)
        assert tiktok.prohibits

        # Roblox's quote names no recipient — out of grammar, and the
        # analyzer must surface rather than guess it.
        parsed = parse_policy(
            "We may share non-identifying data of all users regardless of their age."
        )
        assert not parsed.statements
        assert parsed.unparsed
