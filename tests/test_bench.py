"""Tests for the recorded benchmark trajectory (``repro bench``)."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_FIELDS,
    BenchError,
    bench_entries,
    compare_entries,
    evaluate_gates,
    load_entry,
    run_bench,
    validate_entry,
)
from repro.pipeline.profile import validate_profile


def _record(workload="decode", **overrides) -> dict:
    record = {
        "workload": workload,
        "scale": 0.02,
        "profile": "standard",
        "jobs": 1,
        "repeats": 1,
        "wall_time_s": 1.0,
        "peak_rss_kb": 1000,
        "throughput": 10.0,
        "throughput_unit": "MB/s",
        "git_rev": "abc1234",
    }
    record.update(overrides)
    return record


class TestSchema:
    def test_valid_entry_passes(self):
        validate_entry({"workloads": [_record()]})

    @pytest.mark.parametrize("missing", BENCH_SCHEMA_FIELDS)
    def test_each_schema_field_is_required(self, missing):
        record = _record()
        del record[missing]
        with pytest.raises(BenchError, match=missing):
            validate_entry({"workloads": [record]})

    def test_load_entry_rejects_non_entries(self, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(BenchError, match="workloads"):
            load_entry(path)


class TestTrajectory:
    def test_entries_ordered_by_index(self, tmp_path):
        for index in (3, 0, 11, 2):
            (tmp_path / f"BENCH_{index}.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # non-numeric: ignored
        assert [n for n, _ in bench_entries(tmp_path)] == [0, 2, 3, 11]

    def test_compare_matches_like_for_like_only(self):
        current = {"workloads": [_record(throughput=20.0)]}
        previous = {
            "workloads": [
                _record(scale=0.005, throughput=5.0),  # different knobs
                _record(throughput=10.0),  # comparable
            ]
        }
        ratios = compare_entries(current, previous)
        assert ratios["decode"]["throughput_speedup"] == 2.0

    def test_compare_skips_unmatched_workloads(self):
        current = {"workloads": [_record(workload="audit")]}
        previous = {"workloads": [_record(workload="decode")]}
        assert compare_entries(current, previous) == {}

    def test_interleaved_quick_entry_does_not_disarm_comparison(self, tmp_path):
        """The baseline is the newest *comparable* entry, not the
        newest file — a --quick CI entry in between must be skipped."""
        (tmp_path / "BENCH_0.json").write_text(
            json.dumps({"workloads": [_record(scale=0.002, throughput=5.0)]})
        )
        (tmp_path / "BENCH_1.json").write_text(  # quick entry, other knobs
            json.dumps({"workloads": [_record(scale=0.9, throughput=1.0)]})
        )
        path, document = run_bench(
            tmp_path, scale=0.002, repeats=1, workloads=("decode",)
        )
        assert path.name == "BENCH_2.json"
        assert document["compared_to"]["file"] == "BENCH_0.json"

    def test_run_bench_creates_missing_output_dir(self, tmp_path):
        """`repro bench --output-dir <new>` must not require the
        directory to exist (the CI perf-smoke job relies on this)."""
        target = tmp_path / "nested" / "bench"
        path, _ = run_bench(
            target, scale=0.002, repeats=1, workloads=("decode",)
        )
        assert path == target / "BENCH_0.json"
        assert path.exists()


class TestRunBench:
    def test_records_schema_valid_entry_and_compares(self, tmp_path):
        """A real (tiny) run: the decode workload end to end, twice.

        The second run must pick the next index and embed a
        ``compared_to`` block against the first.
        """
        path, document = run_bench(
            tmp_path, scale=0.002, repeats=1, workloads=("decode",)
        )
        assert path.name == "BENCH_0.json"
        validate_entry(document)
        reread = load_entry(path)
        assert reread["workloads"][0]["workload"] == "decode"
        assert reread["workloads"][0]["throughput"] > 0
        assert reread["workloads"][0]["peak_rss_kb"] > 0

        second_path, second = run_bench(
            tmp_path, scale=0.002, repeats=1, workloads=("decode",)
        )
        assert second_path.name == "BENCH_1.json"
        assert second["compared_to"]["file"] == "BENCH_0.json"
        assert second["compared_to"]["decode"]["throughput_speedup"] > 0

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(BenchError, match="unknown workload"):
            run_bench(tmp_path, workloads=("nonsense",))

    def test_audit_incremental_workload_records_in_entry_ratio(self, tmp_path):
        """A real (tiny) incremental run: the record must carry the
        warm-vs-cold ratio, zero dirty units, and a profile sidecar
        whose engine section shows full unit reuse."""
        path, document = run_bench(
            tmp_path, scale=0.002, repeats=1, workloads=("audit-incremental",)
        )
        validate_entry(document)
        record = document["workloads"][0]
        assert record["workload"] == "audit-incremental"
        assert record["detail"]["unit_misses"] == 0
        assert record["detail"]["unit_hits"] == record["detail"]["traces"]
        assert record["detail"]["cold_wall_time_s"] > record["wall_time_s"]
        assert document["audit_incremental_vs_cold"] > 1.0
        profiles = json.loads(
            (tmp_path / f"{path.stem}.profile.json").read_text()
        )
        engine = profiles["audit-incremental"]["engine"]
        assert engine["unit_misses"] == 0
        assert engine["unit_hits"] == record["detail"]["traces"]


class TestRepoTrajectory:
    def test_checked_in_entries_are_schema_valid(self):
        """The committed BENCH_*.json history must satisfy the schema."""
        from pathlib import Path

        root = Path(__file__).parent.parent
        entries = bench_entries(root)
        assert entries, "repo must carry a recorded benchmark trajectory"
        for _, path in entries:
            validate_entry(load_entry(path))

    def test_trajectory_records_decode_speedup(self):
        """The PR-4 rewrite is pinned: ≥2x decode throughput on the
        standard profile between the first two recorded entries."""
        from pathlib import Path

        root = Path(__file__).parent.parent
        entries = dict(bench_entries(root))
        first = load_entry(entries[0])
        second = load_entry(entries[1])
        ratios = compare_entries(second, first)
        assert ratios["decode"]["throughput_speedup"] >= 2.0

    def test_trajectory_records_stream_workload(self):
        """From BENCH_2 on, the streaming decoder is part of the
        recorded suite: a `stream` record with real throughput."""
        from pathlib import Path

        root = Path(__file__).parent.parent
        entries = dict(bench_entries(root))
        latest = load_entry(entries[max(entries)])
        streams = [
            record
            for record in latest["workloads"]
            if record["workload"] == "stream"
        ]
        assert streams, "latest BENCH entry must include the stream workload"
        assert streams[0]["throughput"] > 0
        assert streams[0]["throughput_unit"] == "MB/s"

    def test_cli_exposes_bench_subcommand(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--quick", "--output-dir", "/tmp/x", "--jobs", "2"]
        )
        assert args.func.__name__ == "cmd_bench"
        assert args.quick is True


class TestEvaluateGates:
    """The ``--min-*`` perf gates over a recorded entry."""

    def _document(self, **overrides) -> dict:
        document = {
            "workloads": [_record()],
            "compared_to": {
                "file": "BENCH_1.json",
                "decode": {"throughput_speedup": 1.4},
                "audit": {"throughput_speedup": 1.8},
                "audit-parallel": {"throughput_speedup": 1.3},
            },
            "audit_parallel_vs_sequential": 1.1,
        }
        document.update(overrides)
        return document

    def test_unarmed_gates_are_silent(self):
        assert evaluate_gates(self._document()) == ([], [])

    def test_trajectory_gates_pass_above_minimum(self):
        warnings, errors = evaluate_gates(
            self._document(),
            min_decode_speedup=1.0,
            min_audit_speedup=1.5,
            min_audit_parallel_speedup=1.2,
        )
        assert warnings == [] and errors == []

    def test_trajectory_gate_fails_below_minimum(self):
        warnings, errors = evaluate_gates(
            self._document(), min_audit_speedup=2.0
        )
        assert warnings == []
        assert len(errors) == 1
        assert "audit speedup" in errors[0]
        assert "2.00x" in errors[0]

    def test_each_workload_gates_independently(self):
        _, errors = evaluate_gates(
            self._document(),
            min_decode_speedup=5.0,
            min_audit_speedup=5.0,
            min_audit_parallel_speedup=5.0,
        )
        assert len(errors) == 3

    def test_missing_baseline_warns_instead_of_disarming(self):
        document = self._document()
        del document["compared_to"]
        warnings, errors = evaluate_gates(document, min_audit_speedup=1.5)
        assert errors == []
        assert len(warnings) == 1
        assert "no previous entry" in warnings[0]

    def test_missing_workload_comparison_warns(self):
        document = self._document()
        del document["compared_to"]["audit-parallel"]
        warnings, errors = evaluate_gates(
            document, min_audit_parallel_speedup=1.2
        )
        assert errors == []
        assert len(warnings) == 1

    def test_parallel_efficiency_gate(self):
        _, errors = evaluate_gates(
            self._document(), min_parallel_efficiency=1.0
        )
        assert errors == []
        _, errors = evaluate_gates(
            self._document(audit_parallel_vs_sequential=0.8),
            min_parallel_efficiency=1.0,
        )
        assert len(errors) == 1
        assert "parallel efficiency" in errors[0]

    def test_parallel_efficiency_warns_without_both_workloads(self):
        document = self._document()
        del document["audit_parallel_vs_sequential"]
        warnings, errors = evaluate_gates(
            document, min_parallel_efficiency=1.0
        )
        assert errors == []
        assert len(warnings) == 1

    def test_incremental_speedup_gate(self):
        passing = self._document(audit_incremental_vs_cold=3.5)
        _, errors = evaluate_gates(passing, min_incremental_speedup=1.0)
        assert errors == []
        failing = self._document(audit_incremental_vs_cold=0.9)
        _, errors = evaluate_gates(failing, min_incremental_speedup=1.0)
        assert len(errors) == 1
        assert "incremental speedup" in errors[0]

    def test_incremental_speedup_warns_without_the_workload(self):
        warnings, errors = evaluate_gates(
            self._document(), min_incremental_speedup=1.0
        )
        assert errors == []
        assert len(warnings) == 1
        assert "audit-incremental" in warnings[0]


class TestProfileSidecar:
    def test_audit_workloads_record_validated_profiles(self, tmp_path):
        path, document = run_bench(
            tmp_path,
            scale=0.002,
            repeats=1,
            workloads=("audit", "audit-parallel"),
        )
        assert document["audit_parallel_vs_sequential"] > 0
        sidecar = tmp_path / f"{path.stem}.profile.json"
        assert sidecar.exists()
        profiles = json.loads(sidecar.read_text())
        assert set(profiles) == {"audit", "audit-parallel"}
        for name, profile in profiles.items():
            validate_profile(profile)
            assert profile["workload"] == name
        assert profiles["audit"]["engine"]["executor"] == "sequential"
        assert profiles["audit-parallel"]["engine"]["jobs"] == 2

    def test_decode_only_entries_have_no_sidecar(self, tmp_path):
        path, _ = run_bench(
            tmp_path, scale=0.002, repeats=1, workloads=("decode",)
        )
        assert not (tmp_path / f"{path.stem}.profile.json").exists()
