"""Unit tests for the shared vocabulary types (repro.model)."""

import pytest

from repro.model import (
    AGE_COLUMNS,
    ALL_COLUMNS,
    AgeGroup,
    FlowCell,
    Platform,
    Presence,
    TraceColumn,
    TraceKind,
)


class TestAgeGroup:
    def test_child_and_adolescent_are_protected(self):
        assert AgeGroup.CHILD.protected
        assert AgeGroup.ADOLESCENT.protected

    def test_adult_is_not_protected(self):
        assert not AgeGroup.ADULT.protected

    def test_three_age_groups(self):
        assert len(AgeGroup) == 3


class TestTraceKind:
    def test_logged_out_is_not_consented(self):
        assert not TraceKind.LOGGED_OUT.consented

    def test_account_creation_and_logged_in_are_consented(self):
        assert TraceKind.ACCOUNT_CREATION.consented
        assert TraceKind.LOGGED_IN.consented


class TestTraceColumn:
    def test_logged_out_maps_regardless_of_age(self):
        assert (
            TraceColumn.for_trace(TraceKind.LOGGED_OUT, None)
            is TraceColumn.LOGGED_OUT
        )

    @pytest.mark.parametrize("age", list(AgeGroup))
    def test_age_traces_map_to_age_columns(self, age):
        for kind in (TraceKind.ACCOUNT_CREATION, TraceKind.LOGGED_IN):
            assert TraceColumn.for_trace(kind, age).value == age.value

    def test_age_trace_without_age_raises(self):
        with pytest.raises(ValueError):
            TraceColumn.for_trace(TraceKind.LOGGED_IN, None)

    def test_age_group_round_trip(self):
        assert TraceColumn.CHILD.age_group is AgeGroup.CHILD
        assert TraceColumn.LOGGED_OUT.age_group is None

    def test_column_constants(self):
        assert len(AGE_COLUMNS) == 3
        assert len(ALL_COLUMNS) == 4
        assert TraceColumn.LOGGED_OUT in ALL_COLUMNS
        assert TraceColumn.LOGGED_OUT not in AGE_COLUMNS


class TestFlowCell:
    def test_share_cells(self):
        assert FlowCell.SHARE_3RD.is_share
        assert FlowCell.SHARE_3RD_ATS.is_share
        assert not FlowCell.COLLECT_1ST.is_share

    def test_ats_cells(self):
        assert FlowCell.COLLECT_1ST_ATS.is_ats
        assert FlowCell.SHARE_3RD_ATS.is_ats
        assert not FlowCell.SHARE_3RD.is_ats


class TestPresence:
    def test_both_is_on_every_platform(self):
        for platform in Platform:
            assert Presence.BOTH.on(platform)

    def test_none_is_on_no_platform(self):
        for platform in Platform:
            assert not Presence.NONE.on(platform)

    def test_web_only_includes_desktop(self):
        """Desktop traces merge with web in Table 4 (paper §3.1.3)."""
        assert Presence.WEB_ONLY.on(Platform.WEB)
        assert Presence.WEB_ONLY.on(Platform.DESKTOP)
        assert not Presence.WEB_ONLY.on(Platform.MOBILE)

    def test_mobile_only(self):
        assert Presence.MOBILE_ONLY.on(Platform.MOBILE)
        assert not Presence.MOBILE_ONLY.on(Platform.WEB)
        assert not Presence.MOBILE_ONLY.on(Platform.DESKTOP)

    @pytest.mark.parametrize(
        "web,mobile,expected",
        [
            (True, True, Presence.BOTH),
            (True, False, Presence.WEB_ONLY),
            (False, True, Presence.MOBILE_ONLY),
            (False, False, Presence.NONE),
        ],
    )
    def test_from_platforms(self, web, mobile, expected):
        assert Presence.from_platforms(web=web, mobile=mobile) is expected

    def test_from_platforms_round_trip(self):
        for presence in (Presence.BOTH, Presence.WEB_ONLY, Presence.MOBILE_ONLY, Presence.NONE):
            web = presence.on(Platform.WEB)
            mobile = presence.on(Platform.MOBILE)
            assert Presence.from_platforms(web, mobile) is presence
