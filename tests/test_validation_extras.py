"""Unit tests for the validation extras: confusion matrix, recall."""

import pytest

from repro.datatypes.base import Classification
from repro.datatypes.gpt4 import Gpt4Classifier
from repro.datatypes.validation import (
    confusion_matrix,
    draw_sample,
    per_class_recall,
    top_confusions,
)
from repro.ontology.nodes import Level3


def predictions_from(pairs):
    return [
        Classification(text=text, label=predicted, confidence=0.9)
        for text, predicted in pairs
    ]


TRUTH = {
    "a": Level3.AGE,
    "b": Level3.AGE,
    "c": Level3.LANGUAGE,
    "d": Level3.LANGUAGE,
    "e": Level3.LANGUAGE,
}


class TestConfusionMatrix:
    def test_counts(self):
        predictions = predictions_from(
            [
                ("a", Level3.AGE),
                ("b", Level3.LOCATION_TIME),
                ("c", Level3.LANGUAGE),
                ("d", Level3.LANGUAGE),
                ("e", None),
            ]
        )
        matrix = confusion_matrix(predictions, TRUTH)
        assert matrix[(Level3.AGE, Level3.AGE)] == 1
        assert matrix[(Level3.AGE, Level3.LOCATION_TIME)] == 1
        assert matrix[(Level3.LANGUAGE, Level3.LANGUAGE)] == 2
        assert matrix[(Level3.LANGUAGE, None)] == 1

    def test_top_confusions_exclude_diagonal(self):
        predictions = predictions_from(
            [
                ("a", Level3.AGE),
                ("b", Level3.LOCATION_TIME),
                ("c", Level3.LANGUAGE),
                ("d", Level3.AGE),
                ("e", Level3.AGE),
            ]
        )
        matrix = confusion_matrix(predictions, TRUTH)
        worst = top_confusions(matrix, n=2)
        assert worst[0] == (Level3.LANGUAGE, Level3.AGE, 2)
        assert all(true is not predicted for true, predicted, _ in worst)

    def test_per_class_recall(self):
        predictions = predictions_from(
            [
                ("a", Level3.AGE),
                ("b", Level3.AGE),
                ("c", Level3.LANGUAGE),
                ("d", None),
                ("e", Level3.AGE),
            ]
        )
        recall = per_class_recall(confusion_matrix(predictions, TRUTH))
        assert recall[Level3.AGE] == 1.0
        assert recall[Level3.LANGUAGE] == pytest.approx(1 / 3)


class TestOnRealClassifier:
    def test_confusions_are_plausible_neighbors(self, payload_factory):
        """The model's dominant confusions should be semantically
        nearby categories, not random — a qualitative property the
        paper relied on when reading its errors."""
        sample = draw_sample(payload_factory.registry.truth, seed=5)
        model = Gpt4Classifier(temperature=0.0)
        predictions = model.classify_batch(sorted(sample))
        matrix = confusion_matrix(predictions, sample)
        recall = per_class_recall(matrix)
        # Large, distinctive categories are recalled well.
        for label in (Level3.LANGUAGE, Level3.CONTACT_INFORMATION):
            if label in recall:
                assert recall[label] >= 0.5, label
        # And the overall diagonal dominates.
        diagonal = sum(
            count for (true, predicted), count in matrix.items() if true is predicted
        )
        assert diagonal / sum(matrix.values()) >= 0.6
