"""Unit tests for the DNS resolver and CNAME-cloaking detection."""

import pytest

from repro.destinations.cname import (
    audit_cloaking,
    build_cloaked_zone,
    default_cloaked_zone,
    uncloak,
)
from repro.destinations.party import DestinationLabeler, PartyLabel
from repro.net.dns import DnsError, Resolver, synthetic_address
from repro.services.catalog import service


class TestResolver:
    def test_direct_resolution(self):
        answer = Resolver().resolve("api.example.com")
        assert answer.address == synthetic_address("api.example.com")
        assert answer.chain == ()
        assert answer.canonical_name == "api.example.com"

    def test_deterministic_addresses(self):
        assert Resolver().resolve("x.example").address == Resolver().resolve(
            "x.example"
        ).address

    def test_cname_chain(self):
        resolver = Resolver()
        resolver.add_cname("a.example", "b.example")
        resolver.add_cname("b.example", "c.example")
        answer = resolver.resolve("a.example")
        assert answer.chain == ("b.example", "c.example")
        assert answer.canonical_name == "c.example"
        assert answer.address == synthetic_address("c.example")

    def test_loop_detected(self):
        resolver = Resolver()
        resolver.add_cname("a.example", "b.example")
        resolver.add_cname("b.example", "a.example")
        with pytest.raises(DnsError):
            resolver.resolve("a.example")

    def test_self_cname_rejected(self):
        with pytest.raises(DnsError):
            Resolver().add_cname("a.example", "a.example")

    def test_chain_length_limit(self):
        resolver = Resolver()
        for index in range(12):
            resolver.add_cname(f"h{index}.example", f"h{index + 1}.example")
        with pytest.raises(DnsError):
            resolver.resolve("h0.example")

    def test_case_normalization(self):
        resolver = Resolver()
        resolver.add_cname("A.Example", "b.example")
        assert resolver.resolve("a.EXAMPLE.").chain == ("b.example",)
        assert resolver.is_alias("a.example")


class TestUncloaking:
    @pytest.fixture(scope="class")
    def roblox_labeler(self):
        spec = service("roblox")
        return DestinationLabeler(
            service_names=spec.first_party_names,
            first_party_owner=spec.first_party_owner,
        )

    def test_cloaked_tracker_detected(self, roblox_labeler):
        resolver = Resolver()
        resolver.add_cname("smetrics.roblox.com", "sync.demdex.net")
        verdict = uncloak("smetrics.roblox.com", resolver, roblox_labeler)
        assert verdict.cloaked
        assert verdict.hidden_target == "sync.demdex.net"
        assert verdict.apparent_party is PartyLabel.FIRST_PARTY
        assert verdict.effective_party is PartyLabel.FIRST_PARTY_ATS
        assert verdict.evaded_blocklists

    def test_indirect_cloaking_through_cdn(self, roblox_labeler):
        resolver = Resolver()
        resolver.add_cname("insight.roblox.com", "edge.fastly.net")
        resolver.add_cname("edge.fastly.net", "p.adsrvr.org")
        verdict = uncloak("insight.roblox.com", resolver, roblox_labeler)
        assert verdict.cloaked
        assert verdict.hidden_target == "p.adsrvr.org"

    def test_benign_cdn_alias_not_flagged(self, roblox_labeler):
        resolver = Resolver()
        resolver.add_cname("images.roblox.com", "edge.fastly.net")
        verdict = uncloak("images.roblox.com", resolver, roblox_labeler)
        assert not verdict.cloaked
        assert verdict.apparent_party is verdict.effective_party

    def test_unaliased_host_passthrough(self, roblox_labeler):
        verdict = uncloak("www.roblox.com", Resolver(), roblox_labeler)
        assert not verdict.cloaked
        assert verdict.effective_party is PartyLabel.FIRST_PARTY

    def test_already_ats_alias_not_marked_evading(self, roblox_labeler):
        """An alias whose FQDN is already block-listed did not evade."""
        resolver = Resolver()
        resolver.add_cname("metrics.roblox.com", "sync.demdex.net")
        verdict = uncloak("metrics.roblox.com", resolver, roblox_labeler)
        assert verdict.cloaked
        assert not verdict.evaded_blocklists  # FQDN was flagged anyway


class TestCloakedZone:
    def test_zone_covers_all_services(self):
        zone = default_cloaked_zone()
        from repro.net.psl import esld

        cloaked_eslds = {esld(alias) for alias in zone.cloaked_hosts}
        assert len(zone.cloaked_hosts) == 18  # 3 per service
        assert "roblox.com" in cloaked_eslds
        assert "duolingo.com" in cloaked_eslds

    def test_audit_finds_every_cloak(self):
        def labeler_for(service_key):
            spec = service(service_key)
            return DestinationLabeler(
                service_names=spec.first_party_names,
                first_party_owner=spec.first_party_owner,
            )

        verdicts = audit_cloaking(labeler_for)
        assert len(verdicts) == 18
        assert all(v.cloaked for v in verdicts)
        # The headline number: how many trackers FQDN labeling missed.
        evading = [v for v in verdicts if v.evaded_blocklists]
        assert len(evading) == len(verdicts)  # all hide behind clean names

    def test_zone_deterministic(self):
        a = build_cloaked_zone()
        b = build_cloaked_zone()
        assert a.cloaked_hosts == b.cloaked_hosts
