"""Unit tests for the table/figure renderers and exporters."""

import csv
import io
import json

import pytest

from repro.destinations.party import PartyLabel
from repro.flows.dataflow import FlowObservation, FlowTable
from repro.linkability.analysis import linkability_matrix
from repro.model import Platform, TraceColumn
from repro.ontology.nodes import Level3
from repro.reporting import (
    render_fig3,
    render_fig4,
    render_table,
    render_table2,
    render_table4,
    render_table5,
)
from repro.reporting.export import FLOW_FIELDS, flows_to_csv
from repro.reporting.tables import ontology_statistics


def small_table() -> FlowTable:
    table = FlowTable()
    table.add(
        FlowObservation(
            service="svc",
            column=TraceColumn.CHILD,
            platform=Platform.WEB,
            level3=Level3.ALIASES,
            fqdn="ads.x.example",
            esld="x.example",
            party=PartyLabel.THIRD_PARTY_ATS,
            raw_key="uid",
        )
    )
    table.add(
        FlowObservation(
            service="svc",
            column=TraceColumn.CHILD,
            platform=Platform.MOBILE,
            level3=Level3.LANGUAGE,
            fqdn="ads.x.example",
            esld="x.example",
            party=PartyLabel.THIRD_PARTY_ATS,
            raw_key="lang",
        )
    )
    return table


class TestGenericTable:
    def test_renders_headers_and_rows(self):
        text = render_table(["A", "Bee"], [["1", "2"], ["33", "4"]], "Title")
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "A" in lines[1] and "Bee" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_column_widths_accommodate_data(self):
        text = render_table(["X"], [["very-long-cell"]])
        assert "very-long-cell" in text


class TestTableRenderers:
    def test_table2_marks_observed(self):
        text = render_table2(small_table())
        lines = [l for l in text.splitlines() if "Aliases" in l]
        assert lines and "*" in lines[0]

    def test_table4_symbols(self):
        text = render_table4(small_table())
        assert "W" in text  # Aliases web-only
        assert "M" in text  # Language mobile-only
        assert "—" in text  # everything else absent

    def test_table5_full_ontology(self):
        text = render_table5()
        for label in ("Aliases", "Sensor Data", "Inferences", "Coarse Geolocation"):
            assert label in text

    def test_ontology_statistics(self):
        stats = ontology_statistics()
        assert stats["level3"] == 35
        assert stats["observed_level3"] == 19


class TestFigureRenderers:
    def test_fig3_bars(self):
        matrix = linkability_matrix(small_table())
        text = render_fig3(matrix)
        assert "svc:" in text
        assert "child" in text
        assert "█" in text  # the linkable partner bar

    def test_fig4_sizes(self):
        matrix = linkability_matrix(small_table())
        text = render_fig4(matrix)
        assert "child" in text and "2" in text


class TestExports:
    def test_flows_csv_schema(self):
        text = flows_to_csv(small_table())
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == FLOW_FIELDS
        assert len(rows) == 3  # header + 2 observations
        by_field = dict(zip(rows[0], rows[1]))
        assert by_field["service"] == "svc"
        assert by_field["party"] == "third party ATS"
        assert by_field["level1"] == "Identifiers"

    def test_result_json_schema(self, two_service_result):
        from repro.reporting.export import result_to_json

        document = json.loads(result_to_json(two_service_result))
        assert set(document["dataset"]) == {"tiktok", "youtube"}
        assert document["census"]["organizations"] > 0
        assert "child" in document["linkability"]["tiktok"]
        assert document["linkability"]["tiktok"]["adult"]["largest_set_size"] == 10
        assert isinstance(document["findings"]["tiktok"], list)

    def test_findings_csv(self, two_service_result):
        from repro.reporting.export import findings_to_csv

        text = findings_to_csv(two_service_result)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "service"
        assert any(row[0] == "tiktok" for row in rows[1:])
