"""Unit tests for the destination-analysis stack (universe, entities,
whois, blocklists, party labeling)."""

import pytest

from repro.destinations.blocklists import (
    BlockList,
    BlockListCollection,
    BlockListParseError,
    build_collection,
    default_blocklists,
    render_domain_format,
    render_hosts_format,
)
from repro.destinations.dataset import default_universe
from repro.destinations.entities import EntityDatabase, default_entity_db, resolve_owner
from repro.destinations.party import DestinationLabeler, PartyLabel
from repro.destinations.whois import WhoisClient, WhoisTimeout
from repro.net.psl import esld
from repro.services.catalog import service


class TestUniverse:
    def test_deterministic(self):
        assert default_universe() is default_universe()

    def test_six_first_party_services(self):
        assert set(default_universe().first_party_infra) == {
            "duolingo",
            "minecraft",
            "quizlet",
            "roblox",
            "tiktok",
            "youtube",
        }

    def test_org_lookup(self):
        universe = default_universe()
        assert universe.org_of_esld("pubmatic.com").name == "PubMatic, Inc."
        assert universe.org_of_esld("roblox.com").name == "Roblox Corporation"
        assert universe.org_of_esld("nonexistent.example") is None

    def test_org_of_fqdn_rolls_up(self):
        universe = default_universe()
        assert universe.org_of_fqdn("pixel.pubmatic.com").name == "PubMatic, Inc."

    def test_figure5_organizations_present(self):
        """Every org named in the paper's Figure 5 exists."""
        names = {org.name for org in default_universe().organizations()}
        for expected in (
            "PubMatic, Inc.",
            "MediaMath, Inc.",
            "Adform A/S",
            "Adjust GmbH",
            "Braze, Inc.",
            "Tapad, Inc.",
            "Index Exchange",
            "OneTrust",
            "AppsFlyer",
            "Akamai Technologies",
            "Magnite, Inc.",
            "Sharethrough, Inc.",
            "Snowplow Analytics",
            "Apptimize, Inc.",
            "OneSoon Ltd",
            "Lemon Inc",
            "Google LLC",
            "Microsoft Corporation",
            "Amazon Technologies",
            "Adobe Inc.",
        ):
            assert expected in names, expected

    def test_universe_scale(self):
        """§4.2-scale universe: enough eSLDs/FQDNs for Table 1."""
        universe = default_universe()
        assert len(universe.eslds()) >= 326
        assert len(universe.ats_fqdns()) >= 485
        assert len(universe.non_ats_third_party_fqdns()) >= 120

    def test_first_party_ats_hosts_are_first_party_owned(self):
        universe = default_universe()
        for service_key in universe.first_party_infra:
            own = set(universe.first_party_infra[service_key].organization.eslds)
            for host in universe.first_party_ats_hosts(service_key):
                assert esld(host) in own, host


class TestEntityDatabase:
    def test_named_orgs_always_covered(self):
        db = default_entity_db()
        assert db.owner_of("ads.pubmatic.com") == "PubMatic, Inc."
        assert db.owner_of("www.roblox.com") == "Roblox Corporation"

    def test_tail_has_gaps(self):
        """Tracker Radar is head-heavy; some long-tail domains miss."""
        universe = default_universe()
        db = EntityDatabase(universe, coverage=0.5, seed=1)
        tail_eslds = [d for org in universe.tail_ats_orgs for d in org.eslds]
        missing = [d for d in tail_eslds if db.lookup_esld(d) is None]
        assert missing  # some gaps exist
        assert len(missing) < len(tail_eslds)  # but not everything

    def test_coverage_bounds_validated(self):
        with pytest.raises(ValueError):
            EntityDatabase(coverage=1.5)

    def test_unknown_domain(self):
        assert default_entity_db().owner_of("not-in-universe.example") is None

    def test_resolve_owner_whois_fallback(self):
        universe = default_universe()
        db = EntityDatabase(universe, coverage=0.0, seed=1)  # tail all missing
        whois = WhoisClient(universe=universe, redaction_rate=0.0, timeout_rate=0.0)
        tail_domain = universe.tail_ats_orgs[0].eslds[0]
        fqdn = next(f for f in universe.ats_fqdns() if esld(f) == tail_domain)
        assert resolve_owner(fqdn, db, whois) == universe.tail_ats_orgs[0].name

    def test_organizations_set(self):
        assert len(default_entity_db().organizations()) > 200


class TestWhois:
    def test_deterministic(self):
        client = WhoisClient()
        first = client.query("pubmatic.com")
        second = client.query("pubmatic.com")
        assert first == second

    def test_named_orgs_never_redacted(self):
        client = WhoisClient()
        record = client.query("pubmatic.com")
        assert record.registrant_org == "PubMatic, Inc."
        assert not record.redacted

    def test_unknown_domain_times_out(self):
        with pytest.raises(WhoisTimeout):
            WhoisClient().query("never-registered.example")

    def test_registrant_swallows_timeouts(self):
        assert WhoisClient().registrant("never-registered.example") is None

    def test_tail_redactions_exist(self):
        universe = default_universe()
        client = WhoisClient(universe=universe, redaction_rate=0.9, timeout_rate=0.0)
        results = [
            client.registrant(org.eslds[0]) for org in universe.tail_ats_orgs[:40]
        ]
        assert any(r is None for r in results)
        assert any(r is not None for r in results)


class TestBlockListFormats:
    def test_hosts_format(self):
        text = "# comment\n0.0.0.0 ads.example.com\n127.0.0.1 t.example.net\n"
        blocklist = BlockList.from_text("test", text)
        assert blocklist.blocks("ads.example.com")
        assert blocklist.blocks("t.example.net")
        assert not blocklist.blocks("sub.ads.example.com")  # exact only
        assert not blocklist.blocks("example.com")

    def test_domain_format_blocks_subdomains(self):
        blocklist = BlockList.from_text("test", "doubleclick.net\n", fmt="domains")
        assert blocklist.blocks("doubleclick.net")
        assert blocklist.blocks("ad.doubleclick.net")
        assert blocklist.blocks("deep.sub.doubleclick.net")
        assert not blocklist.blocks("notdoubleclick.net")

    def test_wildcard_prefix_stripped(self):
        blocklist = BlockList.from_text("test", "*.tracker.example\n", fmt="domains")
        assert blocklist.blocks("x.tracker.example")

    def test_bad_address_rejected(self):
        with pytest.raises(BlockListParseError):
            BlockList.from_text("test", "1.2.3.4 ads.example.com\n", fmt="hosts")

    def test_bad_line_rejected(self):
        with pytest.raises(BlockListParseError):
            BlockList.from_text("test", "too many fields here\n")

    def test_case_insensitive(self):
        blocklist = BlockList.from_text("test", "0.0.0.0 Ads.Example.COM\n")
        assert blocklist.blocks("ads.example.com")
        assert blocklist.blocks("ADS.EXAMPLE.COM")

    def test_renderers_round_trip(self):
        hosts = render_hosts_format(["a.example.com", "b.example.net"])
        parsed = BlockList.from_text("x", hosts, fmt="hosts")
        assert parsed.blocks("a.example.com")
        domains = render_domain_format(["example.org"])
        parsed = BlockList.from_text("y", domains, fmt="domains")
        assert parsed.blocks("sub.example.org")


class TestCollection:
    def test_any_list_rule(self):
        a = BlockList.from_text("a", "0.0.0.0 only-in-a.example\n")
        b = BlockList.from_text("b", "0.0.0.0 only-in-b.example\n")
        collection = BlockListCollection(lists=[a, b])
        assert collection.is_ats("only-in-a.example")
        assert collection.is_ats("only-in-b.example")
        assert not collection.is_ats("neither.example")

    def test_majority_rule_stricter(self):
        a = BlockList.from_text("a", "0.0.0.0 x.example\n")
        b = BlockList.from_text("b", "")
        c = BlockList.from_text("c", "")
        collection = BlockListCollection(lists=[a, b, c])
        assert collection.is_ats("x.example")
        assert not collection.is_ats_majority("x.example")

    def test_blocking_lists_names(self):
        a = BlockList.from_text("listA", "0.0.0.0 x.example\n")
        collection = BlockListCollection(lists=[a])
        assert collection.blocking_lists("x.example") == ["listA"]

    def test_default_collection_complete_over_ground_truth(self):
        """Union of the default lists covers every ground-truth ATS
        host — the property the any-list rule relies on."""
        universe = default_universe()
        collection = default_blocklists()
        for host in universe.all_blocklisted_hosts():
            assert collection.is_ats(host), host

    def test_default_collection_spares_clean_hosts(self):
        collection = default_blocklists()
        assert not collection.is_ats("www.roblox.com")
        assert not collection.is_ats("api.duolingo.com")
        assert not collection.is_ats("www.youtube.com")

    def test_individual_lists_incomplete(self):
        """Beyond the head aggregate, single lists have gaps."""
        universe = default_universe()
        collection = build_collection(universe, per_list_coverage=0.6, seed=5)
        hosts = universe.all_blocklisted_hosts()
        for blocklist in collection.lists[1:2]:
            missed = [h for h in hosts if not blocklist.blocks(h)]
            assert missed


class TestPartyLabeling:
    @pytest.fixture(scope="class")
    def roblox_labeler(self):
        spec = service("roblox")
        return DestinationLabeler(
            service_names=spec.first_party_names,
            first_party_owner=spec.first_party_owner,
        )

    def test_first_party_by_name(self, roblox_labeler):
        assert roblox_labeler.label("www.roblox.com").party is PartyLabel.FIRST_PARTY

    def test_first_party_by_owner(self, roblox_labeler):
        # rbxcdn.com matches the 'rbxcdn' fragment and the owner check.
        assert roblox_labeler.label("c0.rbxcdn.com").party.is_first_party

    def test_first_party_ats(self, roblox_labeler):
        label = roblox_labeler.label("metrics.roblox.com")
        assert label.party is PartyLabel.FIRST_PARTY_ATS

    def test_third_party_ats(self, roblox_labeler):
        label = roblox_labeler.label("ad.doubleclick.net")
        assert label.party is PartyLabel.THIRD_PARTY_ATS

    def test_third_party_clean(self, roblox_labeler):
        label = roblox_labeler.label("www.cloudflare.com")
        assert label.party is PartyLabel.THIRD_PARTY

    def test_google_is_first_party_for_youtube_only(self):
        youtube = service("youtube")
        labeler = DestinationLabeler(
            service_names=youtube.first_party_names,
            first_party_owner=youtube.first_party_owner,
        )
        assert labeler.label("ad.doubleclick.net").party is PartyLabel.FIRST_PARTY_ATS

    def test_caching(self, roblox_labeler):
        first = roblox_labeler.label("www.roblox.com")
        assert roblox_labeler.label("www.roblox.com") is first

    def test_party_label_properties(self):
        assert PartyLabel.FIRST_PARTY_ATS.is_first_party
        assert PartyLabel.FIRST_PARTY_ATS.is_ats
        assert PartyLabel.THIRD_PARTY.is_third_party
        assert not PartyLabel.THIRD_PARTY.is_ats
