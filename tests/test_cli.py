"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _SERVICES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_service_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--services", "myspace"])

    def test_defaults(self):
        # Parser defaults are None ("not specified") so replay can fill
        # omitted flags from a manifest; _config resolves the effective
        # defaults for in-memory runs.
        from repro.cli import _config

        args = build_parser().parse_args(["audit"])
        assert args.services is None
        assert args.jobs == 1
        config = _config(args)
        assert config.scale == 0.02
        assert config.seed == 2023
        assert config.services is None
        assert config.profile == "standard"

    def test_jobs_flag(self):
        args = build_parser().parse_args(["audit", "--jobs", "4"])
        assert args.jobs == 4

    def test_profile_flag(self):
        args = build_parser().parse_args(["audit", "--profile", "heavy"])
        assert args.profile == "heavy"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--profile", "ludicrous"])

    def test_non_positive_jobs_rejected(self):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["audit", "--jobs", bad])

    def test_generate_accepts_jobs_and_profile(self):
        args = build_parser().parse_args(
            ["generate", "--jobs", "2", "--profile", "light"]
        )
        assert args.jobs == 2
        assert args.profile == "light"

    def test_services_choices_derive_from_catalog(self):
        # The CLI must accept exactly the catalog's services — a
        # hardcoded copy drifted once; this pins the derivation.
        from repro.services.catalog import SERVICES

        assert _SERVICES == tuple(spec.key for spec in SERVICES())
        for key in _SERVICES:
            args = build_parser().parse_args(["audit", "--services", key])
            assert args.services == [key]

    def test_audit_and_report_accept_from_artifacts(self):
        args = build_parser().parse_args(["audit", "--from-artifacts", "d"])
        assert args.from_artifacts == "d"
        args = build_parser().parse_args(["report", "table5", "--from-artifacts", "d"])
        assert args.from_artifacts == "d"


class TestClassifyCommand:
    def test_classify_keys(self, capsys):
        assert main(["classify", "email", "advertising_id"]) == 0
        output = capsys.readouterr().out
        assert "Contact Information" in output
        assert "Device Software Identifiers" in output

    def test_output_format(self, capsys):
        main(["classify", "email"])
        line = capsys.readouterr().out.strip()
        assert line.count(" // ") == 3

    def test_no_keys_on_a_tty_prints_hint_instead_of_hanging(
        self, capsys, monkeypatch
    ):
        import sys as _sys

        monkeypatch.setattr(_sys.stdin, "isatty", lambda: True, raising=False)
        assert main(["classify"]) == 2
        err = capsys.readouterr().err
        assert "stdin is a terminal" in err

    def test_piped_stdin_still_reads_keys(self, capsys, monkeypatch):
        import io
        import sys as _sys

        stdin = io.StringIO("email\n\nage\n")
        stdin.isatty = lambda: False
        monkeypatch.setattr(_sys, "stdin", stdin)
        assert main(["classify"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2


class TestAuditCommand:
    def test_summary_output(self, capsys):
        code = main(
            ["audit", "--services", "youtube", "--scale", "0.003", "--seed", "7"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "=== youtube ===" in output
        assert "pre-consent processing: True" in output

    def test_json_output(self, capsys):
        main(["audit", "--services", "youtube", "--scale", "0.003", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert "youtube" in document["dataset"]

    def test_parallel_jobs_match_sequential(self, capsys):
        # Two services, so --jobs 2 really exercises the process pool.
        base = ["audit", "--services", "youtube", "tiktok", "--scale", "0.003", "--seed", "7"]
        main(base)
        sequential = capsys.readouterr().out
        main([*base, "--jobs", "2"])
        assert capsys.readouterr().out == sequential

    def test_csv_export(self, tmp_path, capsys):
        main(
            [
                "audit",
                "--services",
                "youtube",
                "--scale",
                "0.003",
                "--output",
                str(tmp_path),
            ]
        )
        assert (tmp_path / "flows.csv").exists()
        assert (tmp_path / "findings.csv").exists()

    def test_json_path_without_json_flag_errors_early(self, capsys):
        assert main(["audit", "--output", "results.json"]) == 2
        err = capsys.readouterr().err
        assert "--json" in err and "directory" in err

    def test_json_flag_with_directory_output_errors_early(self, tmp_path, capsys):
        assert main(["audit", "--json", "--output", str(tmp_path)]) == 2
        assert "existing directory" in capsys.readouterr().err

    def test_json_output_into_missing_directory_errors_early(self, tmp_path, capsys):
        target = tmp_path / "missing" / "results.json"
        assert main(["audit", "--json", "--output", str(target)]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_csv_output_to_existing_file_errors_early(self, tmp_path, capsys):
        target = tmp_path / "occupied"
        target.write_text("x")
        assert main(["audit", "--output", str(target)]) == 2
        assert "existing file" in capsys.readouterr().err

    def test_with_provenance_requires_replay_and_json(self, capsys):
        assert main(["audit", "--with-provenance"]) == 2
        assert "--with-provenance" in capsys.readouterr().err


class TestReplayCommands:
    def test_generate_then_replay_is_byte_identical(self, tmp_path, capsys):
        base = ["--services", "youtube", "--scale", "0.003", "--seed", "7"]
        main(["generate", *base, "--output", str(tmp_path)])
        capsys.readouterr()
        assert main(["audit", *base, "--json"]) == 0
        direct = capsys.readouterr().out
        # Corpus flags intentionally omitted: the manifest supplies them.
        assert main(["audit", "--from-artifacts", str(tmp_path), "--json"]) == 0
        assert capsys.readouterr().out == direct

    def test_replay_with_provenance(self, tmp_path, capsys):
        main(
            [
                "generate",
                "--services",
                "youtube",
                "--scale",
                "0.003",
                "--output",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        main(["audit", "--from-artifacts", str(tmp_path), "--json", "--with-provenance"])
        document = json.loads(capsys.readouterr().out)
        assert document["provenance"]["source"] == "artifacts"
        assert document["provenance"]["manifest"] is True
        assert document["provenance"]["services"] == ["youtube"]

    def test_explicit_flag_beats_manifest(self, tmp_path, capsys):
        main(
            [
                "generate",
                "--services",
                "youtube",
                "--scale",
                "0.003",
                "--seed",
                "7",
                "--output",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        # Explicitly typing the default seed must override manifest seed 7.
        main(
            ["audit", "--from-artifacts", str(tmp_path), "--seed", "2023", "--json"]
        )
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["config"]["seed"] == 2023
        # ...with a warning that only the reported config changes.
        assert "overrides the corpus manifest" in captured.err

    def test_replay_missing_directory_errors(self, tmp_path, capsys):
        assert main(["audit", "--from-artifacts", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_replay_missing_service_errors(self, tmp_path, capsys):
        main(
            [
                "generate",
                "--services",
                "youtube",
                "--scale",
                "0.003",
                "--output",
                str(tmp_path),
            ]
        )
        capsys.readouterr()
        code = main(
            ["audit", "--from-artifacts", str(tmp_path), "--services", "tiktok"]
        )
        assert code == 2
        assert "no artifacts for configured" in capsys.readouterr().err

    def test_report_from_artifacts(self, tmp_path, capsys):
        base = ["--services", "youtube", "--scale", "0.003", "--seed", "7"]
        main(["generate", *base, "--output", str(tmp_path)])
        capsys.readouterr()
        assert main(["report", "table1", "--from-artifacts", str(tmp_path)]) == 0
        assert "youtube" in capsys.readouterr().out


class TestGenerateCommand:
    def test_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--services",
                "youtube",
                "--scale",
                "0.002",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert list(tmp_path.glob("*.har"))
        assert list(tmp_path.glob("*.pcap"))


class TestReportCommand:
    def test_table5_static(self, capsys):
        code = main(
            ["report", "table5", "--services", "youtube", "--scale", "0.002"]
        )
        assert code == 0
        assert "Data Type Ontology" in capsys.readouterr().out

    def test_fig3(self, capsys):
        main(["report", "fig3", "--services", "youtube", "--scale", "0.002"])
        assert "youtube" in capsys.readouterr().out


class TestCacheDirFlag:
    def test_audit_report_classify_accept_cache_dir(self):
        args = build_parser().parse_args(["audit", "--cache-dir", "c"])
        assert args.cache_dir == "c"
        args = build_parser().parse_args(["report", "table5", "--cache-dir", "c"])
        assert args.cache_dir == "c"
        args = build_parser().parse_args(["classify", "k", "--cache-dir", "c"])
        assert args.cache_dir == "c"

    def test_audit_with_cache_dir_matches_plain(self, tmp_path, capsys):
        base = ["audit", "--services", "youtube", "--scale", "0.003", "--json"]
        main(base)
        plain = capsys.readouterr().out
        cache = str(tmp_path / "cache")
        main([*base, "--cache-dir", cache])  # cold
        assert capsys.readouterr().out == plain
        main([*base, "--cache-dir", cache])  # warm
        assert capsys.readouterr().out == plain
        main([*base, "--cache-dir", cache, "--jobs", "2"])  # warm, parallel
        assert capsys.readouterr().out == plain

    def test_classify_verbose_reports_warm_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["classify", "email", "--cache-dir", cache, "--verbose"]) == 0
        cold = capsys.readouterr()
        assert "1 classified" in cold.err
        assert main(["classify", "email", "--cache-dir", cache, "--verbose"]) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # same verdict, cold or warm
        assert "1 store hits" in warm.err
        assert "hit rate 100.0%" in warm.err

    def test_classify_verbose_without_cache_dir(self, capsys):
        assert main(["classify", "email", "email", "--verbose"]) == 0
        err = capsys.readouterr().err
        assert "2 lookups" in err and "1 memory hits" in err

    def test_classify_warms_the_audit_store(self, tmp_path, capsys):
        # Interactive classification and full audits share one store.
        from repro.datatypes.store import ClassificationStore, store_path_for

        cache = str(tmp_path / "cache")
        main(["classify", "email", "--cache-dir", cache])
        capsys.readouterr()
        with ClassificationStore(store_path_for(cache)) as store:
            assert store.get("gpt4-majority-avg", "email") is not None


class TestCacheCommand:
    def _warm(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["classify", "email", "age", "--cache-dir", cache])
        capsys.readouterr()
        return cache

    def test_stats(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        output = capsys.readouterr().out
        assert "entries: 2" in output
        assert "gpt4-majority-avg: 2" in output
        assert "runs recorded: 1" in output

    def test_stats_missing_store_errors(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 2
        assert "no classification store" in capsys.readouterr().err

    def test_export_json_lines(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        assert main(["cache", "export", "--cache-dir", cache]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        entries = [json.loads(line) for line in lines]
        assert {entry["text"] for entry in entries} == {"email", "age"}
        assert all(entry["classifier"] == "gpt4-majority-avg" for entry in entries)

    def test_export_to_file(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        target = tmp_path / "dump.jsonl"
        assert main(
            ["cache", "export", "--cache-dir", cache, "--output", str(target)]
        ) == 0
        assert len(target.read_text().strip().splitlines()) == 2

    def test_prune_requires_criterion(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        assert main(["cache", "prune", "--cache-dir", cache]) == 2
        assert "cache clear" in capsys.readouterr().err

    def test_prune_by_classifier(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        code = main(
            ["cache", "prune", "--cache-dir", cache, "--classifier", "gpt4-majority-avg"]
        )
        assert code == 0
        assert "pruned 2 entries" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        cache = self._warm(tmp_path, capsys)
        assert main(["cache", "clear", "--cache-dir", cache]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out
        main(["cache", "stats", "--cache-dir", cache])
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_stats_reports_unit_results(self, tmp_path, capsys):
        from repro.datatypes.store import ClassificationStore, store_path_for

        cache = self._warm(tmp_path, capsys)
        with ClassificationStore(store_path_for(cache)) as store:
            store.put_unit_results("clf@0.8", [("d1", "youtube", b"p")])
            store.put_unit_results(
                "clf@0.8", [("d0", "youtube", b"old")], schema_version=0
            )
        assert main(["cache", "stats", "--cache-dir", cache]) == 0
        output = capsys.readouterr().out
        assert "unit results: 1" in output
        assert "youtube: 1" in output
        assert "stale (older result schema): 1" in output
        assert "cache prune --unit-results" in output

    def test_prune_unit_results_is_a_criterion_on_its_own(
        self, tmp_path, capsys
    ):
        from repro.datatypes.store import ClassificationStore, store_path_for

        cache = self._warm(tmp_path, capsys)
        with ClassificationStore(store_path_for(cache)) as store:
            store.put_unit_results(
                "clf@0.8", [("d0", "youtube", b"old")], schema_version=0
            )
        code = main(["cache", "prune", "--cache-dir", cache, "--unit-results"])
        assert code == 0
        assert (
            "pruned 0 entries and 1 stale unit results"
            in capsys.readouterr().out
        )
        with ClassificationStore(store_path_for(cache)) as store:
            assert store.stats().stale_unit_results == 0
            assert store.stats().total_entries == 2  # verdicts untouched

    def test_corrupt_store_is_reported_not_quarantined(self, tmp_path, capsys):
        # Inspection commands must never destroy the evidence they were
        # asked to report on: a corrupt store exits 2 and stays on disk.
        from repro.datatypes.store import store_path_for

        path = store_path_for(tmp_path)
        garbage = b"not an sqlite database" * 40
        path.write_bytes(garbage)
        for command in ("stats", "export", "prune", "clear"):
            argv = ["cache", command, "--cache-dir", str(tmp_path)]
            if command == "prune":
                argv += ["--below", "0.5"]
            assert main(argv) == 2, command
            assert "corrupt" in capsys.readouterr().err
            assert path.read_bytes() == garbage
            assert not path.with_suffix(".sqlite.corrupt").exists()

    def test_classify_mid_run_store_failure_still_succeeds(
        self, tmp_path, capsys, monkeypatch
    ):
        # Verdicts come from the (pure) classifier; a store that dies
        # mid-run degrades with a warning, never a failure exit.
        from repro.datatypes.store import ClassificationStore, StoreError

        def explode(self, *args, **kwargs):
            raise StoreError("disk full")

        monkeypatch.setattr(ClassificationStore, "put_many", explode)
        code = main(
            ["classify", "email", "--cache-dir", str(tmp_path / "c"), "--verbose"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Contact Information" in captured.out
        assert "disabled for this process" in captured.err


class TestIncrementalFlags:
    BASE = ["--services", "youtube", "--scale", "0.003", "--seed", "7"]

    def test_audit_and_report_accept_no_incremental(self):
        args = build_parser().parse_args(["audit", "--no-incremental"])
        assert args.no_incremental is True
        args = build_parser().parse_args(["report", "fig3", "--no-incremental"])
        assert args.no_incremental is True
        args = build_parser().parse_args(["audit"])
        assert args.no_incremental is False

    def test_audit_verbose_reports_hits_and_dirty_counts(
        self, tmp_path, capsys
    ):
        corpus = str(tmp_path / "corpus")
        cache = str(tmp_path / "cache")
        main(["generate", *self.BASE, "--output", corpus])
        capsys.readouterr()
        replayed = ["audit", "--from-artifacts", corpus, "--cache-dir", cache,
                    "--json", "--verbose"]
        assert main(replayed) == 0
        cold = capsys.readouterr()
        assert "0 unit hits" in cold.err
        assert "dirty units recomputed" in cold.err
        assert main(replayed) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out  # byte-identical report
        assert "0 dirty units recomputed" in warm.err
        assert main([*replayed, "--no-incremental"]) == 0
        off = capsys.readouterr()
        assert off.out == cold.out
        assert "incremental replay: inactive" in off.err

    def test_audit_verbose_without_replay_reports_inactive(self, capsys):
        assert main(["audit", *self.BASE, "--verbose", "--json"]) == 0
        err = capsys.readouterr().err
        assert "incremental replay: inactive" in err
        assert "--from-artifacts" in err


class TestVersionFlag:
    def test_version_exits_zero_and_prints(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        import repro

        assert output.strip() == f"repro {repro.__version__}"

    def test_version_prefers_package_metadata(self, monkeypatch):
        from repro import cli

        monkeypatch.setattr(
            "importlib.metadata.version", lambda name: "9.9.9-test"
        )
        assert cli._package_version() == "9.9.9-test"


class TestImpairFlag:
    def test_audit_generate_report_accept_impair(self):
        for argv in (
            ["audit", "--impair", "reorder"],
            ["generate", "--impair", "reorder-dup"],
            ["report", "table5", "--impair", "duplicate"],
        ):
            assert build_parser().parse_args(argv).impair == argv[-1]

    def test_unknown_impair_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--impair", "apocalyptic"])

    def test_generate_impair_replays_byte_identical(self, tmp_path, capsys):
        base = ["--services", "youtube", "--scale", "0.003", "--seed", "7",
                "--impair", "reorder-dup"]
        main(["generate", *base, "--output", str(tmp_path)])
        capsys.readouterr()
        assert main(["audit", *base, "--json"]) == 0
        direct = capsys.readouterr().out
        # The manifest carries the impair profile; replay fills it in.
        assert main(["audit", "--from-artifacts", str(tmp_path), "--json"]) == 0
        assert capsys.readouterr().out == direct


class TestStreamCommand:
    def _generate(self, tmp_path, capsys):
        base = ["--services", "youtube", "--scale", "0.003", "--seed", "7"]
        main(["generate", *base, "--output", str(tmp_path)])
        capsys.readouterr()
        return base

    def test_requires_exactly_one_source(self, capsys):
        assert main(["stream"]) == 2
        assert "exactly one source" in capsys.readouterr().err
        assert main(["stream", "--live", "--pcap", "x.pcap"]) == 2
        assert "exactly one source" in capsys.readouterr().err

    def test_follow_requires_pcap(self, capsys):
        assert main(["stream", "--live", "--follow"]) == 2
        assert "--follow requires --pcap" in capsys.readouterr().err

    def test_stream_artifacts_matches_batch_audit(self, tmp_path, capsys):
        base = self._generate(tmp_path, capsys)
        assert main(["audit", *base, "--json"]) == 0
        batch = capsys.readouterr().out
        assert main(["stream", "--from-artifacts", str(tmp_path), "--json"]) == 0
        assert capsys.readouterr().out == batch

    def test_stream_live_matches_batch_audit(self, capsys):
        base = ["--services", "youtube", "--scale", "0.003", "--seed", "7"]
        assert main(["audit", *base, "--json"]) == 0
        batch = capsys.readouterr().out
        assert main(["stream", "--live", *base, "--json"]) == 0
        assert capsys.readouterr().out == batch

    def test_snapshots_written(self, tmp_path, capsys):
        base = self._generate(tmp_path, capsys)
        snaps = tmp_path / "snaps"
        code = main(
            [
                "stream",
                "--from-artifacts",
                str(tmp_path),
                "--snapshot-every",
                "3",
                "--snapshot-dir",
                str(snaps),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "snapshot 1:" in captured.err
        numbered = sorted(snaps.glob("snapshot_0*.json"))
        assert numbered
        first = json.loads(numbered[0].read_text())
        assert first["traces"] == 3
        final = json.loads((snaps / "snapshot_final.json").read_text())
        assert final["traces"] >= first["traces"]

    def test_single_pcap_stream(self, tmp_path, capsys):
        self._generate(tmp_path, capsys)
        pcap = sorted(tmp_path.glob("*.pcap"))[0]
        keylog = pcap.with_suffix(".keylog")
        code = main(
            [
                "stream",
                "--pcap",
                str(pcap),
                "--keylog",
                str(keylog),
                "--scale",
                "0.003",
                "--seed",
                "7",
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["config"]["services"] == ["youtube"]

    def test_missing_artifacts_directory_errors(self, tmp_path, capsys):
        assert main(["stream", "--from-artifacts", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unstemmable_pcap_name_errors(self, tmp_path, capsys):
        pcap = tmp_path / "capture.pcap"
        pcap.write_bytes(b"")
        assert main(["stream", "--pcap", str(pcap)]) == 2
        assert "cannot derive trace metadata" in capsys.readouterr().err

    def test_interrupt_flushes_final_snapshot(self, tmp_path, capsys, monkeypatch):
        base = self._generate(tmp_path, capsys)
        snaps = tmp_path / "snaps"
        import repro.stream as stream_package

        original = stream_package.ArtifactStreamSource

        class InterruptingSource(original):
            def events(self):
                iterator = super().events()
                yield next(iterator)
                yield next(iterator)
                raise KeyboardInterrupt

        monkeypatch.setattr(stream_package, "ArtifactStreamSource", InterruptingSource)
        code = main(
            [
                "stream",
                "--from-artifacts",
                str(tmp_path),
                "--snapshot-dir",
                str(snaps),
            ]
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted after 2 traces" in captured.err
        final = json.loads((snaps / "snapshot_final.json").read_text())
        assert final["traces"] == 2


class TestGracefulInterrupt:
    def test_main_translates_keyboard_interrupt_to_130(self, capsys, monkeypatch):
        from repro import cli

        def explode(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_distill", explode)
        parser_args = ["distill"]
        assert main(parser_args) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_pool_executor_tears_down_on_worker_interrupt(self):
        from repro.pipeline.engine import ProcessPoolShardExecutor

        executor = ProcessPoolShardExecutor(jobs=2)
        with pytest.raises(KeyboardInterrupt):
            executor.map_shards(list(range(4)), work=_interrupt_in_worker)


def _interrupt_in_worker(task):
    if task == 0:
        raise KeyboardInterrupt
    import time

    time.sleep(0.2)
    return task
