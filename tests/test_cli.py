"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_service_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--services", "myspace"])

    def test_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.scale == 0.02
        assert args.seed == 2023
        assert args.services is None
        assert args.jobs == 1
        assert args.profile == "standard"

    def test_jobs_flag(self):
        args = build_parser().parse_args(["audit", "--jobs", "4"])
        assert args.jobs == 4

    def test_profile_flag(self):
        args = build_parser().parse_args(["audit", "--profile", "heavy"])
        assert args.profile == "heavy"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "--profile", "ludicrous"])

    def test_non_positive_jobs_rejected(self):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["audit", "--jobs", bad])

    def test_generate_accepts_jobs_and_profile(self):
        args = build_parser().parse_args(
            ["generate", "--jobs", "2", "--profile", "light"]
        )
        assert args.jobs == 2
        assert args.profile == "light"


class TestClassifyCommand:
    def test_classify_keys(self, capsys):
        assert main(["classify", "email", "advertising_id"]) == 0
        output = capsys.readouterr().out
        assert "Contact Information" in output
        assert "Device Software Identifiers" in output

    def test_output_format(self, capsys):
        main(["classify", "email"])
        line = capsys.readouterr().out.strip()
        assert line.count(" // ") == 3


class TestAuditCommand:
    def test_summary_output(self, capsys):
        code = main(
            ["audit", "--services", "youtube", "--scale", "0.003", "--seed", "7"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "=== youtube ===" in output
        assert "pre-consent processing: True" in output

    def test_json_output(self, capsys):
        main(["audit", "--services", "youtube", "--scale", "0.003", "--json"])
        document = json.loads(capsys.readouterr().out)
        assert "youtube" in document["dataset"]

    def test_parallel_jobs_match_sequential(self, capsys):
        # Two services, so --jobs 2 really exercises the process pool.
        base = ["audit", "--services", "youtube", "tiktok", "--scale", "0.003", "--seed", "7"]
        main(base)
        sequential = capsys.readouterr().out
        main([*base, "--jobs", "2"])
        assert capsys.readouterr().out == sequential

    def test_csv_export(self, tmp_path, capsys):
        main(
            [
                "audit",
                "--services",
                "youtube",
                "--scale",
                "0.003",
                "--output",
                str(tmp_path),
            ]
        )
        assert (tmp_path / "flows.csv").exists()
        assert (tmp_path / "findings.csv").exists()


class TestGenerateCommand:
    def test_writes_artifacts(self, tmp_path, capsys):
        code = main(
            [
                "generate",
                "--services",
                "youtube",
                "--scale",
                "0.002",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert list(tmp_path.glob("*.har"))
        assert list(tmp_path.glob("*.pcap"))


class TestReportCommand:
    def test_table5_static(self, capsys):
        code = main(
            ["report", "table5", "--services", "youtube", "--scale", "0.002"]
        )
        assert code == 0
        assert "Data Type Ontology" in capsys.readouterr().out

    def test_fig3(self, capsys):
        main(["report", "fig3", "--services", "youtube", "--scale", "0.002"])
        assert "youtube" in capsys.readouterr().out
