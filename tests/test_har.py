"""Unit tests for the HAR 1.2 reader/writer."""

import json

import pytest

from repro.net.har import (
    Har,
    HarEntry,
    HarError,
    har_from_json,
    har_to_json,
    read_har,
    write_har,
)
from repro.net.http import Header, HttpRequest, HttpResponse
from repro.net.url import parse_url


def make_har() -> Har:
    request = HttpRequest(
        method="POST",
        url=parse_url("https://api.example.com/v1/events?k=v"),
        headers=[
            Header("Content-Type", "application/json"),
            Header("Cookie", "session=abc"),
        ],
        body=b'{"event": "click"}',
        timestamp=1_697_364_000.5,
    )
    response = HttpResponse(
        status=200, headers=[Header("Content-Type", "application/json")], body=b"{}"
    )
    har = Har(creator_name="WebInspector", comment="test-trace")
    har.entries.append(
        HarEntry(
            request=request,
            response=response,
            started=request.timestamp,
            time_ms=12.5,
            server_ip="34.1.2.3",
            connection="100001",
            page_ref="page_1",
        )
    )
    return har


class TestRoundTrip:
    def test_json_round_trip(self):
        original = make_har()
        parsed = har_from_json(har_to_json(original))
        assert len(parsed.entries) == 1
        entry = parsed.entries[0]
        assert entry.request.method == "POST"
        assert str(entry.request.url) == "https://api.example.com/v1/events?k=v"
        assert entry.request.body == b'{"event": "click"}'
        assert entry.request.cookies() == [("session", "abc")]
        assert entry.server_ip == "34.1.2.3"
        assert entry.connection == "100001"
        assert entry.page_ref == "page_1"
        assert abs(entry.started - 1_697_364_000.5) < 0.001

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.har"
        write_har(make_har(), path)
        parsed = read_har(path)
        assert parsed.creator_name == "WebInspector"
        assert parsed.comment == "test-trace"
        assert len(parsed.entries) == 1

    def test_spec_shape(self):
        doc = har_to_json(make_har())
        log = doc["log"]
        assert log["version"] == "1.2"
        entry = log["entries"][0]
        assert entry["startedDateTime"].endswith("Z")
        assert entry["request"]["queryString"] == [{"name": "k", "value": "v"}]
        assert entry["request"]["cookies"] == [{"name": "session", "value": "abc"}]
        assert entry["request"]["postData"]["mimeType"] == "application/json"

    def test_binary_body_base64(self):
        har = make_har()
        har.entries[0].request.body = b"\xff\xfe\x00binary"
        parsed = har_from_json(har_to_json(har))
        assert parsed.entries[0].request.body == b"\xff\xfe\x00binary"

    def test_outgoing_requests(self):
        assert len(make_har().outgoing_requests()) == 1


class TestErrors:
    def test_missing_log_raises(self):
        with pytest.raises(HarError):
            har_from_json({"nope": 1})

    def test_missing_entries_raises(self):
        with pytest.raises(HarError):
            har_from_json({"log": {"version": "1.2"}})

    def test_malformed_entry_raises(self):
        doc = har_to_json(make_har())
        del doc["log"]["entries"][0]["request"]["url"]
        with pytest.raises(HarError):
            har_from_json(doc)

    def test_serialized_is_valid_json(self, tmp_path):
        path = tmp_path / "x.har"
        write_har(make_har(), path)
        json.loads(path.read_text())
