"""Unit tests for the HAR 1.2 reader/writer."""

import json

import pytest
from hypothesis import given, strategies as st

from repro.net.har import (
    Har,
    HarEntry,
    HarError,
    _epoch_to_iso,
    _iso_to_epoch,
    har_from_json,
    har_to_json,
    read_har,
    write_har,
)
from repro.net.http import Header, HttpRequest, HttpResponse
from repro.net.url import parse_url


def make_har() -> Har:
    request = HttpRequest(
        method="POST",
        url=parse_url("https://api.example.com/v1/events?k=v"),
        headers=[
            Header("Content-Type", "application/json"),
            Header("Cookie", "session=abc"),
        ],
        body=b'{"event": "click"}',
        timestamp=1_697_364_000.5,
    )
    response = HttpResponse(
        status=200, headers=[Header("Content-Type", "application/json")], body=b"{}"
    )
    har = Har(creator_name="WebInspector", comment="test-trace")
    har.entries.append(
        HarEntry(
            request=request,
            response=response,
            started=request.timestamp,
            time_ms=12.5,
            server_ip="34.1.2.3",
            connection="100001",
            page_ref="page_1",
        )
    )
    return har


class TestRoundTrip:
    def test_json_round_trip(self):
        original = make_har()
        parsed = har_from_json(har_to_json(original))
        assert len(parsed.entries) == 1
        entry = parsed.entries[0]
        assert entry.request.method == "POST"
        assert str(entry.request.url) == "https://api.example.com/v1/events?k=v"
        assert entry.request.body == b'{"event": "click"}'
        assert entry.request.cookies() == [("session", "abc")]
        assert entry.server_ip == "34.1.2.3"
        assert entry.connection == "100001"
        assert entry.page_ref == "page_1"
        assert abs(entry.started - 1_697_364_000.5) < 0.001

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.har"
        write_har(make_har(), path)
        parsed = read_har(path)
        assert parsed.creator_name == "WebInspector"
        assert parsed.comment == "test-trace"
        assert len(parsed.entries) == 1

    def test_spec_shape(self):
        doc = har_to_json(make_har())
        log = doc["log"]
        assert log["version"] == "1.2"
        entry = log["entries"][0]
        assert entry["startedDateTime"].endswith("Z")
        assert entry["request"]["queryString"] == [{"name": "k", "value": "v"}]
        assert entry["request"]["cookies"] == [{"name": "session", "value": "abc"}]
        assert entry["request"]["postData"]["mimeType"] == "application/json"

    def test_binary_body_base64(self):
        har = make_har()
        har.entries[0].request.body = b"\xff\xfe\x00binary"
        parsed = har_from_json(har_to_json(har))
        assert parsed.entries[0].request.body == b"\xff\xfe\x00binary"

    def test_outgoing_requests(self):
        assert len(make_har().outgoing_requests()) == 1


class TestTimestamps:
    """Round-trip fidelity of the ISO 8601 conversion the replay path
    depends on: sub-millisecond drift or timezone skew would break the
    generate → replay parity guarantee on archived artifacts."""

    def test_microsecond_precision_survives(self):
        epoch = 1_697_364_000.123456
        assert abs(_iso_to_epoch(_epoch_to_iso(epoch)) - epoch) < 1e-6

    def test_naive_timestamp_is_utc(self):
        # Some exporters omit the offset; interpreting those stamps in
        # local time skewed epochs by the machine's UTC offset.
        assert _iso_to_epoch("2023-10-15T10:00:00.000000") == _iso_to_epoch(
            "2023-10-15T10:00:00.000000Z"
        )

    def test_explicit_offset_respected(self):
        assert _iso_to_epoch("2023-10-15T03:00:00.000000-07:00") == _iso_to_epoch(
            "2023-10-15T10:00:00.000000Z"
        )

    @given(st.floats(min_value=0, max_value=2**31, allow_nan=False))
    def test_round_trip_within_microsecond(self, epoch):
        assert abs(_iso_to_epoch(_epoch_to_iso(epoch)) - epoch) < 1e-6

    @given(st.floats(min_value=0, max_value=2**31, allow_nan=False))
    def test_round_trip_idempotent(self, epoch):
        # One pass quantizes to microseconds; after that, the
        # conversion must be a fixed point — this is what makes
        # replaying an already-archived HAR byte-stable.
        once = _iso_to_epoch(_epoch_to_iso(epoch))
        assert _iso_to_epoch(_epoch_to_iso(once)) == once


_METHODS = st.sampled_from(["GET", "POST", "PUT", "DELETE"])
_HEADER_NAMES = st.sampled_from(
    ["User-Agent", "Accept", "X-Custom", "Content-Language"]
)
_HEADER_VALUES = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=20
)


class TestReplayFieldFidelity:
    """Property tests: har_from_json(har_to_json(h)) preserves every
    field the replay path consumes."""

    @given(
        method=_METHODS,
        headers=st.lists(st.tuples(_HEADER_NAMES, _HEADER_VALUES), max_size=4),
        body=st.binary(max_size=64),
        connection=st.sampled_from(["", "100001", "conn-9"]),
        started=st.floats(min_value=1e9, max_value=2e9, allow_nan=False),
    )
    def test_request_fields_preserved(self, method, headers, body, connection, started):
        started = _iso_to_epoch(_epoch_to_iso(started))  # microsecond-aligned
        request = HttpRequest(
            method=method,
            url=parse_url("https://api.example.com/v1/events?k=v"),
            headers=[Header(n, v) for n, v in headers],
            body=body,
            timestamp=started,
        )
        har = Har()
        har.entries.append(
            HarEntry(request=request, started=started, connection=connection)
        )
        parsed = har_from_json(har_to_json(har))
        assert len(parsed.entries) == 1
        entry = parsed.entries[0]
        assert entry.request.method == method
        assert str(entry.request.url) == str(request.url)
        assert entry.request.headers == request.headers
        assert entry.request.body == body
        assert entry.request.http_version == request.http_version
        assert entry.request.timestamp == started
        assert entry.started == started
        assert entry.connection == connection

    def test_serialized_form_is_a_fixed_point(self):
        # to_json ∘ from_json must be the identity on our own output:
        # replaying a written artifact re-serializes identically.
        doc = har_to_json(make_har())
        assert har_to_json(har_from_json(doc)) == doc


class TestErrors:
    def test_missing_log_raises(self):
        with pytest.raises(HarError):
            har_from_json({"nope": 1})

    def test_missing_entries_raises(self):
        with pytest.raises(HarError):
            har_from_json({"log": {"version": "1.2"}})

    def test_malformed_entry_raises(self):
        doc = har_to_json(make_har())
        del doc["log"]["entries"][0]["request"]["url"]
        with pytest.raises(HarError):
            har_from_json(doc)

    def test_serialized_is_valid_json(self, tmp_path):
        path = tmp_path / "x.har"
        write_har(make_har(), path)
        json.loads(path.read_text())
