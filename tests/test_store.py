"""Unit tests for the persistent classification store."""

import pickle
import sqlite3
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import CorpusConfig, DiffAudit
from repro.datatypes.base import Classification
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.store import (
    ClassificationStore,
    PersistentClassifier,
    StoreError,
    store_path_for,
)
from repro.ontology.nodes import Level3
from repro.pipeline.engine import AuditEngine
from repro.reporting.export import result_to_json


def _verdict(text, label=Level3.AGE, confidence=0.9, explanation="x"):
    return Classification(
        text=text, label=label, confidence=confidence, explanation=explanation
    )


class BatchCountingClassifier:
    """Counts classify/classify_batch invocations and keys classified."""

    name = "batch-counting"

    def __init__(self):
        self.batch_calls = 0
        self.keys_classified = 0

    def classify(self, text):
        return self.classify_batch([text])[0]

    def classify_batch(self, texts):
        self.batch_calls += 1
        self.keys_classified += len(texts)
        return [_verdict(text) for text in texts]


class TestClassificationStore:
    def test_roundtrip(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            verdicts = [
                _verdict("age", Level3.AGE, 0.93, "clear"),
                _verdict("bffp", None, 0.31, "declined"),
            ]
            store.put_many("clf", verdicts)
            found = store.get_many("clf", ["age", "bffp", "unseen"])
        assert found["age"] == verdicts[0]
        assert found["bffp"] == verdicts[1]
        assert found["bffp"].label is None
        assert "unseen" not in found

    def test_entries_keyed_by_classifier(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.put_many("a", [_verdict("k", Level3.AGE)])
            store.put_many("b", [_verdict("k", Level3.NAME)])
            assert store.get("a", "k").label is Level3.AGE
            assert store.get("b", "k").label is Level3.NAME
            assert store.stats().entries == {"a": 1, "b": 1}

    def test_racing_duplicates_ignored(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.put_many("clf", [_verdict("k", confidence=0.9)])
            store.put_many("clf", [_verdict("k", confidence=0.1)])
            assert store.get("clf", "k").confidence == 0.9

    def test_large_batch_crosses_chunk_boundary(self, tmp_path):
        keys = [f"key-{i}" for i in range(1000)]
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.put_many("clf", [_verdict(key) for key in keys])
            found = store.get_many("clf", keys)
        assert len(found) == 1000

    def test_prune_and_clear(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.put_many(
                "a", [_verdict("low", confidence=0.2), _verdict("high")]
            )
            store.put_many("b", [_verdict("other")])
            assert store.prune(below=0.5) == 1
            assert store.prune(classifier="b") == 1
            assert store.stats().entries == {"a": 1}
            assert store.clear() == 1
            assert store.stats().total_entries == 0
            assert store.stats().run_count == 0

    def test_prune_needs_a_criterion(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            with pytest.raises(StoreError):
                store.prune()

    def test_run_records(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.record_run("clf", memory_hits=10, store_hits=5, misses=0)
            stats = store.stats()
        assert stats.run_count == 1
        assert stats.last_run.lookups == 15
        assert stats.last_run.hit_rate == 1.0

    def test_corrupt_store_recovered(self, tmp_path):
        path = tmp_path / "s.sqlite"
        path.write_bytes(b"this is definitely not an sqlite database" * 40)
        with ClassificationStore(path) as store:
            store.put_many("clf", [_verdict("k")])
            assert store.get("clf", "k") is not None
        # The corrupt bytes were quarantined, not destroyed.
        assert (tmp_path / "s.sqlite.corrupt").exists()

    def test_corrupt_store_without_recovery_raises_and_keeps_file(self, tmp_path):
        path = tmp_path / "s.sqlite"
        garbage = b"not an sqlite database" * 40
        path.write_bytes(garbage)
        with pytest.raises(StoreError, match="corrupt"):
            ClassificationStore(path, recover=False)
        # Evidence preserved for salvage: no quarantine, no rebuild.
        assert path.read_bytes() == garbage
        assert not (tmp_path / "s.sqlite.corrupt").exists()

    def test_transient_corruption_recovers_without_quarantine(self, tmp_path):
        # One corrupt read over a healthy file (or a store a racing
        # worker already rebuilt): reconnect-and-retry must succeed
        # WITHOUT moving the healthy file aside or losing its entries.
        class CorruptOnce:
            def __init__(self, real):
                self._real = real
                self.fired = False

            def execute(self, *args):
                if not self.fired:
                    self.fired = True
                    raise sqlite3.DatabaseError(
                        "database disk image is malformed"
                    )
                return self._real.execute(*args)

            def __getattr__(self, name):
                return getattr(self._real, name)

        path = tmp_path / "s.sqlite"
        with ClassificationStore(path) as store:
            store.put_many("clf", [_verdict("k")])
            store._conn = CorruptOnce(store._conn)
            assert store.get("clf", "k") is not None  # data survived
        assert not (tmp_path / "s.sqlite.corrupt").exists()

    def test_corruption_mid_operation_quarantines_and_rebuilds(self, tmp_path):
        # A store can pass the connect-time check (valid header) and
        # still surface corruption on a later page read; when the
        # corruption survives a reconnect, the operation must
        # quarantine, rebuild and retry instead of crashing the audit.
        class CorruptAlways:
            def __init__(self, real):
                self._real = real

            def execute(self, *args):
                raise sqlite3.DatabaseError("database disk image is malformed")

            def __getattr__(self, name):
                return getattr(self._real, name)

        path = tmp_path / "s.sqlite"
        with ClassificationStore(path) as store:
            store.put_many("clf", [_verdict("k")])
            # Make the on-disk file genuinely unreadable so the
            # reconnect-and-retry fails too, forcing quarantine.
            store._conn.close()
            path.write_bytes(b"valid header gone" * 50)
            store._conn = CorruptAlways(store._conn)
            assert store.get_many("clf", ["k"]) == {}  # rebuilt empty
            store.put_many("clf", [_verdict("k2")])
            assert store.get("clf", "k2") is not None
        assert (tmp_path / "s.sqlite.corrupt").exists()

    def test_corruption_mid_operation_without_recovery_raises(self, tmp_path):
        class CorruptAlways:
            def __init__(self, real):
                self._real = real

            def execute(self, *args):
                raise sqlite3.DatabaseError("database disk image is malformed")

            def __getattr__(self, name):
                return getattr(self._real, name)

        path = tmp_path / "s.sqlite"
        store = ClassificationStore(path, recover=False)
        store._conn = CorruptAlways(store._conn)
        with pytest.raises(StoreError, match="corrupt"):
            store.get_many("clf", ["k"])
        assert not (tmp_path / "s.sqlite.corrupt").exists()

    def test_locked_store_waits_out_short_transactions(self, tmp_path):
        # A writer holding the database briefly must not fail readers
        # or other writers — the busy timeout absorbs the contention.
        path = tmp_path / "s.sqlite"
        with ClassificationStore(path) as store:
            blocker = sqlite3.connect(path, timeout=30.0)
            blocker.execute("BEGIN IMMEDIATE")
            blocker.execute(
                "INSERT OR IGNORE INTO classifications VALUES "
                "('clf', 'held', 'Age', 0.5, '')"
            )
            blocker.commit()  # release immediately: WAL readers never block
            blocker.close()
            store.put_many("clf", [_verdict("after")])
            assert store.get("clf", "after") is not None


def _worker_put(args):
    path, worker = args
    with ClassificationStore(path) as store:
        verdicts = [_verdict(f"w{worker}-k{i}") for i in range(50)]
        store.put_many("clf", verdicts)
        # Every worker also writes a shared key: racing writers must
        # coexist, with first-write-wins on the duplicate.
        store.put_many("clf", [_verdict("shared", confidence=0.5)])
    return worker


class TestConcurrentAccess:
    def test_multi_process_writers(self, tmp_path):
        path = tmp_path / "s.sqlite"
        with ProcessPoolExecutor(max_workers=4) as pool:
            done = list(pool.map(_worker_put, [(path, w) for w in range(4)]))
        assert sorted(done) == [0, 1, 2, 3]
        with ClassificationStore(path) as store:
            assert store.stats().total_entries == 4 * 50 + 1
            assert store.get("clf", "shared").confidence == 0.5


class TestPersistentClassifier:
    def test_second_instance_answers_from_disk(self, tmp_path):
        path = tmp_path / "s.sqlite"
        first_inner = BatchCountingClassifier()
        first = PersistentClassifier(first_inner, path)
        first.classify_batch(["a", "b", "a"])
        assert first_inner.keys_classified == 2
        assert first.misses == 2

        second_inner = BatchCountingClassifier()
        second = PersistentClassifier(second_inner, path)
        verdicts = second.classify_batch(["a", "b"])
        assert [v.text for v in verdicts] == ["a", "b"]
        assert second_inner.keys_classified == 0
        assert second.store_hits == 2 and second.misses == 0
        assert second.hit_rate == 1.0

    def test_misses_drain_in_one_inner_batch(self, tmp_path):
        inner = BatchCountingClassifier()
        persistent = PersistentClassifier(inner, tmp_path / "s.sqlite")
        persistent.classify_batch(["a", "b", "c", "a"])
        assert inner.batch_calls == 1
        assert inner.keys_classified == 3

    def test_layers_under_caching_classifier(self, tmp_path):
        inner = BatchCountingClassifier()
        persistent = PersistentClassifier(inner, tmp_path / "s.sqlite")
        cache = CachingClassifier.wrap(persistent)
        cache.classify_batch(["a", "b"])
        cache.classify_batch(["a", "b", "c"])
        # Memory layer absorbed the repeats; the store only ever saw
        # each unique key once, the inner one batched call per miss set.
        assert cache.hits == 2 and cache.misses == 3
        assert persistent.misses == 3
        assert inner.batch_calls == 2

    def test_pickle_drops_connection_and_reopens(self, tmp_path):
        persistent = PersistentClassifier(
            BatchCountingClassifier(), tmp_path / "s.sqlite"
        )
        persistent.classify_batch(["a"])
        clone = pickle.loads(pickle.dumps(persistent))
        assert clone._store is None
        assert clone.classify("a").text == "a"
        assert clone.store_hits == persistent.store_hits + 1

    def test_mid_run_store_failure_degrades_to_inner(self, tmp_path, capsys):
        # The store is a performance artifact: once open, a failing
        # store must disable itself with a warning and let the inner
        # classifier carry the run, never crash it.
        inner = BatchCountingClassifier()
        persistent = PersistentClassifier(inner, tmp_path / "s.sqlite")
        persistent.classify_batch(["a"])  # opens the store

        def explode(*args, **kwargs):
            raise StoreError("store went away")

        persistent.store.get_many = explode
        persistent.store.put_many = explode
        verdicts = persistent.classify_batch(["a", "b"])
        assert [v.text for v in verdicts] == ["a", "b"]
        assert persistent._disabled
        assert "disabled for this process" in capsys.readouterr().err
        # Later batches skip the store without further warnings.
        assert persistent.classify_batch(["c"])[0].text == "c"
        assert inner.keys_classified == 4  # a + (a, b) + c

    def test_unusable_cache_dir_fails_fast_at_engine_construction(self, tmp_path):
        from repro.pipeline.engine import AuditEngine

        target = tmp_path / "occupied"
        target.write_text("a file, not a directory")
        with pytest.raises(StoreError, match="cannot create"):
            AuditEngine(config=self.CONFIG_FAST, cache_dir=target / "sub")

    CONFIG_FAST = CorpusConfig(scale=0.002, services=("youtube",))

    def test_wrap_is_idempotent(self, tmp_path):
        path = tmp_path / "s.sqlite"
        persistent = PersistentClassifier.wrap(BatchCountingClassifier(), path)
        assert PersistentClassifier.wrap(persistent, path) is persistent
        assert persistent.name == "persistent-batch-counting"


class TestWarmPathAudits:
    CONFIG = CorpusConfig(scale=0.003, seed=11, services=("tiktok", "youtube"))

    def test_cold_vs_warm_byte_identical_and_zero_inner_calls(self, tmp_path):
        baseline = result_to_json(DiffAudit(self.CONFIG).run())
        cold = DiffAudit(self.CONFIG, cache_dir=tmp_path).run()
        warm = DiffAudit(self.CONFIG, cache_dir=tmp_path).run()
        assert result_to_json(cold) == baseline
        assert result_to_json(warm) == baseline

        engine = AuditEngine(config=self.CONFIG, cache_dir=tmp_path)
        merged = engine.run()
        assert merged.store_misses == 0  # zero inner-classifier calls
        assert merged.store_hits > 0

    def test_parallel_shards_reuse_across_processes(self, tmp_path):
        # PR 1 limitation: the in-memory cache was shared only in
        # sequential mode.  With the store, every parallel shard must
        # observe cross-shard (here: cross-run, via disk) reuse.
        DiffAudit(self.CONFIG, cache_dir=tmp_path, jobs=1).run()
        engine = AuditEngine(config=self.CONFIG, cache_dir=tmp_path, jobs=2)
        tasks = engine.shard_tasks()
        from repro.pipeline.engine import ProcessPoolShardExecutor

        results = ProcessPoolShardExecutor(jobs=2).map_shards(tasks)
        assert len(results) == 2
        for shard in results:
            assert shard.store_hits > 0, f"{shard.service} saw no store reuse"
            assert shard.store_misses == 0
        merged = AuditEngine.merge(results)
        assert result_to_json(
            DiffAudit(self.CONFIG).run()
        ) == result_to_json(
            DiffAudit(self.CONFIG, cache_dir=tmp_path, jobs=2).run()
        )
        assert merged.store_hits == sum(r.store_hits for r in results)

    def test_run_records_appended(self, tmp_path):
        AuditEngine(config=self.CONFIG, cache_dir=tmp_path).run()
        AuditEngine(config=self.CONFIG, cache_dir=tmp_path).run()
        with ClassificationStore(store_path_for(tmp_path)) as store:
            stats = store.stats()
        assert stats.run_count == 2
        assert stats.last_run.misses == 0
        assert stats.last_run.hit_rate == 1.0
