"""Unit and property tests for the binary pcap reader/writer."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.net.pcap import PcapError, PcapFile, PcapPacket, PcapReader


def _handwritten_pcap(byte_order: str, records: int = 1) -> bytes:
    """A minimal valid capture built by hand in either byte order."""
    assert byte_order in ("<", ">")
    blob = struct.pack(byte_order + "IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
    for index in range(records):
        payload = bytes([index]) * 5
        blob += struct.pack(
            byte_order + "IIII", 10 + index, 500, len(payload), len(payload)
        )
        blob += payload
    return blob


def make_pcap(n: int = 3) -> PcapFile:
    pcap = PcapFile()
    for index in range(n):
        pcap.append(PcapPacket(timestamp=100.0 + index * 0.001, data=bytes([index]) * 20))
    return pcap


class TestRoundTrip:
    def test_bytes_round_trip(self):
        original = make_pcap()
        parsed = PcapFile.from_bytes(original.to_bytes())
        assert len(parsed) == 3
        for a, b in zip(original.packets, parsed.packets):
            assert a.data == b.data
            assert abs(a.timestamp - b.timestamp) < 1e-6

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.pcap"
        make_pcap(5).write(path)
        assert len(PcapFile.read(path)) == 5

    def test_empty_pcap(self):
        parsed = PcapFile.from_bytes(PcapFile().to_bytes())
        assert len(parsed) == 0

    def test_linktype_preserved(self):
        pcap = PcapFile(linktype=101)
        assert PcapFile.from_bytes(pcap.to_bytes()).linktype == 101

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=2**31, allow_nan=False),
                st.binary(max_size=100),
            ),
            max_size=10,
        )
    )
    def test_round_trip_property(self, packets):
        pcap = PcapFile()
        for timestamp, data in packets:
            pcap.append(PcapPacket(timestamp=timestamp, data=data))
        parsed = PcapFile.from_bytes(pcap.to_bytes())
        assert [p.data for p in parsed.packets] == [d for _, d in packets]
        for (timestamp, _), parsed_packet in zip(packets, parsed.packets):
            assert abs(parsed_packet.timestamp - timestamp) < 1e-5

    @given(
        linktype=st.integers(min_value=0, max_value=2**16),
        snaplen=st.integers(min_value=0, max_value=2**20),
        packets=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=2**31, allow_nan=False),
                st.binary(max_size=64),
                st.one_of(st.none(), st.integers(min_value=0, max_value=2**20)),
            ),
            max_size=6,
        ),
    )
    def test_replay_field_fidelity_property(self, linktype, snaplen, packets):
        """Every field the replay path consumes survives
        from_bytes(to_bytes(p)): header fields, payload bytes,
        explicit original lengths, microsecond-stable timestamps."""
        pcap = PcapFile(linktype=linktype, snaplen=snaplen)
        for timestamp, data, orig_len in packets:
            pcap.append(
                PcapPacket(timestamp=timestamp, data=data, orig_len=orig_len)
            )
        parsed = PcapFile.from_bytes(pcap.to_bytes())
        assert parsed.linktype == linktype
        assert parsed.snaplen == snaplen
        assert [p.data for p in parsed.packets] == [d for _, d, _ in packets]
        for (timestamp, data, orig_len), packet in zip(packets, parsed.packets):
            assert packet.orig_len == (orig_len if orig_len is not None else len(data))
            assert abs(packet.timestamp - timestamp) < 1e-5
        # The serialized form is a fixed point: an archived pcap
        # re-serializes byte-identically, which keeps replayed corpora
        # stable across read/write cycles.
        assert parsed.to_bytes() == pcap.to_bytes()


class TestFormat:
    def test_magic_number(self):
        assert make_pcap().to_bytes()[:4] == struct.pack("<I", 0xA1B2C3D4)

    def test_big_endian_read(self):
        # Construct a minimal big-endian file by hand.
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 10, 500, 3, 3) + b"abc"
        parsed = PcapFile.from_bytes(header + record)
        assert parsed.packets[0].data == b"abc"
        assert abs(parsed.packets[0].timestamp - 10.0005) < 1e-6

    def test_orig_len_preserved(self):
        pcap = PcapFile()
        pcap.append(PcapPacket(timestamp=0.0, data=b"abc", orig_len=1000))
        parsed = PcapFile.from_bytes(pcap.to_bytes())
        assert parsed.packets[0].orig_len == 1000
        assert parsed.packets[0].captured_len == 3

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda blob: blob[:10],  # shorter than global header
            lambda blob: b"\x00\x00\x00\x00" + blob[4:],  # bad magic
            lambda blob: blob[:-3],  # truncated record body
        ],
    )
    def test_malformed_rejected(self, mutate):
        blob = make_pcap().to_bytes()
        with pytest.raises(PcapError):
            PcapFile.from_bytes(mutate(blob))

    def test_unsupported_version_rejected(self):
        blob = bytearray(make_pcap().to_bytes())
        blob[4:6] = struct.pack("<H", 9)  # major version 9
        with pytest.raises(PcapError):
            PcapFile.from_bytes(bytes(blob))

    def test_microsecond_rollover(self):
        pcap = PcapFile()
        pcap.append(PcapPacket(timestamp=1.9999996, data=b"x"))
        parsed = PcapFile.from_bytes(pcap.to_bytes())
        assert abs(parsed.packets[0].timestamp - 2.0) < 1e-6

    def test_microsecond_rollover_emits_valid_record(self):
        """``micros == 1_000_000`` must roll into the seconds field.

        A record whose fraction field equals a full second would be
        invalid on the wire (tshark flags it); the writer must carry
        the overflow instead of emitting it.
        """
        pcap = PcapFile()
        pcap.append(PcapPacket(timestamp=1.9999996, data=b"x"))
        blob = pcap.to_bytes()
        seconds, micros, caplen, orig_len = struct.unpack("<IIII", blob[24:40])
        assert (seconds, micros) == (2, 0)
        assert caplen == orig_len == 1

    @given(st.floats(min_value=0, max_value=2**31, allow_nan=False))
    def test_micros_field_always_below_one_second(self, timestamp):
        pcap = PcapFile()
        pcap.append(PcapPacket(timestamp=timestamp, data=b"x"))
        blob = pcap.to_bytes()
        _, micros, _, _ = struct.unpack("<IIII", blob[24:40])
        assert 0 <= micros < 1_000_000


class TestTruncation:
    """Explicit truncation errors, in both byte orders."""

    @pytest.mark.parametrize("byte_order", ["<", ">"], ids=["le", "be"])
    @pytest.mark.parametrize("cut", [0, 4, 12, 23])
    def test_truncated_global_header(self, byte_order, cut):
        blob = _handwritten_pcap(byte_order)
        with pytest.raises(PcapError, match="shorter than global header"):
            PcapFile.from_bytes(blob[:cut])

    @pytest.mark.parametrize("byte_order", ["<", ">"], ids=["le", "be"])
    def test_truncated_record_header(self, byte_order):
        blob = _handwritten_pcap(byte_order)
        # Cut inside the 16-byte record header (after the global header).
        with pytest.raises(PcapError, match="truncated record header"):
            PcapFile.from_bytes(blob[: 24 + 7])

    @pytest.mark.parametrize("byte_order", ["<", ">"], ids=["le", "be"])
    def test_truncated_record_body(self, byte_order):
        blob = _handwritten_pcap(byte_order)
        with pytest.raises(PcapError, match="truncated record body"):
            PcapFile.from_bytes(blob[:-2])

    @pytest.mark.parametrize("byte_order", ["<", ">"], ids=["le", "be"])
    def test_intact_file_parses(self, byte_order):
        parsed = PcapFile.from_bytes(_handwritten_pcap(byte_order, records=2))
        assert [p.data for p in parsed.packets] == [b"\x00" * 5, b"\x01" * 5]


class TestPcapReader:
    """The streaming zero-copy path."""

    def test_streaming_matches_eager(self):
        blob = make_pcap(5).to_bytes()
        eager = PcapFile.from_bytes(blob)
        reader = PcapReader(blob)
        records = list(reader.iter_packets())
        assert [bytes(r.data) for r in records] == [p.data for p in eager.packets]
        assert [r.timestamp for r in records] == [
            p.timestamp for p in eager.packets
        ]
        assert [r.orig_len for r in records] == [p.orig_len for p in eager.packets]
        assert (reader.linktype, reader.snaplen) == (eager.linktype, eager.snaplen)

    def test_records_are_zero_copy_views(self):
        blob = make_pcap(1).to_bytes()
        record = next(PcapReader(blob).iter_packets())
        assert isinstance(record.data, memoryview)
        assert record.data.obj is blob  # view into the original buffer

    def test_open_mmaps_on_disk_file(self, tmp_path):
        path = tmp_path / "trace.pcap"
        make_pcap(4).write(path)
        with PcapReader.open(path) as reader:
            assert len(list(reader.iter_packets())) == 4

    def test_open_rejects_bad_magic_and_releases_file(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(PcapError, match="bad magic"):
            PcapReader.open(path)

    def test_open_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.pcap"
        path.write_bytes(b"")
        with pytest.raises(PcapError, match="shorter than global header"):
            PcapReader.open(path)

    def test_header_validated_eagerly_records_lazily(self):
        blob = _handwritten_pcap("<") + b"\x01"  # trailing junk byte
        reader = PcapReader(blob)  # construction is fine
        with pytest.raises(PcapError, match="truncated record header"):
            list(reader.iter_packets())
