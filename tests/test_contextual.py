"""Unit tests for the contextual-integrity framing (§3.2.1)."""

import pytest

from repro.audit.contextual import (
    Appropriateness,
    CiFlow,
    Recipient,
    TransmissionPrinciple,
    ci_flow_for,
    judge,
    summarize,
)
from repro.destinations.party import PartyLabel
from repro.flows.dataflow import FlowObservation
from repro.model import Platform, TraceColumn
from repro.ontology.nodes import Level3


def observation(party=PartyLabel.THIRD_PARTY_ATS, column=TraceColumn.CHILD):
    return FlowObservation(
        service="svc",
        column=column,
        platform=Platform.WEB,
        level3=Level3.ALIASES,
        fqdn="ads.x.example",
        esld="x.example",
        party=party,
        raw_key="uid",
    )


class TestMapping:
    @pytest.mark.parametrize(
        "party,recipient",
        [
            (PartyLabel.FIRST_PARTY, Recipient.SERVICE_PROVIDER),
            (PartyLabel.FIRST_PARTY_ATS, Recipient.SERVICE_ANALYTICS),
            (PartyLabel.THIRD_PARTY, Recipient.THIRD_PARTY_PROCESSOR),
            (PartyLabel.THIRD_PARTY_ATS, Recipient.ADVERTISING_TRACKER),
        ],
    )
    def test_party_to_recipient(self, party, recipient):
        assert ci_flow_for(observation(party=party)).recipient is recipient

    @pytest.mark.parametrize(
        "column,principle",
        [
            (TraceColumn.LOGGED_OUT, TransmissionPrinciple.NO_CONSENT),
            (TraceColumn.CHILD, TransmissionPrinciple.PARENTAL_OPT_IN_REQUIRED),
            (TraceColumn.ADOLESCENT, TransmissionPrinciple.TEEN_OPT_IN_REQUIRED),
            (TraceColumn.ADULT, TransmissionPrinciple.NOTICE_AND_CHOICE),
        ],
    )
    def test_column_to_principle(self, column, principle):
        assert ci_flow_for(observation(column=column)).principle is principle

    def test_subject_names_age(self):
        assert ci_flow_for(observation(column=TraceColumn.CHILD)).subject == "child user"
        assert (
            ci_flow_for(observation(column=TraceColumn.LOGGED_OUT)).subject
            == "user of unknown age"
        )

    def test_tuple_shape(self):
        assert len(ci_flow_for(observation()).as_tuple()) == 5


class TestNorms:
    def test_tracker_flows_pre_consent_inappropriate(self):
        flow = ci_flow_for(
            observation(party=PartyLabel.THIRD_PARTY_ATS, column=TraceColumn.LOGGED_OUT)
        )
        assert judge(flow) is Appropriateness.INAPPROPRIATE

    def test_protected_age_tracker_flows_inappropriate(self):
        for column in (TraceColumn.CHILD, TraceColumn.ADOLESCENT):
            flow = ci_flow_for(observation(column=column))
            assert judge(flow) is Appropriateness.INAPPROPRIATE

    def test_adult_tracker_flows_conditional(self):
        flow = ci_flow_for(observation(column=TraceColumn.ADULT))
        assert judge(flow) is Appropriateness.CONDITIONAL

    def test_first_party_post_consent_appropriate(self):
        flow = ci_flow_for(
            observation(party=PartyLabel.FIRST_PARTY, column=TraceColumn.ADULT)
        )
        assert judge(flow) is Appropriateness.APPROPRIATE

    def test_first_party_pre_consent_personal_data_conditional(self):
        flow = ci_flow_for(
            observation(party=PartyLabel.FIRST_PARTY, column=TraceColumn.LOGGED_OUT)
        )
        assert judge(flow) is Appropriateness.CONDITIONAL

    def test_first_party_pre_consent_operational_appropriate(self):
        """COPPA's internal-operations exception."""
        flow = CiFlow(
            sender="svc web client",
            recipient=Recipient.SERVICE_PROVIDER,
            subject="user of unknown age",
            information_type="Network Connection Information",
            principle=TransmissionPrinciple.NO_CONSENT,
        )
        assert judge(flow) is Appropriateness.APPROPRIATE

    def test_pre_consent_third_party_processor_inappropriate(self):
        flow = ci_flow_for(
            observation(party=PartyLabel.THIRD_PARTY, column=TraceColumn.LOGGED_OUT)
        )
        assert judge(flow) is Appropriateness.INAPPROPRIATE

    def test_third_party_processor_conditional(self):
        flow = ci_flow_for(
            observation(party=PartyLabel.THIRD_PARTY, column=TraceColumn.ADULT)
        )
        assert judge(flow) is Appropriateness.CONDITIONAL


class TestSummary:
    def test_counts(self):
        observations = [
            observation(party=PartyLabel.FIRST_PARTY, column=TraceColumn.ADULT),
            observation(party=PartyLabel.THIRD_PARTY_ATS, column=TraceColumn.CHILD),
            observation(party=PartyLabel.THIRD_PARTY, column=TraceColumn.ADULT),
        ]
        summary = summarize(observations)
        assert summary.appropriate == 1
        assert summary.inappropriate == 1
        assert summary.conditional == 1
        assert summary.total == 3
        assert summary.inappropriate_fraction == pytest.approx(1 / 3)

    def test_empty(self):
        summary = summarize([])
        assert summary.total == 0
        assert summary.inappropriate_fraction == 0.0

    def test_full_corpus_shape(self, full_result):
        """Over the real corpus: YouTube's only inappropriate flows are
        pre-consent first-party-analytics collection (it contacts no
        third parties); Quizlet's inappropriate flows are plentiful in
        every column."""
        youtube_in_session = [
            o
            for o in full_result.flows.observations()
            if o.service == "youtube" and o.column is not TraceColumn.LOGGED_OUT
        ]
        assert summarize(youtube_in_session).inappropriate == 0
        quizlet = [
            o for o in full_result.flows.observations() if o.service == "quizlet"
        ]
        summary = summarize(quizlet)
        assert summary.inappropriate > 1_000
        assert 0 < summary.inappropriate_fraction < 1
