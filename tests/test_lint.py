"""Tests for the invariant linter (``repro.lint``).

Structure mirrors the acceptance contract:

* per-rule fixture pairs — a snippet that must fire and a near-miss
  that must not, for every shipped rule;
* suppression mechanics — reason mandatory, standalone-line form,
  unused suppressions flagged, strings are not suppressions;
* baseline round-trip — findings baselined out, stale entries
  surfaced, ``--write-baseline`` regeneration;
* the self-lint — the repository lints clean with an empty committed
  baseline, and removing a real suppression makes it fail;
* CLI integration — ``repro lint`` and ``python -m repro.lint`` exit
  codes and formats.
"""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.cli import main as repro_main
from repro.lint import all_rules, doc_rules, run_lint
from repro.lint.cli import main as lint_main
from repro.lint.determinism import (
    UnseededRandomRule,
    UnsortedIterationRule,
    WallClockRule,
)
from repro.lint.engine import Finding, load_baseline, write_baseline
from repro.lint.executor import (
    AtomicWriteRule,
    BroadExceptRule,
    GlobalMutationRule,
    LruCacheMethodRule,
    MutableDefaultRule,
    PackedResultCoverageRule,
    PoolDataclassSlotsRule,
    SwallowedExceptionRule,
)
from repro.lint.report import render_json, render_text
from repro.lint.sync import (
    BenchSchemaRule,
    CliReferenceRule,
    DocReferenceRule,
    MetricCatalogRule,
    NamedProfileRule,
    StageNameRule,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_snippet(tmp_path, code, rule, rel="src/mod.py"):
    """Write one snippet under ``tmp_path`` and run one rule over it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dedent(code), encoding="utf-8")
    result = run_lint(tmp_path, targets=[path], rules=[rule])
    return [finding.rule for finding in result.findings], result


# ----------------------------------------------------------------------
# D family fixture pairs
# ----------------------------------------------------------------------


class TestDeterminismRules:
    def test_d_random_fires_on_module_call(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import random

            def pick(items):
                return random.choice(items)
            """,
            UnseededRandomRule(),
        )
        assert fired == ["D-RANDOM"]

    def test_d_random_fires_on_from_import(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            "from random import shuffle\n",
            UnseededRandomRule(),
        )
        assert fired == ["D-RANDOM"]

    def test_d_random_near_miss_seeded_instance(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import random

            def pick(items, seed):
                rng = random.Random(seed)
                return rng.choice(items)
            """,
            UnseededRandomRule(),
        )
        assert fired == []

    def test_d_random_near_miss_unrelated_name(self, tmp_path):
        # A local variable named ``random`` (e.g. a TLS client random)
        # must not trip the rule when the module never imports random.
        fired, _ = lint_snippet(
            tmp_path,
            """
            def keylog_line(random, secret):
                return f"{random.hex()} {secret.hex()}"
            """,
            UnseededRandomRule(),
        )
        assert fired == []

    def test_d_now_fires_on_time_time(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return int(time.time())
            """,
            WallClockRule(),
        )
        assert fired == ["D-NOW"]

    def test_d_now_fires_on_datetime_now_and_uuid4(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import uuid
            from datetime import datetime

            def ident():
                return f"{datetime.now()}-{uuid.uuid4()}"
            """,
            WallClockRule(),
        )
        assert fired == ["D-NOW", "D-NOW"]

    def test_d_now_near_miss_perf_counter(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import time

            def measure():
                return time.perf_counter() - time.monotonic()
            """,
            WallClockRule(),
        )
        assert fired == []

    def test_d_sort_fires_on_glob_for_loop(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import glob

            def emit(out):
                for path in glob.glob("*.json"):
                    out.write(path)
            """,
            UnsortedIterationRule(),
        )
        assert fired == ["D-SORT"]

    def test_d_sort_fires_on_set_literal_listcomp(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            "order = [x for x in {3, 1, 2}]\n",
            UnsortedIterationRule(),
        )
        assert fired == ["D-SORT"]

    def test_d_sort_near_miss_sorted_wrap(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import glob

            def emit(out):
                for path in sorted(glob.glob("*.json")):
                    out.write(path)
            """,
            UnsortedIterationRule(),
        )
        assert fired == []

    def test_d_sort_near_miss_commutative_reducer(self, tmp_path):
        # Reducers whose result ignores order sanction the iteration,
        # even through a generator expression.
        fired, _ = lint_snippet(
            tmp_path,
            """
            def total(directory):
                return sum(p.stat().st_size for p in directory.iterdir())
            """,
            UnsortedIterationRule(),
        )
        assert fired == []

    def test_d_sort_near_miss_set_comprehension(self, tmp_path):
        # Building a set from unordered iteration is order-insensitive.
        fired, _ = lint_snippet(
            tmp_path,
            """
            import os

            def stems(d):
                return sorted({p.split(".")[0] for p in os.listdir(d)})
            """,
            UnsortedIterationRule(),
        )
        assert fired == []


# ----------------------------------------------------------------------
# X family fixture pairs
# ----------------------------------------------------------------------


class TestExecutorRules:
    def test_x_mutdef_fires(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            "def add(item, bucket=[]):\n    bucket.append(item)\n",
            MutableDefaultRule(),
        )
        assert fired == ["X-MUTDEF"]

    def test_x_mutdef_fires_on_kwonly_dict(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            "def f(*, options={}):\n    return options\n",
            MutableDefaultRule(),
        )
        assert fired == ["X-MUTDEF"]

    def test_x_mutdef_near_miss_none_and_tuple(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def add(item, bucket=None, order=()):
                bucket = [] if bucket is None else bucket
                bucket.append(item)
            """,
            MutableDefaultRule(),
        )
        assert fired == []

    def test_x_global_fires(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            _COUNTER = 0

            def bump():
                global _COUNTER
                _COUNTER += 1
            """,
            GlobalMutationRule(),
        )
        assert fired == ["X-GLOBAL"]

    def test_x_global_near_miss_read_only(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            _TABLE = {"a": 1}

            def lookup(key):
                value = _TABLE[key]
                return value
            """,
            GlobalMutationRule(),
        )
        assert fired == []

    def test_x_lru_fires_on_instance_method(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from functools import lru_cache

            class Classifier:
                @lru_cache(maxsize=64)
                def classify(self, key):
                    return key.lower()
            """,
            LruCacheMethodRule(),
        )
        assert fired == ["X-LRU"]

    def test_x_lru_near_miss_module_function_and_static(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from functools import lru_cache

            @lru_cache(maxsize=64)
            def classify(key):
                return key.lower()

            class Helper:
                @staticmethod
                @lru_cache(maxsize=4)
                def fold(key):
                    return key.casefold()
            """,
            LruCacheMethodRule(),
        )
        assert fired == []

    def test_x_bare_except_fires(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def guarded(op):
                try:
                    return op()
                except Exception:
                    return None
            """,
            BroadExceptRule(),
        )
        assert fired == ["X-BARE-EXCEPT"]

    def test_x_bare_except_fires_on_bare(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def guarded(op):
                try:
                    return op()
                except:
                    return None
            """,
            BroadExceptRule(),
        )
        assert fired == ["X-BARE-EXCEPT"]

    def test_x_bare_except_near_miss_specific(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def guarded(op):
                try:
                    return op()
                except (ValueError, KeyError):
                    return None
            """,
            BroadExceptRule(),
        )
        assert fired == []

    def test_x_swallow_fires_on_pass(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def cleanup(path):
                try:
                    path.unlink()
                except OSError:
                    pass
            """,
            SwallowedExceptionRule(),
        )
        assert fired == ["X-SWALLOW"]

    def test_x_swallow_fires_on_continue(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def drain(items):
                out = []
                for item in items:
                    try:
                        out.append(item.decode())
                    except ValueError:
                        continue
                return out
            """,
            SwallowedExceptionRule(),
        )
        assert fired == ["X-SWALLOW"]

    def test_x_swallow_near_miss_recorded_failure(self, tmp_path):
        # A handler that *records* the failure — appends, logs, counts,
        # or re-raises — is exactly what the rule wants instead.
        fired, _ = lint_snippet(
            tmp_path,
            """
            def drain(items, errors):
                out = []
                for item in items:
                    try:
                        out.append(item.decode())
                    except ValueError as exc:
                        errors.append(exc)
                        continue
                return out
            """,
            SwallowedExceptionRule(),
        )
        assert fired == []

    def test_x_pickle_fires_on_unslotted_pool_payload(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class FooTask:
                service: str
            """,
            PoolDataclassSlotsRule(),
            rel="pipeline/engine.py",
        )
        assert fired == ["X-PICKLE"]

    def test_x_pickle_near_miss_slotted_or_parent_side(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class FooTask:
                service: str

            @dataclass
            class FooEngine:  # parent-side, never crosses the pool
                jobs: int = 1
            """,
            PoolDataclassSlotsRule(),
            rel="pipeline/engine.py",
        )
        assert fired == []

    def test_x_pickle_ignores_non_boundary_modules(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class FooTask:
                service: str
            """,
            PoolDataclassSlotsRule(),
            rel="src/other.py",
        )
        assert fired == []

    def test_x_pack_fires_on_dropped_field(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class ShardResult:
                service: str
                trace_count: int

            def pack_shard_result(result):
                return (result.service,)  # trace_count dropped!
            """,
            PackedResultCoverageRule(),
        )
        assert fired == ["X-PACK"]

    def test_x_pack_near_miss_full_coverage(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class ShardResult:
                service: str
                trace_count: int

            def pack_shard_result(result):
                return (result.service, result.trace_count)
            """,
            PackedResultCoverageRule(),
        )
        assert fired == []

    def test_x_atomic_fires_on_raw_writes(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from pathlib import Path

            def export(path, text, blob):
                Path(path).write_text(text)
                Path(path).write_bytes(blob)
            """,
            AtomicWriteRule(),
        )
        assert fired == ["X-ATOMIC", "X-ATOMIC"]

    def test_x_atomic_near_miss_atomic_helpers(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            from pathlib import Path

            from repro.fsutil import atomic_write_bytes, atomic_write_text

            def export(path, text, blob):
                atomic_write_text(Path(path), text)
                atomic_write_bytes(Path(path), blob)
            """,
            AtomicWriteRule(),
        )
        assert fired == []

    def test_x_atomic_ignores_tests_and_fsutil(self, tmp_path):
        code = """
            from pathlib import Path

            def fixture(path):
                Path(path).write_text("raw on purpose")
            """
        fired, _ = lint_snippet(
            tmp_path, code, AtomicWriteRule(), rel="tests/test_mod.py"
        )
        assert fired == []
        fired, _ = lint_snippet(
            tmp_path, code, AtomicWriteRule(), rel="src/repro/fsutil.py"
        )
        assert fired == []


# ----------------------------------------------------------------------
# S family fixture pairs
# ----------------------------------------------------------------------


class TestSyncRules:
    def test_s_stage_fires_on_unknown_stage(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def run(timer):
                with timer.stage("warpdrive"):
                    pass
            """,
            StageNameRule(),
            rel="pipeline/mod.py",
        )
        assert fired == ["S-STAGE"]

    def test_s_stage_near_miss_known_and_dynamic(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            def run(timer, name):
                with timer.stage("classify"):
                    pass
                with timer.stage("shard_setup"):
                    pass
                with timer.stage(name):  # dynamic: runtime validates
                    pass
            """,
            StageNameRule(),
            rel="pipeline/mod.py",
        )
        assert fired == []

    def test_s_stage_ignores_non_pipeline_files(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            'def run(timer):\n    with timer.stage("warpdrive"):\n        pass\n',
            StageNameRule(),
            rel="src/other.py",
        )
        assert fired == []

    def test_s_doc_ref_fires_on_bad_module_and_link(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "Uses `repro.nonexistent.widget` — see [more](missing.md).\n"
        )
        result = run_lint(tmp_path, targets=[], rules=[DocReferenceRule()])
        assert [f.rule for f in result.findings] == ["S-DOC-REF", "S-DOC-REF"]
        messages = " / ".join(f.message for f in result.findings)
        assert "repro.nonexistent.widget" in messages
        assert "missing.md" in messages

    def test_s_doc_ref_near_miss_real_references(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "x.md").write_text(
            "Uses `repro.bench` and [itself](x.md).\n\n"
            "```console\n$ python -m repro audit --json\n```\n"
        )
        result = run_lint(tmp_path, targets=[], rules=[DocReferenceRule()])
        assert result.findings == []

    def test_s_doc_ref_fires_on_unparseable_snippet(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "```console\n$ python -m repro audit --no-such-flag\n```\n"
        )
        result = run_lint(tmp_path, targets=[], rules=[DocReferenceRule()])
        assert [f.rule for f in result.findings] == ["S-DOC-REF"]

    def test_s_cli_doc_fires_on_unknown_section(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "cli.md").write_text("## `repro warp`\n")
        result = run_lint(tmp_path, targets=[], rules=[CliReferenceRule()])
        rules = {f.rule for f in result.findings}
        assert rules == {"S-CLI-DOC"}
        assert any(
            "unknown command" in f.message for f in result.findings
        )

    def test_s_cli_doc_fires_when_missing(self, tmp_path):
        result = run_lint(tmp_path, targets=[], rules=[CliReferenceRule()])
        assert [f.rule for f in result.findings] == ["S-CLI-DOC"]

    def test_s_profile_doc_fires_on_undocumented_profile(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "cli.md").write_text("# CLI\n\nnothing here\n")
        result = run_lint(tmp_path, targets=[], rules=[NamedProfileRule()])
        assert result.findings
        assert {f.rule for f in result.findings} == {"S-PROFILE-DOC"}
        # every named profile must be reported missing
        from repro.faults import FAULT_PROFILES
        from repro.services.generator import LOAD_PROFILES
        from repro.stream.impair import IMPAIRMENT_PROFILES

        expected = (
            len(LOAD_PROFILES)
            + len(IMPAIRMENT_PROFILES)
            + len(FAULT_PROFILES)
        )
        assert len(result.findings) == expected

    def test_s_bench_doc_fires_when_missing(self, tmp_path):
        result = run_lint(tmp_path, targets=[], rules=[BenchSchemaRule()])
        assert [f.rule for f in result.findings] == ["S-BENCH-DOC"]

    def test_s_metric_doc_fires_when_missing(self, tmp_path):
        result = run_lint(tmp_path, targets=[], rules=[MetricCatalogRule()])
        assert [f.rule for f in result.findings] == ["S-METRIC-DOC"]
        assert "missing" in result.findings[0].message

    def test_s_metric_doc_fires_on_undocumented_metric(self, tmp_path):
        from repro.obs.catalog import CATALOG

        names = sorted(CATALOG)
        dropped = names[0]
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "observability.md").write_text(
            "\n".join(f"`{name}`" for name in names[1:]) + "\n"
        )
        result = run_lint(tmp_path, targets=[], rules=[MetricCatalogRule()])
        assert [f.rule for f in result.findings] == ["S-METRIC-DOC"]
        assert dropped in result.findings[0].message

    def test_s_metric_doc_near_miss_all_documented(self, tmp_path):
        from repro.obs.catalog import CATALOG

        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "observability.md").write_text(
            "\n".join(f"`{name}`" for name in sorted(CATALOG)) + "\n"
        )
        result = run_lint(tmp_path, targets=[], rules=[MetricCatalogRule()])
        assert result.findings == []

    def test_s_rules_clean_on_real_repo(self):
        result = run_lint(REPO_ROOT, targets=[], rules=list(doc_rules()))
        assert result.findings == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


class TestSuppressions:
    def test_inline_suppression_with_reason(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=D-NOW — test seam
            """,
            WallClockRule(),
        )
        assert fired == []

    def test_standalone_suppression_covers_next_line(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                # repro-lint: disable=D-NOW — test seam
                return time.time()
            """,
            WallClockRule(),
        )
        assert fired == []

    def test_suppression_without_reason_is_an_error(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()  # repro-lint: disable=D-NOW
            """,
            WallClockRule(),
        )
        # The D-NOW finding stays AND the malformed marker is flagged.
        assert sorted(fired) == ["D-NOW", "L-SUPPRESS"]

    def test_unknown_rule_in_suppression_is_an_error(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            "x = 1  # repro-lint: disable=NO-SUCH-RULE — because\n",
            WallClockRule(),
        )
        assert fired == ["L-SUPPRESS"]

    def test_unused_suppression_is_an_error(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            "x = 1  # repro-lint: disable=D-NOW — nothing to excuse\n",
            WallClockRule(),
        )
        assert fired == ["L-UNUSED"]

    def test_marker_inside_string_is_not_a_suppression(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            's = "# repro-lint: disable=D-NOW — documentation example"\n',
            WallClockRule(),
        )
        assert fired == []

    def test_one_comment_can_disable_several_rules(self, tmp_path):
        fired, _ = lint_snippet(
            tmp_path,
            """
            import time

            def f(bucket=[]):  # repro-lint: disable=X-MUTDEF,D-NOW — fixture
                bucket.append(time.time())
            """,
            MutableDefaultRule(),
        )
        # X-MUTDEF is suppressed; D-NOW is a known registry rule even
        # though it is not enabled here, so the comment is legal and
        # not flagged unused (its unused-ness is undecidable).
        assert fired == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


class TestBaseline:
    def _violating_file(self, tmp_path):
        path = tmp_path / "src" / "mod.py"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("import time\nstamp = time.time()\n")
        return path

    def test_round_trip(self, tmp_path):
        path = self._violating_file(tmp_path)
        rule = WallClockRule()
        first = run_lint(tmp_path, targets=[path], rules=[rule])
        assert not first.ok

        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, first.findings)
        entries = load_baseline(baseline_path)
        assert len(entries) == 1 and entries[0]["rule"] == "D-NOW"

        second = run_lint(
            tmp_path, targets=[path], rules=[rule], baseline_path=baseline_path
        )
        assert second.ok
        assert [f.rule for f in second.baselined] == ["D-NOW"]

        # Removing the baseline re-arms the finding.
        third = run_lint(tmp_path, targets=[path], rules=[rule])
        assert not third.ok

    def test_baseline_is_line_insensitive(self, tmp_path):
        path = self._violating_file(tmp_path)
        rule = WallClockRule()
        first = run_lint(tmp_path, targets=[path], rules=[rule])
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, first.findings)

        # Shift the violation down; the baseline still covers it.
        path.write_text("import time\n\n\nstamp = time.time()\n")
        shifted = run_lint(
            tmp_path, targets=[path], rules=[rule], baseline_path=baseline_path
        )
        assert shifted.ok and len(shifted.baselined) == 1

    def test_stale_entries_are_reported_not_fatal(self, tmp_path):
        path = self._violating_file(tmp_path)
        rule = WallClockRule()
        first = run_lint(tmp_path, targets=[path], rules=[rule])
        baseline_path = tmp_path / "lint-baseline.json"
        write_baseline(baseline_path, first.findings)

        path.write_text("import time\nstamp = time.perf_counter()\n")
        fixed = run_lint(
            tmp_path, targets=[path], rules=[rule], baseline_path=baseline_path
        )
        assert fixed.ok
        assert len(fixed.stale_baseline) == 1

    def test_corrupt_baseline_is_a_usage_error(self, tmp_path):
        path = self._violating_file(tmp_path)
        baseline_path = tmp_path / "lint-baseline.json"
        baseline_path.write_text("{not json")
        with pytest.raises(Exception):
            run_lint(
                tmp_path,
                targets=[path],
                rules=[WallClockRule()],
                baseline_path=baseline_path,
            )


# ----------------------------------------------------------------------
# Self-lint: the repository must be clean
# ----------------------------------------------------------------------


class TestSelfLint:
    def test_repo_lints_clean(self):
        result = run_lint(
            REPO_ROOT, baseline_path=REPO_ROOT / "lint-baseline.json"
        )
        assert result.findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in result.findings
        )
        assert result.files_scanned > 100

    def test_committed_baseline_is_empty(self):
        entries = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert entries == []

    def test_removing_a_real_suppression_fails_the_lint(self, tmp_path):
        """The bench.py wall-clock seam is load-bearing: strip its
        suppression comment and D-NOW must fire on the copy."""
        source = (REPO_ROOT / "src" / "repro" / "bench.py").read_text()
        assert "# repro-lint: disable=D-NOW" in source
        stripped = source.replace(
            "  # repro-lint: disable=D-NOW — BENCH entries are dated "
            "historical records; this seam is the single sanctioned "
            "call site",
            "",
        )
        assert stripped != source
        path = tmp_path / "src" / "bench.py"
        path.parent.mkdir(parents=True)
        path.write_text(stripped)
        result = run_lint(tmp_path, targets=[path], rules=[WallClockRule()])
        assert [f.rule for f in result.findings] == ["D-NOW"]


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestLintCli:
    def test_module_entry_clean_repo(self, capsys):
        code = lint_main(["--root", str(REPO_ROOT)])
        assert code == 0
        assert "lint ok" in capsys.readouterr().out

    def test_repro_subcommand(self, capsys):
        code = repro_main(["lint", "--root", str(REPO_ROOT), "--select", "S-STAGE"])
        assert code == 0

    def test_findings_exit_one_and_json(self, tmp_path, capsys):
        path = tmp_path / "src" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("import time\nstamp = time.time()\n")
        code = lint_main(
            ["--root", str(tmp_path), "--format", "json", "--select", "D-NOW",
             str(path)]
        )
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        assert document["ok"] is False
        assert document["findings"][0]["rule"] == "D-NOW"

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        code = lint_main(["--root", str(tmp_path), "--select", "D-WARP"])
        assert code == 2

    def test_missing_target_exits_two(self, tmp_path, capsys):
        code = lint_main(["--root", str(tmp_path), str(tmp_path / "nope")])
        assert code == 2

    def test_list_rules(self, capsys):
        code = lint_main(["--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        path = tmp_path / "src" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text("import time\nstamp = time.time()\n")
        args = ["--root", str(tmp_path), "--select", "D-NOW", str(path)]
        assert lint_main(args + ["--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        assert lint_main(args) == 0  # baselined → clean
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_render_text_summary_shapes(self):
        from repro.lint.engine import LintResult

        finding = Finding(
            rule="D-NOW", path="x.py", line=1, col=1, message="m", hint="h"
        )
        text = render_text(
            LintResult(
                findings=[finding],
                baselined=[],
                stale_baseline=[],
                files_scanned=1,
            )
        )
        assert "x.py:1:1: D-NOW [error] m" in text
        assert "hint: h" in text
        clean = render_json(
            LintResult(
                findings=[], baselined=[], stale_baseline=[], files_scanned=1
            )
        )
        assert json.loads(clean)["ok"] is True


class TestCheckDocsWrapper:
    def test_wrapper_runs_clean(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert completed.returncode == 0, completed.stderr
        assert "docs ok" in completed.stdout
