"""Unit tests for payload key/value synthesis and the key registry."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes.majority import MajorityVoteClassifier
from repro.ontology.coppa_ccpa import OBSERVED_LEVEL3
from repro.ontology.nodes import Level3
from repro.services.payloads import BASE_KEYS, STABLE_KEYS, KeyRegistry, PayloadFactory


class TestRegistry:
    def test_register_and_lookup(self):
        registry = KeyRegistry()
        registry.register("email", Level3.CONTACT_INFORMATION)
        assert registry.truth["email"] is Level3.CONTACT_INFORMATION

    def test_conflicting_registration_rejected(self):
        registry = KeyRegistry()
        registry.register("email", Level3.CONTACT_INFORMATION)
        with pytest.raises(ValueError):
            registry.register("email", Level3.NAME)

    def test_re_registration_same_label_ok(self):
        registry = KeyRegistry()
        registry.register("email", Level3.CONTACT_INFORMATION)
        registry.register("email", Level3.CONTACT_INFORMATION)

    def test_opaque_tracking(self):
        registry = KeyRegistry()
        registry.register("xq3", Level3.ALIASES, opaque=True)
        assert "xq3" in registry.opaque


class TestFactory:
    @pytest.fixture(scope="class")
    def factory(self):
        return PayloadFactory()

    def test_registry_scale_matches_paper(self, factory):
        """Paper §1: 3,968 unique data types.  The registry is the key
        population; observed-in-traffic lands close to it."""
        assert 3_500 <= len(factory.registry) <= 5_000

    def test_deterministic(self):
        a, b = PayloadFactory(seed=7), PayloadFactory(seed=7)
        assert a.registry.truth == b.registry.truth

    def test_different_seed_same_truth_semantics(self):
        """Key shapes may differ by seed but labels never conflict."""
        factory = PayloadFactory(seed=99)
        for key, label in list(factory.registry.truth.items())[:50]:
            assert isinstance(label, Level3)

    def test_every_base_key_registered(self, factory):
        for label, keys in BASE_KEYS.items():
            for key in keys:
                assert factory.registry.truth[key] is label

    def test_opaque_fraction_reasonable(self, factory):
        fraction = len(factory.registry.opaque) / len(factory.registry)
        assert 0.03 < fraction < 0.15

    def test_pools_cover_all_categories(self, factory):
        for label in BASE_KEYS:
            assert factory.pool(label)

    def test_pick_keys_from_pool(self, factory):
        rng = random.Random(1)
        picks = factory.pick_keys(Level3.ALIASES, rng, count=5)
        pool = set(factory.pool(Level3.ALIASES))
        assert len(picks) == 5
        assert all(p in pool for p in picks)

    def test_avoid_opaque(self, factory):
        rng = random.Random(2)
        for _ in range(50):
            (pick,) = factory.pick_keys(Level3.ALIASES, rng, avoid_opaque=True)
            assert pick not in factory.registry.opaque

    def test_canonical_picks_are_stable_keys(self, factory):
        rng = random.Random(3)
        for _ in range(20):
            (pick,) = factory.pick_keys(Level3.AGE, rng, canonical=True)
            assert pick in STABLE_KEYS[Level3.AGE]

    def test_keys_for_categories(self, factory):
        keys = factory.keys_for_categories({Level3.AGE})
        assert keys
        assert all(factory.registry.truth[k] is Level3.AGE for k in keys)

    @given(st.sampled_from(sorted(BASE_KEYS, key=lambda l: l.value)))
    @settings(max_examples=20, deadline=None)
    def test_values_generated_for_every_category(self, label):
        factory = PayloadFactory()
        rng = random.Random(0)
        value = factory.make_value(label, rng)
        assert value is not None


class TestStableKeys:
    """The coverage-critical key contract: every stable key must stay
    correctly and confidently classified by the default pipeline
    classifier.  If this test fails after a classifier change, the
    Table 4 / Figure 3 / Figure 4 exactness guarantees are void."""

    @pytest.fixture(scope="class")
    def classifier(self):
        return MajorityVoteClassifier(confidence_mode="avg")

    def test_stable_keys_cover_all_observed_categories(self):
        assert set(STABLE_KEYS) == set(OBSERVED_LEVEL3)

    def test_every_stable_key_classifies_correctly(self, classifier):
        failures = []
        for label, keys in STABLE_KEYS.items():
            for key in keys:
                verdict = classifier.classify(key)
                if verdict.label is not label or verdict.confidence < 0.8:
                    failures.append((key, label.value, verdict.label, verdict.confidence))
        assert not failures, failures

    def test_stable_keys_are_base_keys(self):
        for label, keys in STABLE_KEYS.items():
            for key in keys:
                assert key in BASE_KEYS[label]
