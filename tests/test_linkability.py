"""Unit tests for the linkability analysis (§4.2)."""

import pytest

from repro.destinations.party import PartyLabel
from repro.flows.dataflow import FlowObservation, FlowTable
from repro.linkability.alluvial import AlluvialEdge, alluvial_edges, top_ats_organizations
from repro.linkability.analysis import (
    analyze_linkability,
    destination_census,
    is_linkable,
    linkability_matrix,
    most_common_linkable_set,
)
from repro.model import Platform, TraceColumn
from repro.ontology.nodes import Level3


def add(table, level3, fqdn, party=PartyLabel.THIRD_PARTY_ATS, column=TraceColumn.CHILD):
    table.add(
        FlowObservation(
            service="svc",
            column=column,
            platform=Platform.WEB,
            level3=level3,
            fqdn=fqdn,
            esld=fqdn.split(".", 1)[-1],
            party=party,
            raw_key="k",
        )
    )


class TestIsLinkable:
    def test_identifier_plus_pi(self):
        assert is_linkable({Level3.ALIASES, Level3.LANGUAGE})
        assert is_linkable({Level3.DEVICE_INFORMATION, Level3.APP_OR_SERVICE_USAGE})

    def test_identifier_only_not_linkable(self):
        assert not is_linkable({Level3.ALIASES, Level3.DEVICE_HARDWARE_IDENTIFIERS})

    def test_pi_only_not_linkable(self):
        assert not is_linkable(
            {Level3.LANGUAGE, Level3.NETWORK_CONNECTION_INFORMATION}
        )

    def test_empty_not_linkable(self):
        assert not is_linkable(set())


class TestAnalysis:
    def test_counts_and_largest_set(self):
        table = FlowTable()
        # linkable partner with 3 types
        add(table, Level3.ALIASES, "a.ats.example")
        add(table, Level3.LANGUAGE, "a.ats.example")
        add(table, Level3.APP_OR_SERVICE_USAGE, "a.ats.example")
        # linkable partner with 2 types
        add(table, Level3.DEVICE_INFORMATION, "b.ats.example")
        add(table, Level3.LANGUAGE, "b.ats.example")
        # non-linkable beacon (PI only)
        add(table, Level3.NETWORK_CONNECTION_INFORMATION, "c.ats.example")
        result = analyze_linkability(table, "svc", TraceColumn.CHILD)
        assert result.linkable_third_parties == 2
        assert result.largest_set_size == 3
        assert result.largest_set_fqdn == "a.ats.example"
        assert set(result.linkable_fqdns) == {"a.ats.example", "b.ats.example"}

    def test_first_party_never_counts(self):
        table = FlowTable()
        add(table, Level3.ALIASES, "api.svc.example", party=PartyLabel.FIRST_PARTY)
        add(table, Level3.LANGUAGE, "api.svc.example", party=PartyLabel.FIRST_PARTY)
        result = analyze_linkability(table, "svc", TraceColumn.CHILD)
        assert result.linkable_third_parties == 0

    def test_non_ats_third_party_counts(self):
        """Figure 3 includes both ATS and non-ATS third parties."""
        table = FlowTable()
        add(table, Level3.ALIASES, "cdn.example", party=PartyLabel.THIRD_PARTY)
        add(table, Level3.LANGUAGE, "cdn.example", party=PartyLabel.THIRD_PARTY)
        result = analyze_linkability(table, "svc", TraceColumn.CHILD)
        assert result.linkable_third_parties == 1

    def test_columns_kept_separate(self):
        table = FlowTable()
        add(table, Level3.ALIASES, "a.ats.example", column=TraceColumn.CHILD)
        add(table, Level3.LANGUAGE, "a.ats.example", column=TraceColumn.ADULT)
        # Neither column alone has both sides.
        assert analyze_linkability(table, "svc", TraceColumn.CHILD).linkable_third_parties == 0
        assert analyze_linkability(table, "svc", TraceColumn.ADULT).linkable_third_parties == 0

    def test_matrix_covers_all_columns(self):
        table = FlowTable()
        add(table, Level3.ALIASES, "a.ats.example")
        matrix = linkability_matrix(table)
        assert set(matrix) == {("svc", column) for column in TraceColumn}


class TestMostCommonSet:
    def test_most_common(self):
        table = FlowTable()
        for fqdn in ("a.x.example", "b.x.example", "c.x.example"):
            add(table, Level3.ALIASES, fqdn)
            add(table, Level3.LANGUAGE, fqdn)
        add(table, Level3.DEVICE_INFORMATION, "d.x.example")
        add(table, Level3.AGE, "d.x.example")
        winner, count = most_common_linkable_set(table)
        assert winner == frozenset({Level3.ALIASES, Level3.LANGUAGE})
        assert count == 3

    def test_empty_table(self):
        winner, count = most_common_linkable_set(FlowTable())
        assert winner == frozenset()
        assert count == 0


class TestCensus:
    def test_counts_by_party(self):
        table = FlowTable()
        add(table, Level3.ALIASES, "ads.x.example", party=PartyLabel.THIRD_PARTY_ATS)
        add(table, Level3.NAME, "api.svc.example", party=PartyLabel.FIRST_PARTY)
        contacted = {"svc": {"ads.x.example", "api.svc.example", "cdn.y.example"}}

        def owner_of(service, fqdn):
            return {"ads.x.example": "AdCo", "api.svc.example": "SvcCo"}.get(fqdn)

        census = destination_census(table, contacted, owner_of)
        assert census.third_party_ats == 1
        assert census.first_party == 1
        assert census.organizations == 2
        assert census.unknown_owner_domains == 1


class TestAlluvial:
    def test_edges_and_ranking(self):
        table = FlowTable()
        for _ in range(3):
            add(table, Level3.ALIASES, "p.pubm.example")
            add(table, Level3.LANGUAGE, "p.pubm.example")
        add(table, Level3.ALIASES, "q.med.example")
        add(table, Level3.LANGUAGE, "q.med.example")

        def owner_of(service, fqdn):
            return "PubMatic" if "pubm" in fqdn else "MediaMath"

        edges = alluvial_edges(table, owner_of)
        child_edges = [e for e in edges if e.column is TraceColumn.CHILD]
        assert {e.organization for e in child_edges} == {"PubMatic", "MediaMath"}
        ranking = top_ats_organizations(edges)
        assert ranking[0][0] == "PubMatic"
        assert ranking[0][1] > ranking[1][1]

    def test_non_linkable_ats_excluded(self):
        table = FlowTable()
        add(table, Level3.NETWORK_CONNECTION_INFORMATION, "beacon.x.example")
        edges = alluvial_edges(table, lambda s, f: "X")
        assert edges == []

    def test_unknown_owner_grouped(self):
        table = FlowTable()
        add(table, Level3.ALIASES, "m.x.example")
        add(table, Level3.LANGUAGE, "m.x.example")
        edges = alluvial_edges(table, lambda s, f: None)
        assert edges[0].organization == "(unknown)"
