"""Tests for the seeded network-impairment injector."""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import PacketError, parse_tcp_segment
from repro.net.pcap import PcapFile, PcapPacket
from repro.net.tcp import FlowId, TcpReassembler, segment_request
from repro.services.generator import CorpusConfig
from repro.stream.impair import (
    IMPAIRMENT_PROFILES,
    ImpairmentInjector,
    ImpairmentProfile,
    impair_pcap,
    impairment_profile,
    trace_impair_seed,
)

FLOW_A = FlowId(client_ip="10.0.0.1", client_port=40000, server_ip="34.0.0.1", server_port=443)
FLOW_B = FlowId(client_ip="10.0.0.1", client_port=40001, server_ip="34.0.0.2", server_port=443)


def wire_packets(payloads: dict[FlowId, bytes]) -> list[tuple[float, bytes]]:
    """Encode one request per flow into timestamped wire packets."""
    packets = []
    base = 0.0
    for flow, payload in payloads.items():
        for frame in segment_request(payload, flow, timestamp=base):
            packets.append((frame.timestamp, frame.to_bytes()))
        base += 1.0
    packets.sort(key=lambda item: item[0])
    return packets


def reassemble(packets) -> dict[str, tuple[bytes, bool]]:
    reassembler = TcpReassembler()
    for timestamp, data in packets:
        try:
            segment = parse_tcp_segment(data, timestamp=timestamp)
        # repro-lint: disable=X-SWALLOW — impairment can corrupt frames on purpose; undecodable ones drop like the real pipeline drops them
        except PacketError:
            continue
        reassembler.add_segment(segment)
    return {
        str(flow.flow): (flow.data, flow.complete) for flow in reassembler.flows()
    }


class TestProfiles:
    def test_known_profiles_resolve(self):
        for name in IMPAIRMENT_PROFILES:
            assert impairment_profile(name).name == name

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown impairment profile"):
            impairment_profile("catastrophic")

    def test_recoverable_classification(self):
        assert impairment_profile("reorder").recoverable
        assert impairment_profile("duplicate").recoverable
        assert impairment_profile("reorder-dup").recoverable
        for name in ("lossy", "jittery", "fragmented", "chaos"):
            assert not impairment_profile(name).recoverable

    def test_corpus_config_validates_impair(self):
        with pytest.raises(ValueError, match="unknown impairment profile"):
            CorpusConfig(impair="nope")
        assert CorpusConfig(impair="reorder").impair == "reorder"


class TestDeterminism:
    def test_same_seed_same_output(self):
        packets = wire_packets({FLOW_A: b"x" * 9000, FLOW_B: b"y" * 9000})
        profile = impairment_profile("chaos")
        first = list(ImpairmentInjector(profile, 42).apply(packets))
        second = list(ImpairmentInjector(profile, 42).apply(packets))
        assert first == second

    def test_different_seed_differs(self):
        packets = wire_packets({FLOW_A: b"x" * 9000, FLOW_B: b"y" * 9000})
        profile = impairment_profile("reorder")
        first = list(ImpairmentInjector(profile, 1).apply(packets))
        second = list(ImpairmentInjector(profile, 2).apply(packets))
        assert first != second

    def test_clean_profile_is_identity(self):
        packets = wire_packets({FLOW_A: b"x" * 5000})
        out = list(ImpairmentInjector(impairment_profile("clean"), 7).apply(packets))
        assert out == [(ts, bytes(data)) for ts, data in packets]

    def test_trace_impair_seed_stable(self):
        assert trace_impair_seed(7, "a") == trace_impair_seed(7, "a")
        assert trace_impair_seed(7, "a") != trace_impair_seed(8, "a")
        assert trace_impair_seed(7, "a") != trace_impair_seed(7, "b")


class TestRecoverability:
    """Satellite guarantee: reassembly is invariant under seeded
    reorder/duplication — the injector's recoverable class really is
    reassembler-level noise."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(0, 2**31),
        st.sampled_from(["reorder", "duplicate", "reorder-dup"]),
        st.integers(1, 12000),
    )
    def test_reassembly_invariant(self, seed, profile_name, size):
        payloads = {FLOW_A: bytes(range(256)) * (size // 256 + 1), FLOW_B: b"q" * size}
        packets = wire_packets(payloads)
        clean = reassemble(packets)
        impaired = reassemble(
            ImpairmentInjector(impairment_profile(profile_name), seed).apply(packets)
        )
        assert impaired == clean
        for flow, payload in payloads.items():
            data, complete = impaired[str(flow)]
            assert data == payload
            assert complete

    def test_drop_loses_data(self):
        packets = wire_packets({FLOW_A: b"z" * 50000})
        profile = ImpairmentProfile("heavy-loss", drop=0.5)
        impaired = reassemble(ImpairmentInjector(profile, 3).apply(packets))
        clean = reassemble(packets)
        assert impaired != clean

    def test_fragmented_packets_rejected_by_decoder(self):
        packets = wire_packets({FLOW_A: b"f" * 4000})
        profile = ImpairmentProfile("frag-all", fragment=1.0)
        out = list(ImpairmentInjector(profile, 5).apply(packets))
        assert len(out) > len(packets)  # fragments multiplied the records
        fragment_rejected = 0
        for _, data in out:
            try:
                parse_tcp_segment(data)
            except PacketError as exc:
                if "fragment" in str(exc):
                    fragment_rejected += 1
        # Both halves of a fragmented packet carry fragment fields, and
        # the TCP-only decoder (no IP reassembly) rejects each.
        assert fragment_rejected >= 2
        # The reassembler sees holes where fragmented segments fell out.
        impaired = reassemble(out)
        payload = impaired.get(str(FLOW_A), (b"", False))
        assert payload != (b"f" * 4000, True)

    def test_jitter_moves_timestamps_only(self):
        packets = wire_packets({FLOW_A: b"j" * 3000})
        profile = impairment_profile("jittery")
        out = list(ImpairmentInjector(profile, 9).apply(packets))
        assert [data for _, data in out] == [bytes(data) for _, data in packets]
        assert [ts for ts, _ in out] != [ts for ts, _ in packets]


class TestImpairPcap:
    def make_pcap(self) -> PcapFile:
        pcap = PcapFile()
        for timestamp, data in wire_packets({FLOW_A: b"p" * 6000}):
            pcap.append(PcapPacket(timestamp=timestamp, data=data))
        return pcap

    def test_clean_returns_same_object(self):
        pcap = self.make_pcap()
        assert impair_pcap(pcap, impairment_profile("clean"), 1) is pcap

    def test_round_trips_through_wire_format(self):
        pcap = self.make_pcap()
        impaired = impair_pcap(pcap, impairment_profile("reorder-dup"), 11)
        blob = impaired.to_bytes()
        assert PcapFile.from_bytes(blob).to_bytes() == blob

    def test_duplicate_grows_capture(self):
        pcap = self.make_pcap()
        impaired = impair_pcap(pcap, impairment_profile("duplicate"), 13)
        assert len(impaired) > len(pcap)


class TestManifestPlumbing:
    def test_manifest_records_impair(self, tmp_path):
        from repro.pipeline.engine import generate_corpus_artifacts
        from repro.pipeline.replay import ReplayCorpus, read_manifest

        config = CorpusConfig(
            scale=0.004, profile="light", services=("tiktok",), impair="reorder"
        )
        generate_corpus_artifacts(config, tmp_path)
        manifest = read_manifest(tmp_path)
        assert manifest["config"]["impair"] == "reorder"
        corpus = ReplayCorpus.scan(tmp_path)
        from repro.pipeline.replay import replay_config

        resolved = replay_config(corpus)
        assert resolved.impair == "reorder"

    def test_clean_manifest_omits_impair(self, tmp_path):
        from repro.pipeline.engine import generate_corpus_artifacts
        from repro.pipeline.replay import read_manifest

        config = CorpusConfig(scale=0.004, profile="light", services=("tiktok",))
        generate_corpus_artifacts(config, tmp_path)
        assert "impair" not in read_manifest(tmp_path)["config"]

    def test_mixing_impair_in_one_directory_rejected(self, tmp_path):
        from repro.pipeline.engine import generate_corpus_artifacts
        from repro.pipeline.replay import ReplayError

        clean = CorpusConfig(scale=0.004, profile="light", services=("tiktok",))
        generate_corpus_artifacts(clean, tmp_path)
        impaired = dataclasses.replace(clean, impair="reorder")
        with pytest.raises(ReplayError, match="impair"):
            generate_corpus_artifacts(impaired, tmp_path)
