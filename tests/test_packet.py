"""Unit and property tests for the Ethernet/IP/TCP codecs."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import (
    EthernetHeader,
    Frame,
    Ipv4Header,
    PacketError,
    TcpHeader,
    internet_checksum,
    ipv4_to_bytes,
    ipv4_to_str,
    mac_to_bytes,
    mac_to_str,
)


class TestAddressCodecs:
    def test_ipv4_round_trip(self):
        assert ipv4_to_str(ipv4_to_bytes("10.215.173.1")) == "10.215.173.1"

    @pytest.mark.parametrize("bad", ["1.2.3", "a.b.c.d", "1.2.3.4.5"])
    def test_bad_ipv4(self, bad):
        with pytest.raises(PacketError):
            ipv4_to_bytes(bad)

    def test_mac_round_trip(self):
        assert mac_to_str(mac_to_bytes("aa:bb:cc:00:11:22")) == "aa:bb:cc:00:11:22"

    @given(st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_ipv4_round_trip_property(self, octets):
        text = ".".join(map(str, octets))
        assert ipv4_to_str(ipv4_to_bytes(text)) == text


class TestChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example header.
        data = bytes.fromhex("45000073000040004011 0000 c0a80001c0a800c7".replace(" ", ""))
        checksum = internet_checksum(data)
        verify = data[:10] + struct.pack("!H", checksum) + data[12:]
        assert internet_checksum(verify) == 0

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    @given(st.binary(min_size=0, max_size=300))
    def test_checksum_verifies_to_zero(self, data):
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert internet_checksum(data + struct.pack("!H", checksum)) == 0


class TestLayers:
    def test_ethernet_round_trip(self):
        header = EthernetHeader()
        parsed, rest = EthernetHeader.from_bytes(header.to_bytes() + b"payload")
        assert parsed == header
        assert rest == b"payload"

    def test_ethernet_truncated(self):
        with pytest.raises(PacketError):
            EthernetHeader.from_bytes(b"\x00" * 5)

    def test_ipv4_round_trip(self):
        header = Ipv4Header(src="1.2.3.4", dst="5.6.7.8", identification=42)
        payload = b"x" * 30
        parsed, body = Ipv4Header.from_bytes(header.to_bytes(len(payload)) + payload)
        assert parsed.src == "1.2.3.4"
        assert parsed.dst == "5.6.7.8"
        assert parsed.identification == 42
        assert body == payload

    def test_ipv4_checksum_validated(self):
        raw = bytearray(Ipv4Header(src="1.2.3.4", dst="5.6.7.8").to_bytes(0))
        raw[8] ^= 0xFF  # corrupt TTL
        with pytest.raises(PacketError):
            Ipv4Header.from_bytes(bytes(raw))

    def test_tcp_round_trip(self):
        header = TcpHeader(src_port=40000, dst_port=443, seq=1000, flags=0x18)
        wire = header.to_bytes(b"data", "1.1.1.1", "2.2.2.2")
        parsed, payload = TcpHeader.from_bytes(wire)
        assert parsed.src_port == 40000
        assert parsed.dst_port == 443
        assert parsed.seq == 1000
        assert payload == b"data"


class TestFrame:
    def make_frame(self, payload=b"hello") -> Frame:
        return Frame(
            timestamp=1.5,
            eth=EthernetHeader(),
            ip=Ipv4Header(src="10.0.0.1", dst="34.1.2.3"),
            tcp=TcpHeader(src_port=40001, dst_port=443, seq=7),
            payload=payload,
        )

    def test_round_trip(self):
        frame = self.make_frame()
        parsed = Frame.from_bytes(frame.to_bytes(), timestamp=1.5)
        assert parsed.ip.src == "10.0.0.1"
        assert parsed.tcp.seq == 7
        assert parsed.payload == b"hello"
        assert parsed.flow_key == ("10.0.0.1", 40001, "34.1.2.3", 443)

    @given(st.binary(max_size=500))
    def test_payload_round_trip_property(self, payload):
        frame = self.make_frame(payload)
        assert Frame.from_bytes(frame.to_bytes()).payload == payload

    def test_non_ip_ethertype_rejected(self):
        frame = self.make_frame()
        raw = bytearray(frame.to_bytes())
        raw[12:14] = b"\x08\x06"  # ARP
        with pytest.raises(PacketError):
            Frame.from_bytes(bytes(raw))

    def test_non_tcp_protocol_rejected(self):
        wire = (
            EthernetHeader().to_bytes()
            + Ipv4Header(src="1.1.1.1", dst="2.2.2.2", protocol=17).to_bytes(0)
        )
        with pytest.raises(PacketError):
            Frame.from_bytes(wire)
