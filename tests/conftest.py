"""Shared fixtures.

The session-scoped ``full_result`` fixture runs the whole six-service
pipeline once (at small volume scale — structural results like the
Table 4 grid and Figures 3/4 are scale-independent) and is shared by
every integration test.
"""

from __future__ import annotations

import pytest

from repro import CorpusConfig, DiffAudit
from repro.services.payloads import PayloadFactory


@pytest.fixture(scope="session")
def payload_factory() -> PayloadFactory:
    return PayloadFactory()


@pytest.fixture(scope="session")
def full_result():
    """One full six-service DiffAudit run (shared, ~6 s)."""
    return DiffAudit(CorpusConfig(scale=0.01)).run()


@pytest.fixture(scope="session")
def two_service_result():
    """A faster two-service run for cheaper integration checks."""
    return DiffAudit(CorpusConfig(scale=0.01, services=("tiktok", "youtube"))).run()
