"""Unit tests for raw data type extraction."""

import json

from hypothesis import given, strategies as st

from repro.datatypes.extract import extract_from_request, extract_keys
from repro.net.http import Header, HttpRequest
from repro.net.url import parse_url


def make_request(body=None, url="https://x.example.com/p", headers=None):
    raw = json.dumps(body).encode() if body is not None else b""
    header_list = [Header("Content-Type", "application/json")] if body is not None else []
    header_list.extend(headers or [])
    return HttpRequest(method="POST", url=parse_url(url), headers=header_list, body=raw)


class TestBodyExtraction:
    def test_flat_object(self):
        items = extract_from_request(make_request({"email": "a@b.c", "age": 12}))
        assert {(i.key, i.value) for i in items} == {("email", "a@b.c"), ("age", "12")}

    def test_nested_objects_contribute_all_keys(self):
        request = make_request({"device": {"os": "android", "ids": {"gaid": "x"}}})
        keys = {i.key for i in extract_from_request(request)}
        assert keys == {"device", "os", "ids", "gaid"}

    def test_arrays_of_objects(self):
        request = make_request({"events": [{"name": "click"}, {"name": "view"}]})
        keys = {i.key for i in extract_from_request(request)}
        assert keys == {"events", "name"}

    def test_value_rendering(self):
        request = make_request({"flag": True, "nothing": None, "n": 1.5})
        values = {i.key: i.value for i in extract_from_request(request)}
        assert values == {"flag": "true", "nothing": "", "n": "1.5"}

    def test_malformed_json_ignored(self):
        request = HttpRequest(
            method="POST",
            url=parse_url("https://x.example.com/"),
            headers=[Header("Content-Type", "application/json")],
            body=b"{truncated",
        )
        assert extract_from_request(request) == []

    def test_non_json_body_ignored(self):
        request = HttpRequest(
            method="POST",
            url=parse_url("https://x.example.com/"),
            headers=[Header("Content-Type", "application/octet-stream")],
            body=b"\x00\x01",
        )
        assert extract_from_request(request) == []


class TestQueryAndCookieExtraction:
    def test_query_keys(self):
        request = make_request(url="https://x.example.com/p?uid=1&lang=en")
        items = extract_from_request(request)
        assert {(i.key, i.source) for i in items} == {
            ("uid", "query"),
            ("lang", "query"),
        }

    def test_cookie_keys(self):
        request = make_request(headers=[Header("Cookie", "session=abc; _ga=1.2")])
        items = extract_from_request(request)
        cookie_keys = {i.key for i in items if i.source == "cookie"}
        assert cookie_keys == {"session", "_ga"}

    def test_all_three_sources_combined(self):
        request = make_request(
            body={"event": "x"},
            url="https://x.example.com/p?q=1",
            headers=[Header("Cookie", "sid=9")],
        )
        sources = {i.source for i in extract_from_request(request)}
        assert sources == {"body", "query", "cookie"}


class TestExtractKeys:
    def test_union_over_requests(self):
        requests = [
            make_request({"a": 1}),
            make_request({"b": 2}),
            make_request({"a": 3}),
        ]
        assert extract_keys(requests) == {"a", "b"}

    @given(
        st.dictionaries(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
            ),
            st.integers(),
            max_size=8,
        )
    )
    def test_flat_body_keys_extracted_exactly(self, body):
        request = make_request(body)
        assert {i.key for i in extract_from_request(request)} == set(body)
