"""Incremental re-audit: content-addressed units, O(delta) recompute.

Three layers of guarantees, each with its own test class:

* the **digest** (:func:`repro.pipeline.replay.unit_digest`) is a pure
  function of a unit's metadata and member-file bytes — identical
  across eager and mmap reads, independent of corpus enumeration
  order, and changed by any single-byte perturbation of any member
  file (Hypothesis pins these as properties, not examples);
* **mutation invalidation**: flipping one byte in exactly one unit's
  artifact makes the warm re-audit recompute exactly that unit
  (observed via a spy on ``process_shard``) and still produce output
  byte-identical to a cold run of the mutated corpus; bumping the
  result schema invalidates everything;
* the **unit-result store UX**: ``stats`` reports unit results,
  version-mismatch rows are pruned not served, and a corrupt payload
  row costs one recomputation and is then replaced.
"""

import dataclasses
import shutil
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

import repro.datatypes.store as store_module
import repro.pipeline.engine as engine_module
from repro import CorpusConfig, DiffAudit
from repro.datatypes.store import (
    ClassificationStore,
    store_path_for,
    unit_result_epoch,
)
from repro.capture.base import TraceMeta
from repro.model import AgeGroup, Platform, TraceKind
from repro.pipeline.engine import generate_corpus_artifacts
from repro.pipeline.replay import (
    ReplayCorpus,
    ReplayError,
    TraceUnit,
    unit_digest,
)
from repro.reporting.export import result_to_json

CONFIG = CorpusConfig(
    seed=11, scale=0.002, profile="light", services=("tiktok", "youtube")
)


def _meta(service="svc"):
    return TraceMeta(
        service=service,
        platform=Platform.MOBILE,
        kind=TraceKind.LOGGED_IN,
        age=AgeGroup.ADULT,
    )


def _mobile_unit(tmp_path, pcap=b"pcap-bytes", keylog=b"keylog-bytes"):
    pcap_path = tmp_path / "t.pcap"
    pcap_path.write_bytes(pcap)
    keylog_path = None
    if keylog is not None:
        keylog_path = tmp_path / "t.keylog"
        keylog_path.write_bytes(keylog)
    return TraceUnit(meta=_meta(), pcap=pcap_path, keylog=keylog_path)


class TestUnitDigestProperties:
    @given(
        pcap=st.binary(min_size=0, max_size=64),
        keylog=st.one_of(st.none(), st.binary(min_size=0, max_size=64)),
    )
    @settings(max_examples=25, deadline=None)
    def test_eager_and_mmap_reads_agree(self, tmp_path_factory, pcap, keylog):
        unit = _mobile_unit(
            tmp_path_factory.mktemp("digest"), pcap=pcap, keylog=keylog
        )
        assert unit_digest(unit) == unit_digest(unit, eager=True)

    @given(
        pcap=st.binary(min_size=1, max_size=64),
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_single_byte_perturbation_changes_digest(
        self, tmp_path_factory, pcap, data
    ):
        tmp = tmp_path_factory.mktemp("digest")
        unit = _mobile_unit(tmp, pcap=pcap)
        before = unit_digest(unit)
        index = data.draw(st.integers(0, len(pcap) - 1))
        flip = data.draw(st.integers(1, 255))
        mutated = bytearray(pcap)
        mutated[index] ^= flip
        unit.pcap.write_bytes(bytes(mutated))
        assert unit_digest(unit) != before

    def test_independent_of_construction_and_enumeration_order(self, tmp_path):
        generate_corpus_artifacts(CONFIG, tmp_path)
        corpus = ReplayCorpus.scan(tmp_path)
        forward = {u.meta.name: unit_digest(u) for u in corpus.units}
        # A fresh scan and reversed enumeration must address every
        # unit identically: only (metadata, bytes) enter the digest.
        rescanned = ReplayCorpus.scan(tmp_path)
        backward = {
            u.meta.name: unit_digest(u) for u in reversed(rescanned.units)
        }
        assert forward == backward
        assert len(set(forward.values())) == len(forward)  # all distinct

    def test_keylog_presence_is_part_of_the_address(self, tmp_path):
        with_keylog = _mobile_unit(tmp_path, keylog=b"")
        bare = TraceUnit(meta=_meta(), pcap=with_keylog.pcap)
        # Framing records which roles are present: an *empty* keylog
        # still addresses differently from an absent one.
        assert unit_digest(with_keylog) != unit_digest(bare)

    def test_metadata_is_part_of_the_address(self, tmp_path):
        unit = _mobile_unit(tmp_path)
        renamed = dataclasses.replace(unit, meta=_meta(service="other"))
        assert unit_digest(unit) != unit_digest(renamed)

    def test_bytes_cannot_shift_between_member_files(self, tmp_path):
        # Length framing: moving a trailing pcap byte onto the front
        # of the keylog keeps the concatenated byte stream identical
        # but must change the address.
        a = _mobile_unit(tmp_path, pcap=b"ABCX", keylog=b"YZ")
        b_dir = tmp_path / "b"
        b_dir.mkdir()
        b = _mobile_unit(b_dir, pcap=b"ABC", keylog=b"XYZ")
        assert unit_digest(a) != unit_digest(b)

    def test_unreadable_member_file_raises_replay_error(self, tmp_path):
        unit = _mobile_unit(tmp_path)
        unit.pcap.unlink()
        with pytest.raises(ReplayError, match="cannot digest"):
            unit_digest(unit)


@pytest.fixture(scope="module")
def pristine_corpus(tmp_path_factory) -> Path:
    """One generated corpus, treated as read-only; tests copy it."""
    directory = tmp_path_factory.mktemp("incremental-corpus")
    generate_corpus_artifacts(CONFIG, directory)
    return directory


class _ShardSpy:
    """Counts process_shard invocations and the units they carried."""

    def __init__(self, monkeypatch):
        self.calls = 0
        self.units: list[str] = []
        real = engine_module.process_shard

        def spy(task):
            self.calls += 1
            self.units.extend(u.meta.name for u in task.replay_units or ())
            return real(task)

        monkeypatch.setattr(engine_module, "process_shard", spy)


def _audit(corpus: Path, cache: Path, **kwargs) -> tuple[str, dict]:
    result, profile = DiffAudit(
        CONFIG, replay=corpus, cache_dir=cache, **kwargs
    ).run_profiled()
    return result_to_json(result), profile["engine"]


class TestMutationInvalidation:
    def _mutable_copy(self, pristine: Path, tmp_path: Path) -> Path:
        corpus = tmp_path / "corpus"
        shutil.copytree(pristine, corpus)
        return corpus

    def test_unchanged_corpus_recomputes_nothing(
        self, pristine_corpus, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        cold_json, cold_engine = _audit(pristine_corpus, cache)
        total = cold_engine["unit_misses"]
        assert total > 0 and cold_engine["unit_hits"] == 0
        spy = _ShardSpy(monkeypatch)
        warm_json, warm_engine = _audit(pristine_corpus, cache)
        assert spy.calls == 0
        assert warm_engine["unit_hits"] == total
        assert warm_engine["unit_misses"] == 0
        assert warm_json == cold_json

    @pytest.mark.parametrize("role", ["pcap", "keylog", "har"])
    def test_one_byte_mutation_recomputes_exactly_that_unit(
        self, pristine_corpus, tmp_path, monkeypatch, role
    ):
        corpus = self._mutable_copy(pristine_corpus, tmp_path)
        cache = tmp_path / "cache"
        _audit(corpus, cache)

        scanned = ReplayCorpus.scan(corpus)
        unit = next(u for u in scanned.units if getattr(u, role) is not None)
        before = unit_digest(unit)
        path = getattr(unit, role)
        if role == "pcap":
            # Flip a timestamp byte in the first record header: the
            # decoder accepts any timestamp, so the mutated corpus
            # still replays cleanly.
            raw = bytearray(path.read_bytes())
            raw[24] ^= 0xFF
            path.write_bytes(bytes(raw))
        elif role == "keylog":
            path.write_bytes(path.read_bytes() + b"# mutated\n")
        else:
            path.write_bytes(path.read_bytes() + b"\n")
        assert unit_digest(unit) != before

        spy = _ShardSpy(monkeypatch)
        delta_json, delta_engine = _audit(corpus, cache)
        assert spy.units == [unit.meta.name]
        assert delta_engine["unit_misses"] == 1
        assert delta_engine["unit_hits"] == len(scanned.units) - 1
        # The merged report equals a from-scratch audit of the
        # mutated corpus — cached neighbors plus one recompute.
        fresh = result_to_json(DiffAudit(CONFIG, replay=corpus).run())
        assert delta_json == fresh

    def test_schema_bump_invalidates_every_unit(
        self, pristine_corpus, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        cold_json, cold_engine = _audit(pristine_corpus, cache)
        total = cold_engine["unit_misses"]
        monkeypatch.setattr(store_module, "UNIT_RESULT_SCHEMA", 2)
        spy = _ShardSpy(monkeypatch)
        bumped_json, bumped_engine = _audit(pristine_corpus, cache)
        assert spy.calls == total  # one single-unit task per unit
        assert bumped_engine["unit_misses"] == total
        assert bumped_engine["unit_hits"] == 0
        assert bumped_json == cold_json
        # The old rows are now stale: invisible to lookups, counted
        # for (and removed by) prune.
        with ClassificationStore(store_path_for(cache)) as store:
            assert store.stats().stale_unit_results == total
            assert store.prune_unit_results() == total
            assert store.stats().stale_unit_results == 0
            assert store.stats().total_unit_results == total

    def test_no_incremental_bypasses_the_unit_cache(
        self, pristine_corpus, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        cold_json, _ = _audit(pristine_corpus, cache)
        spy = _ShardSpy(monkeypatch)
        off_json, off_engine = _audit(pristine_corpus, cache, incremental=False)
        assert spy.calls > 0
        assert "unit_hits" not in off_engine  # reuse never activated
        assert off_json == cold_json


class TestUnitResultStoreUX:
    EPOCH = unit_result_epoch("clf", 0.8)

    def test_stats_report_unit_results_per_service(
        self, pristine_corpus, tmp_path
    ):
        cache = tmp_path / "cache"
        _, engine = _audit(pristine_corpus, cache)
        with ClassificationStore(store_path_for(cache)) as store:
            stats = store.stats()
        assert stats.total_unit_results == engine["unit_misses"]
        assert set(stats.unit_results) == {"tiktok", "youtube"}
        assert all(count > 0 for count in stats.unit_results.values())
        assert stats.stale_unit_results == 0

    def test_version_mismatch_rows_never_served_and_pruned(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.put_unit_results(
                self.EPOCH, [("d1", "svc", b"old")], schema_version=0
            )
            store.put_unit_results(self.EPOCH, [("d2", "svc", b"new")])
            assert store.get_unit_results(self.EPOCH, ["d1", "d2"]) == {
                "d2": b"new"
            }
            stats = store.stats()
            assert stats.unit_results == {"svc": 1}
            assert stats.stale_unit_results == 1
            assert store.prune_unit_results() == 1
            assert store.stats().stale_unit_results == 0
            assert store.get_unit_results(self.EPOCH, ["d2"]) == {"d2": b"new"}

    def test_epoch_scopes_lookups(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.put_unit_results(self.EPOCH, [("d", "svc", b"a")])
            other = unit_result_epoch("clf", 0.5)
            assert store.get_unit_results(other, ["d"]) == {}
            assert store.get_unit_results(self.EPOCH, ["d"]) == {"d": b"a"}

    def test_clear_also_drops_unit_results(self, tmp_path):
        with ClassificationStore(tmp_path / "s.sqlite") as store:
            store.put_unit_results(self.EPOCH, [("d", "svc", b"a")])
            store.clear()
            assert store.stats().total_unit_results == 0

    def test_corrupt_row_costs_one_recompute_and_is_replaced(
        self, pristine_corpus, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        cold_json, cold_engine = _audit(pristine_corpus, cache)
        total = cold_engine["unit_misses"]
        corpus = ReplayCorpus.scan(pristine_corpus)
        victim = corpus.units[0]
        digest = unit_digest(victim)
        epoch = unit_result_epoch("gpt4-majority-avg", 0.8)
        with ClassificationStore(store_path_for(cache)) as store:
            store.put_unit_results(
                epoch, [(digest, victim.meta.service, b"not a pickle")]
            )
        spy = _ShardSpy(monkeypatch)
        warm_json, warm_engine = _audit(pristine_corpus, cache)
        assert spy.units == [victim.meta.name]
        assert warm_engine["unit_misses"] == 1
        assert warm_engine["unit_hits"] == total - 1
        assert warm_json == cold_json
        # The quarantined row was replaced with a servable payload:
        # the next run is fully warm again.
        spy2 = _ShardSpy(monkeypatch)
        again_json, again_engine = _audit(pristine_corpus, cache)
        assert spy2.calls == 0
        assert again_engine["unit_hits"] == total
        assert again_json == cold_json
