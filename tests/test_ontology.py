"""Unit and property tests for the ontology and lexicon."""

import pytest
from hypothesis import given, strategies as st

from repro.ontology import ONTOLOGY, OBSERVED_LEVEL3, build_default_lexicon
from repro.ontology.lexicon import (
    ABBREVIATIONS,
    STOP_TOKENS,
    expand_tokens,
    split_key,
    tokenize_key,
)
from repro.ontology.nodes import Level1, Level2, Level3, Ontology, OntologyNode


class TestOntologyStructure:
    def test_has_35_level3_labels(self):
        """Paper Table 2: 35 level-3 categories."""
        assert len(ONTOLOGY) == 35
        assert len(Level3) == 35

    def test_has_8_level2_groups(self):
        assert len(Level2) == 8
        observed_groups = {node.level2 for node in ONTOLOGY}
        assert observed_groups == set(Level2)

    def test_two_level1_roots(self):
        assert {node.level1 for node in ONTOLOGY} == {
            Level1.IDENTIFIERS,
            Level1.PERSONAL_INFORMATION,
        }

    def test_identifier_branch_has_10_labels(self):
        """Table 2: 10 identifier categories, 25 personal-information."""
        identifiers = [n for n in ONTOLOGY if n.level1 is Level1.IDENTIFIERS]
        assert len(identifiers) == 10
        assert len(ONTOLOGY) - len(identifiers) == 25

    def test_19_observed_categories(self):
        """Paper Table 2 stars exactly 19 categories."""
        assert len(OBSERVED_LEVEL3) == 19

    def test_every_node_has_examples(self):
        for node in ONTOLOGY:
            assert node.examples, f"{node.level3} has no level-4 examples"

    def test_label_names_match_enum(self):
        assert set(ONTOLOGY.label_names()) == {l.value for l in Level3}

    def test_node_lookup_by_string_and_enum(self):
        by_string = ONTOLOGY.node("Coarse Geolocation")
        by_enum = ONTOLOGY.node(Level3.COARSE_GEOLOCATION)
        assert by_string is by_enum

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            ONTOLOGY.node("Shoe Size")

    def test_contains(self):
        assert "Aliases" in ONTOLOGY
        assert "Shoe Size" not in ONTOLOGY

    def test_level2_rollup(self):
        assert ONTOLOGY.level2_of(Level3.COARSE_GEOLOCATION) is Level2.GEOLOCATION
        assert (
            ONTOLOGY.level2_of(Level3.DEVICE_INFORMATION)
            is Level2.DEVICE_IDENTIFIERS
        )

    def test_is_identifier(self):
        assert ONTOLOGY.is_identifier(Level3.ALIASES)
        assert ONTOLOGY.is_identifier(Level3.DEVICE_INFORMATION)
        assert not ONTOLOGY.is_identifier(Level3.LANGUAGE)
        assert not ONTOLOGY.is_identifier(Level3.APP_OR_SERVICE_USAGE)

    def test_labels_under(self):
        geo = ONTOLOGY.labels_under(Level2.GEOLOCATION)
        assert set(geo) == {
            Level3.PRECISE_GEOLOCATION,
            Level3.COARSE_GEOLOCATION,
            Level3.LOCATION_TIME,
        }

    def test_duplicate_node_rejected(self):
        node = OntologyNode(
            level1=Level1.IDENTIFIERS,
            level2=Level2.PERSONAL_IDENTIFIERS,
            level3=Level3.NAME,
            examples=("x",),
        )
        with pytest.raises(ValueError):
            Ontology([node, node])


class TestSplitKey:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("email", ["email"]),
            ("first_name", ["first", "name"]),
            ("IsOptOutEmailShown", ["is", "opt", "out", "email", "shown"]),
            ("screen-width", ["screen", "width"]),
            ("a.b.c", ["a", "b", "c"]),
            ("HTTPResponse", ["http", "response"]),
            ("", []),
            ("___", []),
        ],
    )
    def test_cases(self, raw, expected):
        assert split_key(raw) == expected

    def test_numbers_kept_by_split(self):
        assert split_key("utm_2023") == ["utm", "2023"]


class TestTokenize:
    def test_abbreviation_expansion(self):
        assert "operating" in expand_tokens(["os"])
        assert "round" in expand_tokens(["rtt"])

    def test_unknown_token_passes_through(self):
        assert expand_tokens(["zebra"]) == ["zebra"]

    def test_tokenize_drops_stop_tokens(self):
        tokens = tokenize_key("is_email_shown")
        assert "is" not in tokens
        assert "shown" not in tokens
        assert "email" in tokens

    def test_tokenize_drops_pure_digits(self):
        assert "2023" not in tokenize_key("utm_2023")

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=40))
    def test_tokenize_never_raises(self, raw):
        tokens = tokenize_key(raw)
        assert all(isinstance(t, str) for t in tokens)

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=30))
    def test_tokens_are_lowercase_non_stop(self, raw):
        for token in tokenize_key(raw):
            assert token == token.lower()
            assert token not in STOP_TOKENS


class TestLexicon:
    @pytest.fixture(scope="class")
    def lexicon(self):
        return build_default_lexicon(ONTOLOGY)

    def test_scores_are_over_known_labels(self, lexicon):
        scores = lexicon.score("email_address")
        assert scores
        assert all(isinstance(label, Level3) for label in scores)

    def test_exact_example_scores_its_label_best(self, lexicon):
        scores = lexicon.score("advertising_id")
        assert max(scores, key=scores.get) is Level3.DEVICE_SOFTWARE_IDENTIFIERS

    def test_abbreviated_key_scores_via_expansion(self, lexicon):
        scores = lexicon.score("rtt")
        assert (
            max(scores, key=scores.get)
            is Level3.NETWORK_CONNECTION_INFORMATION
        )

    def test_decorated_key_still_scores(self, lexicon):
        scores = lexicon.score("IsOptOutEmailShown")
        assert scores  # "email" provides evidence

    def test_opaque_key_scores_empty(self, lexicon):
        assert lexicon.score("zxqv3") == {}

    def test_phrase_beats_single_token(self, lexicon):
        """'mac address' is a Device HW phrase; 'address' alone leans
        toward geolocation examples — phrase evidence must dominate."""
        scores = lexicon.score("mac_address")
        assert max(scores, key=scores.get) is Level3.DEVICE_HARDWARE_IDENTIFIERS

    @given(st.sampled_from(sorted(ABBREVIATIONS)))
    def test_every_abbreviation_expands_to_nonempty(self, abbrev):
        assert ABBREVIATIONS[abbrev]

    def test_vocabulary_nonempty(self, lexicon):
        assert len(lexicon.vocabulary()) > 200
