"""Unit tests for corpus processing and the dataset summary."""

import pytest

from repro.capture.base import TraceMeta
from repro.model import AgeGroup, Platform, TraceKind
from repro.net.har import read_har
from repro.net.pcap import PcapFile
from repro.pipeline.corpus import CorpusProcessor, ParsedTrace
from repro.pipeline.dataset import DatasetSummary
from repro.services import CorpusConfig


@pytest.fixture(scope="module")
def processor():
    return CorpusProcessor(config=CorpusConfig(scale=0.003, services=("tiktok",)))


class TestCorpusProcessor:
    def test_streams_all_units(self, processor):
        traces = list(processor)
        # TikTok: web + mobile platforms × 7 units.
        assert len(traces) == 14
        assert {t.meta.platform for t in traces} == {Platform.WEB, Platform.MOBILE}

    def test_web_round_trip_counts(self, processor):
        trace = processor.process_trace(
            processor.generator.generate_unit(
                processor.config.service_specs()[0],
                Platform.WEB,
                TraceKind.LOGGED_IN,
                AgeGroup.ADULT,
                packet_target=50,
            )
        )
        assert trace.packet_count == len(trace.requests)
        assert trace.flow_count >= 1
        assert trace.opaque_hosts == []

    def test_mobile_round_trip_counts(self, processor):
        trace = processor.process_trace(
            processor.generator.generate_unit(
                processor.config.service_specs()[0],
                Platform.MOBILE,
                TraceKind.LOGGED_IN,
                AgeGroup.ADULT,
                packet_target=300,
            )
        )
        assert trace.packet_count > len(trace.requests)  # frames > requests
        assert trace.undecryptable_flows >= 1  # pinned filler
        assert trace.contacted_hosts()

    def test_artifacts_written_to_disk(self, tmp_path):
        processor = CorpusProcessor(
            config=CorpusConfig(scale=0.002, services=("youtube",)),
            artifacts_dir=tmp_path,
        )
        list(processor)
        har_files = list(tmp_path.glob("*.har"))
        pcap_files = list(tmp_path.glob("*.pcap"))
        keylogs = list(tmp_path.glob("*.keylog"))
        assert len(har_files) == 7  # web units
        assert len(pcap_files) == 7  # mobile units
        assert len(keylogs) == 7
        # Artifacts are valid, parseable files.
        assert read_har(har_files[0]).entries
        assert len(PcapFile.read(pcap_files[0])) > 0


class TestDatasetSummary:
    def _trace(self, service, hosts, packets, flows):
        meta = TraceMeta(
            service=service,
            platform=Platform.WEB,
            kind=TraceKind.LOGGED_IN,
            age=AgeGroup.ADULT,
        )
        parsed = ParsedTrace(meta=meta, packet_count=packets, flow_count=flows)
        parsed.opaque_hosts = list(hosts)
        return parsed

    def test_accumulation(self):
        summary = DatasetSummary()
        summary.add_trace(self._trace("a", ["x.one.com", "y.one.com"], 10, 2))
        summary.add_trace(self._trace("a", ["x.one.com", "z.two.com"], 5, 1))
        stats = summary.per_service["a"]
        assert stats.domain_count == 3
        assert stats.esld_count == 2
        assert stats.packets == 15
        assert stats.tcp_flows == 3

    def test_totals_are_unique_unions(self):
        summary = DatasetSummary()
        summary.add_trace(self._trace("a", ["shared.t.com", "only-a.t.com"], 1, 1))
        summary.add_trace(self._trace("b", ["shared.t.com", "only-b.t.com"], 1, 1))
        assert summary.total_domains == 3
        assert summary.total_eslds == 1
        assert summary.total_packets == 2

    def test_rows_sorted(self):
        summary = DatasetSummary()
        summary.add_trace(self._trace("zebra", ["z.z.com"], 1, 1))
        summary.add_trace(self._trace("alpha", ["a.a.com"], 1, 1))
        assert [row[0] for row in summary.rows()] == ["alpha", "zebra"]
