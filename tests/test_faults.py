"""Fault tolerance: seeded injection, crash recovery, degradation, resume.

Structure mirrors the feature's contract:

* ``FaultPlan`` — decisions are a pure function of (profile, seed,
  identity), plans pickle/hash, kills are transient by construction;
* executor recovery — a killed pool worker is retried; a persistent
  crash becomes a :class:`ShardCrash` sentinel, never an exception;
* poison bisection — a unit that crashes its worker on every attempt
  is isolated to exactly itself (quarantined under ``--keep-going``,
  named in strict mode);
* graceful degradation — real on-disk corruption quarantines the
  damaged unit with path + digest, exit code 3 at the CLI;
* byte parity — non-data fault plans (kill/stall/store) never change
  output bytes (Hypothesis, across seeds);
* crash-safe resume — an audit SIGKILLed mid-run resumes from the
  per-unit results it already flushed, byte-identical to a cold run;
* atomic writes — ``repro.fsutil`` never tears a file, even when the
  write itself fails.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import CorpusConfig, DiffAudit
from repro.cli import main as repro_main
from repro.datatypes.store import StoreError, store_path_for
from repro.faults import FAULT_PROFILES, FaultPlan, FlakyStore, corrupt_artifact
from repro.fsutil import atomic_write_text
from repro.pipeline.engine import (
    ProcessPoolShardExecutor,
    ShardCrash,
    generate_corpus_artifacts,
)
from repro.pipeline.replay import ReplayCorpus, ReplayError
from repro.reporting.export import result_to_json

REPO_ROOT = Path(__file__).resolve().parents[1]

CONFIG = CorpusConfig(
    seed=11, scale=0.002, profile="light", services=("tiktok", "youtube")
)


@pytest.fixture(scope="module")
def pristine_corpus(tmp_path_factory) -> Path:
    """One generated corpus, treated as read-only; tests copy it."""
    directory = tmp_path_factory.mktemp("faults-corpus")
    generate_corpus_artifacts(CONFIG, directory)
    return directory


@pytest.fixture(scope="module")
def clean_json(pristine_corpus) -> str:
    """The fault-free replay output every parity assertion compares to."""
    result = DiffAudit(CONFIG, replay=pristine_corpus).run()
    assert not result.degraded
    return result_to_json(result)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_profiles_registry(self):
        assert set(FAULT_PROFILES) == {
            "corrupt-unit", "kill-worker", "slow-worker", "flaky-store", "chaos"
        }
        # "none" is the programmatic poison-only escape hatch, never a
        # CLI choice.
        assert "none" not in FAULT_PROFILES
        FaultPlan("none")  # but it must construct

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultPlan("tornado")

    def test_decisions_are_deterministic(self):
        a = FaultPlan("chaos", seed=42)
        b = FaultPlan("chaos", seed=42)
        names = [f"unit-{i}" for i in range(50)]
        assert [a.corrupt_unit(n) for n in names] == [
            b.corrupt_unit(n) for n in names
        ]
        assert [a.kill_worker("svc", p, 0) for p in range(50)] == [
            b.kill_worker("svc", p, 0) for p in range(50)
        ]
        assert [a.stall_worker("svc", p) for p in range(50)] == [
            b.stall_worker("svc", p) for p in range(50)
        ]

    def test_seed_changes_the_schedule(self):
        names = [f"unit-{i}" for i in range(200)]
        schedules = {
            seed: tuple(FaultPlan("corrupt-unit", seed=seed).corrupt_unit(n) for n in names)
            for seed in (0, 1, 2)
        }
        assert len(set(schedules.values())) == 3

    def test_rates_are_roughly_honored(self):
        plan = FaultPlan("corrupt-unit", seed=0)
        hits = sum(plan.corrupt_unit(f"unit-{i}") for i in range(400))
        # rate 0.2 over 400 draws; loose bounds, no flakiness.
        assert 40 <= hits <= 160

    def test_kills_fire_only_on_first_attempt(self):
        plan = FaultPlan("kill-worker", seed=0)
        first = [plan.kill_worker("svc", p, 0) for p in range(100)]
        assert any(first)  # rate 0.6: some workers do die
        for attempt in (1, 2, 3):
            assert not any(
                plan.kill_worker("svc", p, attempt) for p in range(100)
            )

    def test_stalls_are_bounded(self):
        plan = FaultPlan("slow-worker", seed=3)
        delays = [plan.stall_worker("svc", p) for p in range(100)]
        assert any(delays)
        assert all(0.0 <= d <= plan.rates.stall_max_s for d in delays)

    def test_plan_pickles_and_hashes(self):
        plan = FaultPlan("chaos", seed=7, poison_unit="u")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert hash(clone) == hash(plan)
        assert clone.corrupt_unit("x") == plan.corrupt_unit("x")

    def test_flaky_store_schedule_is_reproducible(self):
        class _Fake:
            def get_many(self, *args):
                return "ok"

            def stats(self):
                return "stats"

        plan = FaultPlan("flaky-store", seed=5)

        def schedule():
            store = FlakyStore(_Fake(), plan)
            outcomes = []
            for _ in range(40):
                try:
                    outcomes.append(store.get_many())
                except StoreError as exc:
                    assert "injected transient store fault" in str(exc)
                    outcomes.append("fault")
            return outcomes

        first, second = schedule(), schedule()
        assert first == second
        assert "fault" in first and "ok" in first
        # Non-hot operations pass straight through, never fault.
        assert FlakyStore(_Fake(), plan).stats() == "stats"

    def test_wrap_store_is_identity_without_store_faults(self):
        sentinel = object()
        assert FaultPlan("kill-worker").wrap_store(sentinel) is sentinel
        assert isinstance(
            FaultPlan("flaky-store").wrap_store(sentinel), FlakyStore
        )

    def test_corrupt_artifact_modes(self, tmp_path):
        target = tmp_path / "t.har"
        payload = b"x" * 4096
        target.write_bytes(payload)
        corrupt_artifact(target, seed=1, mode="scribble")
        scribbled = target.read_bytes()
        assert len(scribbled) == len(payload) and scribbled != payload
        corrupt_artifact(target, mode="truncate")
        assert target.stat().st_size == len(payload) // 2
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_artifact(target, mode="shred")


# ----------------------------------------------------------------------
# Process-pool crash recovery (executor level)
# ----------------------------------------------------------------------


def _exit_on_first_attempt(spec):
    """Die with os._exit the first time each value is attempted."""
    directory, value = spec
    marker = Path(directory) / f"attempted-{value}"
    if not marker.exists():
        marker.write_text("dead")
        os._exit(1)
    return value * 2


def _exit_by_spec(spec):
    kind, value = spec
    if kind == "die":
        os._exit(1)
    return value * 2


class TestProcessPoolRecovery:
    def test_transient_worker_death_is_retried(self, tmp_path):
        # max_attempts=5: a pool break can poison a not-yet-started
        # sibling task, so a task may burn an attempt without running.
        # Every attempt still makes progress (the worker that died DID
        # write its marker), so 5 attempts cover 3 tasks with margin.
        executor = ProcessPoolShardExecutor(
            jobs=3, max_attempts=5, retry_backoff_s=0.01
        )
        tasks = [(str(tmp_path), value) for value in (1, 2, 3)]
        results = executor.map_shards(tasks, work=_exit_on_first_attempt)
        assert results == [2, 4, 6]

    def test_persistent_crash_becomes_sentinel_not_exception(self):
        executor = ProcessPoolShardExecutor(
            jobs=2, max_attempts=4, retry_backoff_s=0.01
        )
        delivered = []
        results = executor.map_shards(
            [("die", 0), ("ok", 2), ("ok", 3)],
            work=_exit_by_spec,
            on_result=lambda index, result: delivered.append(index),
        )
        assert isinstance(results[0], ShardCrash)
        assert results[0].attempts == 4
        assert "died on all 4 attempts" in results[0].error
        assert results[1:] == [4, 6]
        # The flush hook never sees crash sentinels — only real results.
        assert sorted(delivered) == [1, 2]


# ----------------------------------------------------------------------
# Poison-unit bisection (engine level)
# ----------------------------------------------------------------------


class TestPoisonBisection:
    def _poison_name(self, corpus: Path) -> str:
        units = ReplayCorpus.scan(corpus).units
        assert len(units) >= 4  # bisection needs something to split
        return units[len(units) // 2].meta.name

    def test_keep_going_quarantines_exactly_the_poison_unit(
        self, pristine_corpus
    ):
        poison = self._poison_name(pristine_corpus)
        result = DiffAudit(
            CONFIG,
            replay=pristine_corpus,
            jobs=2,
            executor="process",
            keep_going=True,
            faults=FaultPlan("none", poison_unit=poison),
        ).run()
        assert [entry.unit for entry in result.degraded] == [poison]
        entry = result.degraded[0]
        assert entry.stage == "process"
        assert entry.error == "WorkerCrash"
        assert entry.digest and entry.digest != "unavailable"

    def test_strict_mode_names_the_poison_unit(self, pristine_corpus):
        poison = self._poison_name(pristine_corpus)
        with pytest.raises(ReplayError, match=poison):
            DiffAudit(
                CONFIG,
                replay=pristine_corpus,
                jobs=2,
                executor="process",
                faults=FaultPlan("none", poison_unit=poison),
            ).run()


# ----------------------------------------------------------------------
# Graceful degradation on real on-disk corruption
# ----------------------------------------------------------------------


class TestRealCorruption:
    def _corrupted_copy(self, pristine: Path, tmp_path: Path):
        import shutil

        corpus = tmp_path / "corpus"
        shutil.copytree(pristine, corpus)
        units = ReplayCorpus.scan(corpus).units
        # Scribble a HAR: binary garbage in JSON fails decode for
        # certain, where a damaged pcap might just parse fewer records.
        unit = next(u for u in units if u.har is not None)
        victim = unit.har
        corrupt_artifact(victim, seed=9, mode="scribble")
        return corpus, unit.meta.name, victim

    def test_strict_failure_names_unit_path_and_remedy(
        self, pristine_corpus, tmp_path
    ):
        corpus, name, victim = self._corrupted_copy(pristine_corpus, tmp_path)
        with pytest.raises(ReplayError) as excinfo:
            DiffAudit(CONFIG, replay=corpus).run()
        message = str(excinfo.value)
        assert name in message
        assert str(victim) in message
        assert "digest" in message
        assert "--keep-going" in message

    def test_keep_going_completes_and_records_the_unit(
        self, pristine_corpus, tmp_path
    ):
        corpus, name, victim = self._corrupted_copy(pristine_corpus, tmp_path)
        result = DiffAudit(CONFIG, replay=corpus, keep_going=True).run()
        assert [entry.unit for entry in result.degraded] == [name]
        entry = result.degraded[0]
        assert entry.stage == "decode"
        assert entry.path == str(victim)
        assert entry.digest and entry.digest != "unavailable"
        # The rest of the corpus was audited: the JSON document carries
        # real findings plus the degraded section.
        document = json.loads(result_to_json(result))
        assert document["degraded"][0]["unit"] == name
        assert document["findings"]

    def test_degraded_units_are_not_cached(
        self, pristine_corpus, tmp_path
    ):
        # A quarantined unit must be re-attempted every run — repairing
        # the artifact heals the audit without touching the cache.
        corpus, name, victim = self._corrupted_copy(pristine_corpus, tmp_path)
        pristine_bytes = (
            pristine_corpus / victim.name
        ).read_bytes()
        cache = tmp_path / "cache"
        degraded_run = DiffAudit(
            CONFIG, replay=corpus, cache_dir=cache, keep_going=True
        ).run()
        assert [entry.unit for entry in degraded_run.degraded] == [name]
        victim.write_bytes(pristine_bytes)  # repair
        healed = DiffAudit(
            CONFIG, replay=corpus, cache_dir=cache, keep_going=True
        ).run()
        assert healed.degraded == []


# ----------------------------------------------------------------------
# Byte parity under non-data fault plans
# ----------------------------------------------------------------------


class TestNonDataFaultParity:
    @given(
        profile=st.sampled_from(["kill-worker", "slow-worker", "flaky-store"]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=4, deadline=None)
    def test_non_data_faults_never_change_output_bytes(
        self, pristine_corpus, clean_json, tmp_path_factory, profile, seed
    ):
        cache = tmp_path_factory.mktemp("fault-cache")
        result = DiffAudit(
            CONFIG,
            replay=pristine_corpus,
            jobs=2,
            executor="process",
            cache_dir=cache,
            faults=FaultPlan(profile, seed=seed),
        ).run()
        assert result.degraded == []
        assert result_to_json(result) == clean_json

    def test_chaos_with_keep_going_degrades_only_data_faults(
        self, pristine_corpus, clean_json
    ):
        # chaos includes corruption, so it needs keep-going; every
        # degraded entry must be an injected decode fault, and a seed
        # with no corruption hits must reproduce the clean bytes.
        result = DiffAudit(
            CONFIG,
            replay=pristine_corpus,
            jobs=2,
            executor="process",
            keep_going=True,
            faults=FaultPlan("chaos", seed=1),
        ).run()
        for entry in result.degraded:
            assert entry.stage == "decode"
            assert "fault injection" in entry.detail
        if not result.degraded:
            assert result_to_json(result) == clean_json


# ----------------------------------------------------------------------
# SIGKILL + --resume
# ----------------------------------------------------------------------


def _unit_result_rows(store_path: Path) -> int:
    try:
        with sqlite3.connect(f"file:{store_path}?mode=ro", uri=True) as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM unit_results"
            ).fetchone()[0]
    except sqlite3.Error:
        return 0


class TestSigkillResume:
    def test_resume_after_sigkill_matches_cold_run_bytes(
        self, pristine_corpus, clean_json, tmp_path
    ):
        cache = tmp_path / "cache"
        command = [
            sys.executable, "-m", "repro", "audit",
            "--from-artifacts", str(pristine_corpus),
            "--cache-dir", str(cache),
            "--jobs", "2", "--executor", "process",
            "--inject-faults", "slow-worker",  # widen the kill window
            "--json", "--output", os.devnull,
        ]
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        process = subprocess.Popen(
            command, env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        store_path = store_path_for(cache)
        deadline = time.monotonic() + 120
        try:
            # Kill the instant the run has flushed its first per-unit
            # results — mid-run by construction.
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break
                if _unit_result_rows(store_path) >= 1:
                    process.kill()
                    break
                time.sleep(0.05)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        flushed = _unit_result_rows(store_path)
        assert flushed >= 1, "the interrupted run flushed nothing"

        output = tmp_path / "resumed.json"
        status = repro_main([
            "audit",
            "--from-artifacts", str(pristine_corpus),
            "--cache-dir", str(cache),
            "--resume", "--json", "--output", str(output),
        ])
        assert status == 0
        assert output.read_text() == clean_json


# ----------------------------------------------------------------------
# CLI surface: exit codes and flag validation
# ----------------------------------------------------------------------


class TestCliExitCodes:
    def test_injected_corruption_strict_exits_2(self, pristine_corpus, capsys):
        status = repro_main([
            "audit", "--from-artifacts", str(pristine_corpus),
            "--inject-faults", "corrupt-unit", "--strict",
        ])
        assert status == 2
        stderr = capsys.readouterr().err
        assert "treated as corrupt" in stderr
        assert "--keep-going" in stderr

    def test_injected_corruption_keep_going_exits_3(
        self, pristine_corpus, tmp_path, capsys
    ):
        output = tmp_path / "out.json"
        status = repro_main([
            "audit", "--from-artifacts", str(pristine_corpus),
            "--inject-faults", "corrupt-unit", "--keep-going",
            "--json", "--output", str(output),
        ])
        assert status == 3
        assert "degraded" in capsys.readouterr().err
        document = json.loads(output.read_text())
        assert document["degraded"]
        for entry in document["degraded"]:
            assert entry["stage"] == "decode"
            assert entry["error"] == "ReplayError"

    def test_strict_and_keep_going_conflict(self, pristine_corpus, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main([
                "audit", "--from-artifacts", str(pristine_corpus),
                "--strict", "--keep-going",
            ])
        assert excinfo.value.code == 2

    def test_resume_requires_artifacts_and_cache(self, capsys):
        assert repro_main(["audit", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_resume_conflicts_with_no_incremental(
        self, pristine_corpus, tmp_path, capsys
    ):
        status = repro_main([
            "audit", "--from-artifacts", str(pristine_corpus),
            "--cache-dir", str(tmp_path / "cache"),
            "--resume", "--no-incremental",
        ])
        assert status == 2
        assert "conflict" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------


class TestAtomicWrites:
    def test_write_replaces_content_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        assert [p.name for p in sorted(tmp_path.iterdir())] == ["doc.json"]

    def test_failed_write_keeps_old_bytes_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "doc.json"
        target.write_text("old")

        def explode(src, dst):
            raise OSError("simulated torn rename")

        monkeypatch.setattr("repro.fsutil.os.replace", explode)
        with pytest.raises(OSError, match="torn rename"):
            atomic_write_text(target, "new")
        assert target.read_text() == "old"
        assert [p.name for p in sorted(tmp_path.iterdir())] == ["doc.json"]
