"""Tests for the unified telemetry subsystem (``repro.obs``).

The load-bearing contracts, in test order:

* registry mechanics — the catalog is enforced, types are checked,
  renderings are deterministic;
* the Prometheus text golden — the exposition format is pinned byte
  for byte, so a scraper that worked yesterday works tomorrow;
* deterministic merge — worker snapshots fold the same way whatever
  order shards finished in (Hypothesis);
* span tracing — events, the JSONL sidecar, the sink fan-in, and the
  no-double-count rule for merged shard tables;
* telemetry parity — surfacing metrics/spans changes zero bytes of
  audit output, across jobs and executors;
* the live HTTP endpoint — ``/metrics`` scrapes as valid Prometheus
  text and ``/stats`` as JSON while a stream session is resident.
"""

from __future__ import annotations

import json
import random
import urllib.error
import urllib.request
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import CorpusConfig, DiffAudit
from repro.cli import main as repro_main
from repro.obs import write_metrics
from repro.obs.catalog import CATALOG, MetricSpec, spec_for
from repro.obs.http import MetricsServer
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.trace import SpanRecorder
from repro.reporting.export import result_to_json
from repro.stream import LiveGeneratorSource, StreamAudit

CONFIG = CorpusConfig(scale=0.004, profile="light", seed=11, services=("youtube",))


class FakeClock:
    """A deterministic clock: every read advances by ``step``."""

    def __init__(self, start: float = 100.0, step: float = 0.5) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------


class TestRegistry:
    def test_catalog_is_enforced(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError, match="not in repro.obs.catalog"):
            registry.counter("repro_made_up_total")
        with pytest.raises(KeyError):
            spec_for("repro_made_up_total")

    def test_catalog_specs_are_well_formed(self):
        for name, spec in CATALOG.items():
            assert spec.name == name
            assert spec.help.strip()
            if spec.type == "counter":
                assert name.endswith("_total"), name

    def test_bad_metric_type_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            MetricSpec("repro_x_total", "summary", "nope")

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_stream_traces_total")
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge("repro_stream_traces_total")

    def test_label_arity_checked(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_faults_fired_total")
        with pytest.raises(ValueError, match="takes labels"):
            family.labels("kill-worker")  # missing the profile label

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("repro_stream_traces_total").inc(-1)

    def test_gauge_max_is_high_water(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_stream_high_water_bytes")
        gauge.max(10)
        gauge.max(3)
        assert gauge.labels().value == 10

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        assert histogram.counts == [1, 1, 2]
        assert histogram.count == 2
        assert histogram.sum == pytest.approx(5.05)

    def test_labelless_family_renders_at_zero(self):
        registry = MetricsRegistry()
        registry.counter("repro_stream_traces_total")
        assert "repro_stream_traces_total 0" in registry.render_prometheus()

    def test_gauge_callback_computes_on_scrape(self):
        registry = MetricsRegistry()
        state = {"flows": 0}
        registry.gauge_callback(
            "repro_stream_flows_live", lambda: state["flows"]
        )
        state["flows"] = 7
        assert "repro_stream_flows_live 7" in registry.render_prometheus()
        registry.clear_callback("repro_stream_flows_live")
        state["flows"] = 9
        assert "repro_stream_flows_live 7" in registry.render_prometheus()

    def test_gauge_callback_rejects_non_gauges(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError, match="is a counter"):
            registry.gauge_callback("repro_faults_fired_total", lambda: 0)

    def test_reset_zeroes_but_keeps_families(self):
        registry = MetricsRegistry()
        registry.counter("repro_stream_traces_total").inc(5)
        registry.reset()
        snapshot = registry.snapshot()
        samples = snapshot["metrics"]["repro_stream_traces_total"]["samples"]
        assert samples == [{"labels": {}, "value": 0.0}]


# ----------------------------------------------------------------------
# Prometheus text golden
# ----------------------------------------------------------------------


GOLDEN = """\
# HELP repro_engine_runs_total Audit engine runs started, by executor kind.
# TYPE repro_engine_runs_total counter
repro_engine_runs_total{executor="process"} 2
repro_engine_runs_total{executor="sequential"} 1
# HELP repro_store_get_seconds Latency of classification store batch reads.
# TYPE repro_store_get_seconds histogram
repro_store_get_seconds_bucket{le="0.5"} 1
repro_store_get_seconds_bucket{le="2.5"} 2
repro_store_get_seconds_bucket{le="+Inf"} 2
repro_store_get_seconds_sum 2.5
repro_store_get_seconds_count 2
# HELP repro_stream_buffered_bytes Reassembly bytes currently buffered across live flows.
# TYPE repro_stream_buffered_bytes gauge
repro_stream_buffered_bytes 4096
# HELP repro_stream_traces_total Packet traces consumed by stream sessions.
# TYPE repro_stream_traces_total counter
repro_stream_traces_total 3
"""


def golden_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_stream_traces_total").inc(3)
    registry.gauge("repro_stream_buffered_bytes").set(4096)
    runs = registry.counter("repro_engine_runs_total")
    runs.labels("sequential").inc()
    runs.labels("process").inc(2)
    store = registry.histogram("repro_store_get_seconds")
    child = store.labels()
    child.buckets = (0.5, 2.5)  # narrow buckets keep the golden short
    child.counts = [0, 0]
    store.observe(0.4)
    store.observe(2.1)
    return registry


class TestPrometheusText:
    def test_golden_rendering(self):
        assert golden_registry().render_prometheus() == GOLDEN

    def test_rendering_is_deterministic(self):
        assert (
            golden_registry().render_prometheus()
            == golden_registry().render_prometheus()
        )

    def test_integer_values_have_no_decimal_point(self):
        registry = MetricsRegistry()
        registry.counter("repro_stream_traces_total").inc(2)
        text = registry.render_prometheus()
        assert "repro_stream_traces_total 2\n" in text
        assert "2.0" not in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_faults_fired_total").labels(
            'kind"with\\quote', "chaos\nline"
        ).inc()
        text = registry.render_prometheus()
        assert '\\"with\\\\quote' in text
        assert "chaos\\nline" in text

    def test_write_metrics_picks_format_by_extension(self, tmp_path):
        registry = golden_registry()
        prom = write_metrics(tmp_path / "m.prom", registry)
        txt = write_metrics(tmp_path / "m.txt", registry)
        blob = write_metrics(tmp_path / "m.json", registry)
        assert prom.read_text() == GOLDEN
        assert txt.read_text() == GOLDEN
        document = json.loads(blob.read_text())
        assert document["version"] == 1
        assert "repro_stream_traces_total" in document["metrics"]


# ----------------------------------------------------------------------
# Deterministic merge
# ----------------------------------------------------------------------


def snapshot_of(traces: int, high_water: int, observations: list[float]) -> dict:
    registry = MetricsRegistry()
    registry.counter("repro_stream_traces_total").inc(traces)
    registry.gauge("repro_stream_high_water_bytes").max(high_water)
    histogram = registry.histogram("repro_store_get_seconds")
    for value in observations:
        histogram.observe(value)
    return registry.snapshot()


class TestDeterministicMerge:
    def test_counters_sum_gauges_max(self):
        merged = merge_snapshots(
            [snapshot_of(2, 100, [0.01]), snapshot_of(3, 40, [0.2])]
        )
        metrics = merged["metrics"]
        assert (
            metrics["repro_stream_traces_total"]["samples"][0]["value"] == 5
        )
        assert (
            metrics["repro_stream_high_water_bytes"]["samples"][0]["value"]
            == 100
        )
        histogram = metrics["repro_store_get_seconds"]["samples"][0]
        assert histogram["count"] == 2

    def test_absorb_rejects_foreign_versions(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="snapshot version"):
            registry.absorb({"version": 99, "metrics": {}})

    def test_absorb_rejects_uncataloged_names(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError, match="uncataloged"):
            registry.absorb(
                {
                    "version": 1,
                    "metrics": {
                        "repro_made_up_total": {"samples": [{"value": 1}]}
                    },
                }
            )

    @settings(max_examples=25, deadline=None)
    @given(
        shards=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=10_000),
                # Dyadic values sum exactly in binary floating point,
                # so the order-independence claim is testable without
                # tripping over float non-associativity (the engine
                # pins absorb order for arbitrary floats).
                st.lists(
                    st.sampled_from([0.25, 0.5, 2.0, 16.0]),
                    max_size=4,
                ),
            ),
            max_size=6,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_merge_is_order_independent(self, shards, seed):
        snapshots = [
            snapshot_of(traces, high, observations)
            for traces, high, observations in shards
        ]
        shuffled = list(snapshots)
        random.Random(seed).shuffle(shuffled)
        assert merge_snapshots(shuffled) == merge_snapshots(snapshots)


# ----------------------------------------------------------------------
# Span tracing
# ----------------------------------------------------------------------


class TestSpans:
    def test_span_events_use_injected_clock(self):
        clock = FakeClock(start=100.0, step=0.5)
        recorder = SpanRecorder(
            clock=clock, retain_events=True, metrics=MetricsRegistry()
        )
        with recorder.span("decode", unit="t0"):
            pass
        [event] = recorder.events
        assert event.name == "decode"
        assert event.start_s == pytest.approx(0.5)
        assert event.duration_s == pytest.approx(0.5)
        assert event.attrs == {"unit": "t0"}
        assert recorder.get("decode") == pytest.approx(0.5)

    def test_spans_land_in_metrics(self):
        metrics = MetricsRegistry()
        recorder = SpanRecorder(clock=FakeClock(), metrics=metrics)
        recorder.record("classify", 1.25)
        recorder.record("classify", 0.75)
        text = metrics.render_prometheus()
        assert 'repro_spans_total{name="classify"} 2' in text
        assert 'repro_span_seconds_total{name="classify"} 2' in text

    def test_merge_does_not_reemit_metrics(self):
        metrics = MetricsRegistry()
        recorder = SpanRecorder(clock=FakeClock(), metrics=metrics)
        recorder.merge({"decode": 3.0, "classify": 1.0})
        assert recorder.get("decode") == 3.0
        assert "repro_spans_total" not in metrics.render_prometheus()

    def test_sink_receives_events_rebased(self):
        sink_clock = FakeClock(start=50.0, step=0.0)
        sink = SpanRecorder(
            clock=sink_clock, retain_events=True, metrics=MetricsRegistry()
        )
        scoped_metrics = MetricsRegistry()
        scoped = SpanRecorder(
            clock=FakeClock(start=60.0, step=1.0),
            metrics=scoped_metrics,
            sink=sink,
        )
        with scoped.span("execute"):
            pass
        assert scoped.events == []  # scoped recorder does not retain
        [event] = sink.events
        assert event.name == "execute"
        assert event.start_s == pytest.approx(11.0)  # 61.0 - 50.0
        # Metrics stayed local to the scoped recorder — the sink's
        # registry (the default) is not double-counted through it.
        text = scoped_metrics.render_prometheus()
        assert 'repro_spans_total{name="execute"} 1' in text

    def test_non_retaining_sink_is_ignored(self):
        sink = SpanRecorder(clock=FakeClock(), metrics=MetricsRegistry())
        scoped = SpanRecorder(
            clock=FakeClock(), metrics=MetricsRegistry(), sink=sink
        )
        scoped.record("merge", 0.5)
        assert sink.events == []

    def test_jsonl_sidecar_roundtrip(self, tmp_path):
        recorder = SpanRecorder(
            clock=FakeClock(start=0.0, step=0.25),
            retain_events=True,
            metrics=MetricsRegistry(),
        )
        with recorder.span("shard_setup"):
            pass
        recorder.record("assemble", 2.0, start=1.0)
        path = recorder.write_jsonl(tmp_path / "spans.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0] == {"version": 1, "events": 2}
        assert lines[1]["name"] == "shard_setup"
        assert lines[2] == {
            "name": "assemble",
            "start_s": 1.0,
            "duration_s": 2.0,
        }


# ----------------------------------------------------------------------
# Telemetry parity: surfacing changes nothing
# ----------------------------------------------------------------------


class TestTelemetryParity:
    @pytest.fixture(scope="class")
    def plain_json(self, tmp_path_factory) -> str:
        out = tmp_path_factory.mktemp("parity") / "plain.json"
        assert (
            repro_main(
                [
                    "audit",
                    "--services",
                    "youtube",
                    "--scale",
                    "0.004",
                    "--profile",
                    "light",
                    "--seed",
                    "11",
                    "--json",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        return out.read_text()

    @pytest.mark.parametrize(
        "extra",
        [
            ["--jobs", "2", "--executor", "thread"],
            ["--jobs", "2", "--executor", "process"],
        ],
        ids=["thread", "process"],
    )
    def test_audit_output_identical_with_telemetry_surfaced(
        self, tmp_path, plain_json, extra
    ):
        out = tmp_path / "instrumented.json"
        status = repro_main(
            [
                "audit",
                "--services",
                "youtube",
                "--scale",
                "0.004",
                "--profile",
                "light",
                "--seed",
                "11",
                "--json",
                "--output",
                str(out),
                "--metrics-out",
                str(tmp_path / "metrics.prom"),
                "--spans-out",
                str(tmp_path / "spans.jsonl"),
                *extra,
            ]
        )
        assert status == 0
        assert out.read_bytes() == plain_json.encode()
        metrics_text = (tmp_path / "metrics.prom").read_text()
        assert "# TYPE repro_engine_runs_total counter" in metrics_text
        header = json.loads(
            (tmp_path / "spans.jsonl").read_text().splitlines()[0]
        )
        assert header["version"] == 1
        assert header["events"] >= 4  # shard_setup/execute/merge/assemble

    def test_process_workers_ship_metric_deltas_home(self, tmp_path):
        REGISTRY.reset()
        result = DiffAudit(CONFIG, jobs=2, executor="process").run()
        assert len(result.flows) > 0  # the audit actually ran
        snapshot = REGISTRY.snapshot()["metrics"]
        decode_packets = snapshot["repro_pcap_packets_total"]["samples"][0]
        assert decode_packets["value"] > 0  # counted in workers, merged here

    def test_stream_metrics_out_writes_snapshot(self, tmp_path):
        out = tmp_path / "stream.json"
        status = repro_main(
            [
                "stream",
                "--live",
                "--services",
                "youtube",
                "--scale",
                "0.004",
                "--profile",
                "light",
                "--seed",
                "11",
                "--json",
                "--output",
                str(tmp_path / "result.json"),
                "--metrics-out",
                str(out),
            ]
        )
        assert status == 0
        document = json.loads(out.read_text())
        samples = document["metrics"]["repro_stream_traces_total"]["samples"]
        assert samples[0]["value"] > 0


# ----------------------------------------------------------------------
# The live HTTP endpoint
# ----------------------------------------------------------------------


def http_get(port: int, path: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


class TestMetricsEndpoint:
    def test_scrape_with_live_stream_session(self):
        REGISTRY.reset()
        session = StreamAudit(config=CONFIG)
        result = session.run(LiveGeneratorSource(config=CONFIG))
        server = MetricsServer(
            port=0,
            stats_fn=lambda: {
                "traces": session.trace_count,
                "evictions": session.evictions,
            },
        )
        port = server.start()
        try:
            status, content_type, body = http_get(port, "/metrics")
            assert status == 200
            assert content_type.startswith("text/plain")
            assert "# TYPE repro_stream_traces_total counter" in body
            assert f"repro_stream_traces_total {session.trace_count}" in body
            # Between traces no decoder is resident: callback gauges
            # read the truth, which is zero.
            assert "repro_stream_flows_live 0" in body

            status, content_type, body = http_get(port, "/stats")
            assert status == 200
            assert content_type == "application/json"
            document = json.loads(body)
            assert document["stats"]["traces"] == session.trace_count
            assert document["metrics"]["version"] == 1

            status, _, _ = http_get(port, "/metrics?format=prometheus")
            assert status == 200
        finally:
            server.stop()
        assert result_to_json(result) == result_to_json(
            StreamAudit(config=CONFIG).run(LiveGeneratorSource(config=CONFIG))
        )

    def test_unknown_path_is_404(self):
        server = MetricsServer(port=0, registry=MetricsRegistry())
        port = server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                http_get(port, "/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_cli_rejects_unbindable_port(self, tmp_path):
        holder = MetricsServer(port=0, registry=MetricsRegistry())
        holder.start()
        try:
            status = repro_main(
                [
                    "stream",
                    "--live",
                    "--services",
                    "youtube",
                    "--scale",
                    "0.004",
                    "--metrics-port",
                    str(holder.port),
                ]
            )
            assert status == 2
        finally:
            holder.stop()
