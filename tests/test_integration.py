"""End-to-end integration tests over the full six-service corpus.

These assert the reproduction contracts: Table 4 grid exactness,
Figure 3/4 exactness, the §4.2 headline findings, and Table 1 / census
bands.  The shared ``full_result`` fixture runs the pipeline once.
"""

import pytest

from repro.audit.findings import FindingKind, Severity
from repro.model import ALL_COLUMNS, FlowCell, Presence, TraceColumn
from repro.ontology import ONTOLOGY
from repro.ontology.coppa_ccpa import OBSERVED_LEVEL3
from repro.ontology.nodes import Level2, Level3
from repro.services.profiles import FLOW_CELLS, LEVEL2_ROWS, all_profiles

SERVICES = ("duolingo", "minecraft", "quizlet", "roblox", "tiktok", "youtube")


class TestTable4Grid:
    def test_grid_matches_paper_exactly(self, full_result):
        """Every (service, category, column, cell) presence symbol of
        Table 4 is reproduced exactly."""
        mismatches = []
        for service, profile in all_profiles().items():
            for level2 in LEVEL2_ROWS:
                for column in ALL_COLUMNS:
                    for cell in FLOW_CELLS:
                        want = profile.presence(level2, column, cell)
                        got = full_result.flows.presence(service, level2, column, cell)
                        if want != got:
                            mismatches.append(
                                (service, level2.value, column.value, cell.value, want, got)
                            )
        assert not mismatches, mismatches

    def test_youtube_contacts_no_third_parties(self, full_result):
        """Paper §4.1.2: YouTube's flows never leave Google's estate."""
        for observation in full_result.flows.observations():
            if observation.service == "youtube":
                assert observation.party.is_first_party, observation

    def test_all_services_process_while_logged_out(self, full_result):
        """Paper §4.1.1 key takeaway."""
        for service in SERVICES:
            assert full_result.audits[service].processed_before_consent, service

    def test_all_but_youtube_share_with_ats_logged_out(self, full_result):
        for service in SERVICES:
            shared = full_result.audits[service].shared_with_ats_before_consent
            assert shared == (service != "youtube"), service


class TestFigure3:
    PAPER = {
        "duolingo": (19, 58, 51, 14),
        "minecraft": (31, 31, 18, 17),
        "quizlet": (31, 219, 234, 160),
        "roblox": (15, 20, 20, 4),
        "tiktok": (2, 6, 5, 3),
        "youtube": (0, 0, 0, 0),
    }

    def test_linkable_third_party_counts_exact(self, full_result):
        for service, expected in self.PAPER.items():
            measured = tuple(
                full_result.linkability[(service, column)].linkable_third_parties
                for column in ALL_COLUMNS
            )
            assert measured == expected, service

    def test_quizlet_dominates(self, full_result):
        """Paper: Quizlet had the highest counts except the child trace."""
        for column in (TraceColumn.ADOLESCENT, TraceColumn.ADULT, TraceColumn.LOGGED_OUT):
            quizlet = full_result.linkability[("quizlet", column)].linkable_third_parties
            for other in SERVICES:
                if other != "quizlet":
                    assert quizlet >= full_result.linkability[(other, column)].linkable_third_parties

    def test_adolescent_counts_near_adult(self, full_result):
        """Paper: 'high counts for the adolescent category similar to
        those of the adult' (219 vs 234 for Quizlet)."""
        adolescent = full_result.linkability[("quizlet", TraceColumn.ADOLESCENT)]
        adult = full_result.linkability[("quizlet", TraceColumn.ADULT)]
        assert adolescent.linkable_third_parties >= 0.85 * adult.linkable_third_parties


class TestFigure4:
    PAPER = {
        "duolingo": (11, 11, 11, 11),
        "minecraft": (9, 10, 11, 8),
        "quizlet": (10, 12, 13, 12),
        "roblox": (8, 9, 8, 8),
        "tiktok": (5, 7, 10, 5),
        "youtube": (0, 0, 0, 0),
    }

    def test_largest_set_sizes_exact(self, full_result):
        for service, expected in self.PAPER.items():
            measured = tuple(
                full_result.linkability[(service, column)].largest_set_size
                for column in ALL_COLUMNS
            )
            assert measured == expected, service

    def test_overall_largest_is_quizlet_adult_13(self, full_result):
        """Paper §4.2: the largest set across the dataset: Quizlet,
        adult trace, 13 data types."""
        best = max(
            full_result.linkability.values(), key=lambda r: r.largest_set_size
        )
        assert best.service == "quizlet"
        assert best.column is TraceColumn.ADULT
        assert best.largest_set_size == 13

    def test_quizlet_adult_set_contents(self, full_result):
        """The 13 types the paper lists for the largest set."""
        expected = {
            Level3.NETWORK_CONNECTION_INFORMATION,
            Level3.LANGUAGE,
            Level3.DEVICE_INFORMATION,
            Level3.APP_OR_SERVICE_USAGE,
            Level3.SERVICE_INFORMATION,
            Level3.PRODUCTS_AND_ADVERTISING,
            Level3.ACCOUNT_SETTINGS,
            Level3.ALIASES,
            Level3.NAME,
            Level3.LOGIN_INFORMATION,
            Level3.LOCATION_TIME,
            Level3.DEVICE_SOFTWARE_IDENTIFIERS,
            Level3.REASONABLY_LINKABLE_PERSONAL_IDENTIFIERS,
        }
        result = full_result.linkability[("quizlet", TraceColumn.ADULT)]
        assert set(result.largest_set) == expected


class TestCommonLinkableSet:
    def test_most_common_set_matches_paper(self, full_result):
        """§4.2: the most common linkable set has 5 data types."""
        expected = {
            Level3.NETWORK_CONNECTION_INFORMATION,
            Level3.LANGUAGE,
            Level3.SERVICE_INFORMATION,
            Level3.APP_OR_SERVICE_USAGE,
            Level3.DEVICE_INFORMATION,
        }
        assert set(full_result.common_linkable_set) == expected


class TestTable1:
    PAPER = {
        "duolingo": (122, 69),
        "minecraft": (136, 56),
        "quizlet": (532, 257),
        "roblox": (152, 24),
        "tiktok": (80, 14),
        "youtube": (76, 15),
    }

    def test_per_service_domains_within_12pct(self, full_result):
        for service, (domains, eslds) in self.PAPER.items():
            stats = full_result.dataset.per_service[service]
            assert abs(stats.domain_count - domains) <= max(4, domains * 0.12), service
            assert abs(stats.esld_count - eslds) <= max(3, eslds * 0.12), service

    def test_unique_totals_band(self, full_result):
        assert 850 <= full_result.dataset.total_domains <= 1_050  # paper 964
        assert 290 <= full_result.dataset.total_eslds <= 370  # paper 326

    def test_quizlet_largest_minecraft_heaviest_shape(self, full_result):
        per = full_result.dataset.per_service
        assert per["quizlet"].domain_count == max(s.domain_count for s in per.values())
        assert per["quizlet"].esld_count == max(s.esld_count for s in per.values())


class TestTable2:
    def test_observed_categories_cover_paper_19(self, full_result):
        """All 19 starred categories appear with strong support; the
        sporadic misclassification extras carry almost no weight —
        support-filtering at ≥20 observations recovers the paper's set
        exactly (the paper manually validated final results, §3.2.2)."""
        from collections import Counter

        support = Counter()
        for observation in full_result.flows.observations():
            support[observation.level3] += 1
        well_supported = {label for label, count in support.items() if count >= 20}
        assert well_supported == set(OBSERVED_LEVEL3)

    def test_sensors_and_history_never_observed(self, full_result):
        """Sensors / Personal History / Precise Geolocation are never
        *transmitted* (they are unstarred in Table 2); only scattered
        misclassifications could surface them, with minimal support."""
        from collections import Counter

        support = Counter()
        for observation in full_result.flows.observations():
            support[observation.level3] += 1
        strong = {label for label, count in support.items() if count >= 10}
        assert Level3.SENSOR_DATA not in strong
        assert Level3.PRECISE_GEOLOCATION not in strong


class TestCensus:
    def test_destination_class_bands(self, full_result):
        """§4.2: 320 first-party / 33 first-party ATS / 150 third-party
        / 485 third-party ATS; ≥212 organizations."""
        census = full_result.census
        assert 240 <= census.first_party <= 360
        assert 20 <= census.first_party_ats <= 45
        assert 60 <= census.third_party <= 180
        assert 400 <= census.third_party_ats <= 560
        assert census.organizations >= 212

    def test_ats_dominate_third_parties(self, full_result):
        census = full_result.census
        assert census.third_party_ats > census.third_party


class TestFigure5:
    def test_alluvial_edges_exist_for_all_but_youtube(self, full_result):
        services_with_edges = {edge.service for edge in full_result.alluvial}
        assert services_with_edges == set(SERVICES) - {"youtube"}

    def test_top_organizations_include_paper_names(self, full_result):
        from repro.linkability.alluvial import top_ats_organizations

        names = [org for org, _ in top_ats_organizations(full_result.alluvial)]
        for expected in ("Google LLC", "PubMatic, Inc.", "Amazon Technologies", "Adobe Inc."):
            assert expected in names, expected

    def test_top10_limit_per_service_column(self, full_result):
        from collections import Counter

        counts = Counter((e.service, e.column) for e in full_result.alluvial)
        assert all(count <= 10 for count in counts.values())


class TestAuditFindings:
    def test_every_service_has_findings(self, full_result):
        for service in SERVICES:
            assert full_result.audits[service].findings, service

    def test_all_but_youtube_have_policy_issues(self, full_result):
        """Paper: 'all but one of the services had privacy policies
        inconsistent with observed flows'."""
        for service in SERVICES:
            report = full_result.audits[service]
            if service == "youtube":
                assert not any(
                    f.kind is FindingKind.POLICY_INCONSISTENCY for f in report.findings
                ), service
            else:
                assert report.has_policy_inconsistency, service

    def test_no_age_differentiation_everywhere(self, full_result):
        """Paper: 'No service exhibited significantly different data
        processing treatment of the child and adolescent users'."""
        for service in SERVICES:
            for differential in full_result.audits[service].age_differentials:
                assert differential.similarity >= 0.75, (service, differential)

    def test_duolingo_child_ats_is_policy_inconsistency(self, full_result):
        findings = full_result.audits["duolingo"].findings
        assert any(
            f.kind is FindingKind.POLICY_INCONSISTENCY
            and f.column is TraceColumn.CHILD
            and f.cell is FlowCell.SHARE_3RD_ATS
            for f in findings
        )

    def test_mobile_only_flows_largely_shares(self, full_result):
        """Paper §4.1.2: mobile-only flows 'largely involved sharing
        data with third parties'.  (The paper's own Table 4 contains a
        couple of mobile-only *collect* cells — Minecraft logged-out —
        so the claim is dominant-share, not exclusive.)"""
        mobile_only = []
        for service in SERVICES:
            platform = full_result.audits[service].platform
            assert platform is not None
            mobile_only.extend(platform.mobile_only)
        assert mobile_only
        share_fraction = sum(1 for (_, _, cell) in mobile_only if cell.is_share) / len(
            mobile_only
        )
        assert share_fraction >= 0.7

    def test_high_severity_findings_for_protected_ages(self, full_result):
        for service in ("duolingo", "quizlet", "roblox"):
            highs = full_result.audits[service].high_severity()
            assert any(
                f.kind is FindingKind.PROTECTED_AGE_ATS_SHARING for f in highs
            ), service


class TestDataTypes:
    def test_unique_data_type_count_band(self, full_result):
        """Paper: 3,968 unique data types extracted."""
        assert 3_300 <= full_result.unique_data_types <= 4_600

    def test_unique_flow_count_band(self, full_result):
        """Paper: 5,508 unique data flows."""
        assert 3_500 <= len(full_result.flows.unique_flows()) <= 6_500
