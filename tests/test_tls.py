"""Unit and property tests for the TLS simulation and NSS key logs."""

import pytest
from hypothesis import given, strategies as st

from repro.net.tls import (
    KeyLog,
    TlsError,
    TlsSession,
    decrypt_stream,
    encrypt_stream,
    iter_records,
    looks_like_tls,
    unwrap_hello,
    wrap_with_hello,
)

SESSION = TlsSession.derive(b"test-session")
OTHER = TlsSession.derive(b"other-session")


class TestSession:
    def test_derive_deterministic(self):
        assert TlsSession.derive(b"x") == TlsSession.derive(b"x")
        assert TlsSession.derive(b"x") != TlsSession.derive(b"y")

    def test_bad_key_sizes_rejected(self):
        with pytest.raises(TlsError):
            TlsSession(client_random=b"short", secret=b"s" * 32)


class TestRecords:
    def test_round_trip(self):
        plaintext = b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"
        assert decrypt_stream(encrypt_stream(plaintext, SESSION), SESSION) == plaintext

    def test_wrong_key_gives_garbage(self):
        plaintext = b"secret payload bytes"
        garbled = decrypt_stream(encrypt_stream(plaintext, SESSION), OTHER)
        assert garbled != plaintext

    def test_large_payload_multiple_records(self):
        plaintext = b"A" * 40_000  # > MAX_RECORD_LEN
        stream = encrypt_stream(plaintext, SESSION)
        records = list(iter_records(stream))
        assert len(records) == 3
        assert decrypt_stream(stream, SESSION) == plaintext

    def test_truncated_record_raises(self):
        stream = encrypt_stream(b"hello", SESSION)
        with pytest.raises(TlsError):
            list(iter_records(stream[:-2]))

    def test_empty_stream(self):
        assert decrypt_stream(b"", SESSION) == b""

    @given(st.binary(min_size=0, max_size=5000))
    def test_round_trip_property(self, plaintext):
        assert decrypt_stream(encrypt_stream(plaintext, SESSION), SESSION) == plaintext

    def test_ciphertext_differs_from_plaintext(self):
        plaintext = b"hello world, this is sensitive"
        stream = encrypt_stream(plaintext, SESSION)
        assert plaintext not in stream


class TestHello:
    def test_wrap_unwrap(self):
        stream = encrypt_stream(b"payload", SESSION)
        wrapped = wrap_with_hello(stream, SESSION, sni="api.example.com")
        hello, rest = unwrap_hello(wrapped)
        assert hello is not None
        assert hello.sni == "api.example.com"
        assert hello.client_random == SESSION.client_random
        assert rest == stream

    def test_empty_sni(self):
        wrapped = wrap_with_hello(b"", SESSION, sni="")
        hello, _ = unwrap_hello(wrapped)
        assert hello.sni == ""

    def test_unwrap_non_tls_returns_none(self):
        hello, rest = unwrap_hello(b"GET / HTTP/1.1\r\n")
        assert hello is None
        assert rest == b"GET / HTTP/1.1\r\n"

    def test_looks_like_tls(self):
        wrapped = wrap_with_hello(encrypt_stream(b"x", SESSION), SESSION, "h")
        assert looks_like_tls(wrapped)
        assert looks_like_tls(encrypt_stream(b"x", SESSION))
        assert not looks_like_tls(b"POST /api HTTP/1.1\r\n")


class TestKeyLog:
    def test_record_and_lookup(self):
        log = KeyLog()
        log.record(SESSION)
        found = log.lookup(SESSION.client_random)
        assert found == SESSION
        assert log.lookup(OTHER.client_random) is None

    def test_nss_format_round_trip(self):
        log = KeyLog()
        log.record(SESSION)
        log.record(OTHER)
        text = log.to_text()
        assert text.count("CLIENT_TRAFFIC_SECRET_0") == 2
        parsed = KeyLog.from_text(text)
        assert parsed.lookup(SESSION.client_random) == SESSION

    def test_comments_and_other_labels_ignored(self):
        text = (
            "# comment line\n"
            "SERVER_HANDSHAKE_TRAFFIC_SECRET aa bb\n"
            f"CLIENT_TRAFFIC_SECRET_0 {SESSION.client_random.hex()} {SESSION.secret.hex()}\n"
        )
        log = KeyLog.from_text(text)
        assert log.lookup(SESSION.client_random) == SESSION

    def test_malformed_line_raises(self):
        with pytest.raises(TlsError):
            KeyLog.from_text("CLIENT_TRAFFIC_SECRET_0 only-two-fields\n")

    def test_file_round_trip(self, tmp_path):
        log = KeyLog()
        log.record(SESSION)
        path = tmp_path / "keys.log"
        log.write(path)
        assert KeyLog.read(path).lookup(SESSION.client_random) == SESSION
