"""Unit tests for the audit engine: policies, laws, differentials.

Synthetic flow tables isolate each rule; the full-corpus behaviour is
covered by the integration tests.
"""

import pytest

from repro.audit import (
    LawAuditor,
    audit_service,
    compare_age_groups,
    logged_out_flows,
    platform_differences,
    policy_for,
)
from repro.audit.differential import compare_columns
from repro.audit.findings import FindingKind, Severity
from repro.destinations.party import PartyLabel
from repro.flows.dataflow import FlowObservation, FlowTable
from repro.model import FlowCell, Platform, TraceColumn
from repro.ontology.nodes import Level2, Level3


def add_flow(
    table: FlowTable,
    service="duolingo",
    level3=Level3.ALIASES,
    party=PartyLabel.THIRD_PARTY_ATS,
    column=TraceColumn.CHILD,
    platform=Platform.WEB,
    fqdn="ads.tracker.example",
):
    table.add(
        FlowObservation(
            service=service,
            column=column,
            platform=platform,
            level3=level3,
            fqdn=fqdn,
            esld="tracker.example",
            party=party,
            raw_key="k",
        )
    )
    return table


class TestPolicyModels:
    def test_all_six_services_have_policies(self):
        for key in ("duolingo", "minecraft", "quizlet", "roblox", "tiktok", "youtube"):
            assert policy_for(key).service == key

    def test_unknown_service_raises(self):
        with pytest.raises(KeyError):
            policy_for("myspace")

    def test_nothing_disclosed_pre_consent(self):
        policy = policy_for("quizlet")
        for level2 in Level2:
            for cell in FlowCell:
                assert not policy.disclosed(TraceColumn.LOGGED_OUT, level2, cell)

    def test_baseline_first_party_collection_disclosed(self):
        policy = policy_for("duolingo")
        assert policy.disclosed(
            TraceColumn.ADULT, Level2.DEVICE_IDENTIFIERS, FlowCell.COLLECT_1ST
        )

    def test_duolingo_prohibits_child_ats_sharing(self):
        """Duolingo: 'third-party behavioral tracking is disabled' <16."""
        policy = policy_for("duolingo")
        assert policy.prohibited(
            TraceColumn.CHILD, Level2.GEOLOCATION, FlowCell.SHARE_3RD_ATS
        )
        assert not policy.prohibited(
            TraceColumn.ADULT, Level2.GEOLOCATION, FlowCell.SHARE_3RD_ATS
        )

    def test_tiktok_prohibits_child_ats_only(self):
        policy = policy_for("tiktok")
        assert policy.prohibited(
            TraceColumn.CHILD, Level2.DEVICE_IDENTIFIERS, FlowCell.SHARE_3RD_ATS
        )
        assert not policy.prohibited(
            TraceColumn.ADOLESCENT, Level2.DEVICE_IDENTIFIERS, FlowCell.SHARE_3RD_ATS
        )

    def test_roblox_prohibits_identifying_shares_for_minors(self):
        policy = policy_for("roblox")
        assert policy.prohibited(
            TraceColumn.CHILD, Level2.PERSONAL_IDENTIFIERS, FlowCell.SHARE_3RD
        )
        # but discloses non-identifying shares
        assert policy.disclosed(
            TraceColumn.CHILD,
            Level2.USER_INTERESTS_AND_BEHAVIORS,
            FlowCell.SHARE_3RD,
        )

    def test_youtube_disclosures_cover_first_party_ats(self):
        """The paper found YouTube's policy consistent with behaviour."""
        policy = policy_for("youtube")
        for level2 in Level2:
            assert policy.disclosed(
                TraceColumn.CHILD, level2, FlowCell.COLLECT_1ST_ATS
            )

    def test_prohibition_overrides_disclosure(self):
        policy = policy_for("duolingo")
        assert not policy.disclosed(
            TraceColumn.CHILD, Level2.USER_INTERESTS_AND_BEHAVIORS, FlowCell.SHARE_3RD_ATS
        )


class TestPreConsentRule:
    def test_logged_out_collection_flagged(self):
        table = add_flow(
            FlowTable(),
            column=TraceColumn.LOGGED_OUT,
            party=PartyLabel.FIRST_PARTY,
        )
        findings = LawAuditor("duolingo").pre_consent_findings(table)
        assert len(findings) == 1
        assert findings[0].kind is FindingKind.PRE_CONSENT_COLLECTION
        assert findings[0].severity is Severity.CONCERN

    def test_logged_out_ats_sharing_is_high_severity(self):
        table = add_flow(
            FlowTable(),
            column=TraceColumn.LOGGED_OUT,
            party=PartyLabel.THIRD_PARTY_ATS,
        )
        findings = LawAuditor("duolingo").pre_consent_findings(table)
        assert findings[0].kind is FindingKind.PRE_CONSENT_SHARING
        assert findings[0].severity is Severity.HIGH

    def test_logged_in_flows_not_flagged_here(self):
        table = add_flow(FlowTable(), column=TraceColumn.ADULT)
        assert LawAuditor("duolingo").pre_consent_findings(table) == []


class TestProtectedAgeRule:
    def test_child_ats_sharing_flagged(self):
        table = add_flow(FlowTable(), column=TraceColumn.CHILD)
        findings = LawAuditor("duolingo").protected_age_findings(table)
        assert len(findings) == 1
        assert findings[0].kind is FindingKind.PROTECTED_AGE_ATS_SHARING
        assert findings[0].law == "COPPA/CCPA"

    def test_adolescent_flagged_under_ccpa(self):
        table = add_flow(FlowTable(), column=TraceColumn.ADOLESCENT)
        findings = LawAuditor("duolingo").protected_age_findings(table)
        assert findings[0].law == "CCPA"

    def test_adult_ats_sharing_not_flagged(self):
        table = add_flow(FlowTable(), column=TraceColumn.ADULT)
        assert LawAuditor("duolingo").protected_age_findings(table) == []

    def test_non_ats_sharing_not_flagged_by_this_rule(self):
        table = add_flow(FlowTable(), column=TraceColumn.CHILD, party=PartyLabel.THIRD_PARTY)
        assert LawAuditor("duolingo").protected_age_findings(table) == []


class TestPolicyRule:
    def test_prohibited_flow_is_inconsistency(self):
        table = add_flow(FlowTable(), column=TraceColumn.CHILD)  # ATS share
        findings = LawAuditor("duolingo").policy_findings(table)
        kinds = {f.kind for f in findings}
        assert FindingKind.POLICY_INCONSISTENCY in kinds

    def test_undisclosed_flow_flagged(self):
        table = add_flow(
            FlowTable(),
            column=TraceColumn.ADULT,
            party=PartyLabel.THIRD_PARTY,
            level3=Level3.COARSE_GEOLOCATION,
        )
        findings = LawAuditor("duolingo").policy_findings(table)
        assert any(f.kind is FindingKind.UNDISCLOSED_FLOW for f in findings)

    def test_disclosed_flow_not_flagged(self):
        table = add_flow(
            FlowTable(),
            column=TraceColumn.ADULT,
            party=PartyLabel.FIRST_PARTY,
            level3=Level3.APP_OR_SERVICE_USAGE,
        )
        assert LawAuditor("duolingo").policy_findings(table) == []


class TestDifferentials:
    def test_identical_columns(self):
        table = FlowTable()
        for column in (TraceColumn.CHILD, TraceColumn.ADULT):
            add_flow(table, column=column)
        result = compare_columns(table, "duolingo", TraceColumn.CHILD, TraceColumn.ADULT)
        assert result.identical
        assert result.similarity == 1.0

    def test_differing_columns(self):
        table = add_flow(FlowTable(), column=TraceColumn.ADULT)
        result = compare_columns(table, "duolingo", TraceColumn.CHILD, TraceColumn.ADULT)
        assert not result.identical
        assert result.similarity == pytest.approx(31 / 32)  # 8 level-2 × 4 cells
        assert len(result.differences) == 1

    def test_compare_age_groups_returns_two(self):
        results = compare_age_groups(FlowTable(), "duolingo")
        assert [(r.left, r.right) for r in results] == [
            (TraceColumn.CHILD, TraceColumn.ADULT),
            (TraceColumn.ADOLESCENT, TraceColumn.ADULT),
        ]

    def test_logged_out_flows_listing(self):
        table = add_flow(FlowTable(), column=TraceColumn.LOGGED_OUT)
        flows = logged_out_flows(table, "duolingo")
        assert len(flows) == 1
        level2, cell, presence = flows[0]
        assert cell is FlowCell.SHARE_3RD_ATS

    def test_platform_differences(self):
        table = FlowTable()
        add_flow(table, platform=Platform.WEB, level3=Level3.LANGUAGE, party=PartyLabel.FIRST_PARTY)
        add_flow(table, platform=Platform.MOBILE, level3=Level3.ALIASES)
        result = platform_differences(table, "duolingo")
        assert len(result.web_only) == 1
        assert len(result.mobile_only) == 1
        assert result.mobile_only_all_third_party  # the ALIASES share


class TestServiceAuditReport:
    def test_full_audit_assembles(self):
        table = FlowTable()
        add_flow(table, column=TraceColumn.LOGGED_OUT)
        add_flow(table, column=TraceColumn.CHILD)
        report = audit_service(table, "duolingo")
        assert report.processed_before_consent
        assert report.shared_with_ats_before_consent
        assert report.has_policy_inconsistency
        assert report.high_severity()
        assert any("duolingo" in line for line in report.summary_lines())

    def test_no_age_differentiation_finding(self):
        table = FlowTable()
        for column in TraceColumn:
            add_flow(table, column=column)
        report = audit_service(table, "duolingo")
        assert any(
            f.kind is FindingKind.NO_AGE_DIFFERENTIATION for f in report.findings
        )

    def test_finding_one_line_format(self):
        table = add_flow(FlowTable(), column=TraceColumn.CHILD)
        report = audit_service(table, "duolingo")
        line = report.findings[0].one_line()
        assert "duolingo/child" in line
