"""Tests for the streaming live-audit subsystem.

The load-bearing guarantee: streaming a complete capture to EOF is
byte-identical to the batch audit of the same corpus — per-trace
(decoder vs ``decrypt_mobile_artifact``), per-corpus (session vs
``DiffAudit``), and under recoverable impairment — while peak memory
stays bounded by the eviction budget instead of corpus size.
"""

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import CorpusConfig, DiffAudit
from repro.capture.decrypt import decrypt_mobile_artifact
from repro.capture.pcapdroid import PcapdroidCapture
from repro.model import Platform
from repro.net.pcap import PcapReader
from repro.net.tls import KeyLog
from repro.pipeline.engine import generate_corpus_artifacts
from repro.pipeline.replay import ReplayCorpus
from repro.reporting.export import result_to_json
from repro.services.generator import TrafficGenerator
from repro.stream import (
    ArtifactStreamSource,
    EvictionPolicy,
    FollowPcapSource,
    IncrementalTraceDecoder,
    KeylogProvider,
    LiveGeneratorSource,
    SingleCaptureSource,
    StreamAudit,
    StreamError,
    snapshot_summary,
)
from repro.stream.impair import impair_pcap, impairment_profile, trace_impair_seed

CONFIG = CorpusConfig(scale=0.006, profile="light", seed=7, services=("tiktok",))


@pytest.fixture(scope="module")
def artifacts_dir(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("stream-artifacts")
    generate_corpus_artifacts(CONFIG, directory)
    return directory


@pytest.fixture(scope="module")
def batch_json(artifacts_dir) -> str:
    return result_to_json(
        DiffAudit(CONFIG, replay=ReplayCorpus.scan(artifacts_dir)).run()
    )


def mobile_artifacts(config):
    generator = TrafficGenerator(config)
    capture = PcapdroidCapture()
    for trace in generator.generate_corpus():
        if trace.platform is Platform.MOBILE:
            yield capture.capture(trace)


def stream_decode(pcap_bytes, keylog_text, policy=None):
    decoder = IncrementalTraceDecoder(KeyLog.from_text(keylog_text), policy)
    reader = PcapReader(pcap_bytes)
    for record in reader.iter_packets():
        decoder.feed(record.timestamp, record.data)
    result = decoder.finish()
    reader.close()
    return result, decoder


def decryption_fingerprint(decryption):
    return (
        [(r.flow, r.request.timestamp, r.request.to_bytes()) for r in decryption.requests],
        [(o.host, o.first_timestamp, o.frame_count) for o in decryption.opaque],
        decryption.packet_count,
        decryption.flow_count,
        decryption.undecryptable_flows,
    )


class TestDecoderParity:
    """Incremental decode == batch decode, trace by trace."""

    def test_clean_captures(self):
        count = 0
        for artifact in mobile_artifacts(CONFIG):
            blob = artifact.pcap_bytes()
            batch = decrypt_mobile_artifact(blob, artifact.keylog_text())
            streamed, _ = stream_decode(blob, artifact.keylog_text())
            assert decryption_fingerprint(streamed) == decryption_fingerprint(batch)
            count += 1
        assert count > 0

    @pytest.mark.parametrize(
        "profile_name",
        ["reorder", "duplicate", "reorder-dup", "lossy", "fragmented", "chaos"],
    )
    def test_impaired_captures(self, profile_name):
        artifact = next(iter(mobile_artifacts(CONFIG)))
        impaired = impair_pcap(
            artifact.pcap,
            impairment_profile(profile_name),
            trace_impair_seed(CONFIG.seed, artifact.meta.name),
        )
        blob = impaired.to_bytes()
        batch = decrypt_mobile_artifact(blob, artifact.keylog_text())
        streamed, _ = stream_decode(blob, artifact.keylog_text())
        assert decryption_fingerprint(streamed) == decryption_fingerprint(batch)

    def test_missing_keylog_all_opaque(self):
        artifact = next(iter(mobile_artifacts(CONFIG)))
        blob = artifact.pcap_bytes()
        batch = decrypt_mobile_artifact(blob, "")
        streamed, _ = stream_decode(blob, "")
        assert decryption_fingerprint(streamed) == decryption_fingerprint(batch)
        assert streamed.undecryptable_flows == streamed.flow_count

    def test_memory_drains_as_stream_arrives(self):
        artifact = next(iter(mobile_artifacts(CONFIG)))
        blob = artifact.pcap_bytes()
        _, decoder = stream_decode(blob, artifact.keylog_text())
        # In-order captures drain through: the decoder never buffers
        # more than a small fraction of the capture.
        assert decoder.high_water_bytes < len(blob) / 4
        assert decoder.buffered_bytes() == 0

    def test_budget_eviction_bounds_buffering(self):
        artifact = next(iter(mobile_artifacts(CONFIG)))
        blob = artifact.pcap_bytes()
        budget = 4096
        _, decoder = stream_decode(
            blob,
            artifact.keylog_text(),
            EvictionPolicy(byte_budget=budget, sweep_interval=8),
        )
        assert decoder.high_water_bytes <= budget + 2048  # one packet of slack


class TestSessionParity:
    """StreamAudit to EOF == the batch DiffAudit, byte for byte."""

    def test_artifact_stream_equals_batch(self, artifacts_dir, batch_json):
        session = StreamAudit(config=CONFIG)
        source = ArtifactStreamSource(
            corpus=ReplayCorpus.scan(artifacts_dir), services=CONFIG.services
        )
        assert result_to_json(session.run(source)) == batch_json

    def test_live_stream_equals_batch(self, batch_json):
        session = StreamAudit(config=CONFIG)
        streamed = result_to_json(session.run(LiveGeneratorSource(config=CONFIG)))
        assert streamed == batch_json

    def test_live_impaired_stream_equals_batch(self):
        impaired = dataclasses.replace(CONFIG, impair="reorder-dup")
        batch = result_to_json(DiffAudit(impaired).run())
        streamed = result_to_json(
            StreamAudit(config=impaired).run(LiveGeneratorSource(config=impaired))
        )
        assert streamed == batch

    def test_reorder_impairment_is_fully_recoverable(self, batch_json):
        # Pure reordering keeps packet timestamps and counts, so the
        # end-to-end audit equals the clean corpus in every measured
        # number — the only difference is the config block honestly
        # recording which link the traffic crossed.
        impaired = dataclasses.replace(CONFIG, impair="reorder")
        streamed = json.loads(
            result_to_json(
                StreamAudit(config=impaired).run(LiveGeneratorSource(config=impaired))
            )
        )
        clean = json.loads(result_to_json(DiffAudit(CONFIG).run()))
        assert streamed["config"].pop("impair") == "reorder"
        assert clean["config"].pop("impair") is None
        assert streamed == clean

    def test_snapshots_are_engine_outputs_and_monotone(self, artifacts_dir):
        from repro.pipeline.engine import EngineOutput

        session = StreamAudit(config=CONFIG, snapshot_every=3)
        source = ArtifactStreamSource(
            corpus=ReplayCorpus.scan(artifacts_dir), services=CONFIG.services
        )
        snapshots = list(session.snapshots(source))
        assert snapshots
        traces = [snapshot.trace_count for snapshot in snapshots]
        assert traces == sorted(traces)
        assert all(isinstance(snapshot, EngineOutput) for snapshot in snapshots)
        assert all(count % 3 == 0 for count in traces[:-1] + traces[:1])
        summary = snapshot_summary(snapshots[-1])
        assert summary["traces"] == snapshots[-1].trace_count
        json.dumps(summary)  # JSON-serializable digest

    def test_snapshots_do_not_perturb_final_result(self, artifacts_dir, batch_json):
        session = StreamAudit(config=CONFIG, snapshot_every=1)
        source = ArtifactStreamSource(
            corpus=ReplayCorpus.scan(artifacts_dir), services=CONFIG.services
        )
        for _ in session.snapshots(source):
            pass
        assert result_to_json(session.result()) == batch_json

    def test_unknown_service_trace_rejected(self, artifacts_dir):
        session = StreamAudit(
            config=dataclasses.replace(CONFIG, services=("duolingo",))
        )
        source = ArtifactStreamSource(
            corpus=ReplayCorpus.scan(artifacts_dir),
            services=("tiktok",),
        )
        with pytest.raises(StreamError, match="not part of this stream"):
            session.run(source)

    def test_missing_artifacts_for_configured_service(self, artifacts_dir):
        from repro.pipeline.replay import ReplayError

        with pytest.raises(ReplayError, match="no artifacts"):
            ArtifactStreamSource(
                corpus=ReplayCorpus.scan(artifacts_dir),
                services=("tiktok", "duolingo"),
            )

    def test_cache_dir_stays_warm_across_sessions(self, artifacts_dir, tmp_path):
        store_dir = tmp_path / "cache"
        source = ArtifactStreamSource(
            corpus=ReplayCorpus.scan(artifacts_dir), services=CONFIG.services
        )
        cold = StreamAudit(config=CONFIG, cache_dir=store_dir)
        cold_json = result_to_json(cold.run(source))
        warm = StreamAudit(config=CONFIG, cache_dir=store_dir)
        source = ArtifactStreamSource(
            corpus=ReplayCorpus.scan(artifacts_dir), services=CONFIG.services
        )
        warm_json = result_to_json(warm.run(source))
        assert warm_json == cold_json
        merged = warm.snapshot()
        # The warm session never reached the inner classifier.
        assert merged.store_misses == 0
        assert merged.store_hits > 0


class TestSingleCaptureAndFollow:
    def pick_pcap(self, artifacts_dir) -> tuple[Path, Path]:
        pcap = sorted(artifacts_dir.glob("*.pcap"))[0]
        return pcap, pcap.with_suffix(".keylog")

    def test_single_capture_source(self, artifacts_dir):
        pcap, keylog = self.pick_pcap(artifacts_dir)
        source = SingleCaptureSource(pcap=pcap, keylog=keylog)
        session = StreamAudit(
            config=dataclasses.replace(CONFIG, services=(source.meta().service,))
        )
        result = session.run(source)
        assert session.trace_count == 1
        assert session.packet_count > 0
        assert result.dataset.total_packets == session.packet_count

    def test_follow_mode_tails_growing_file(self, artifacts_dir, tmp_path):
        pcap, keylog = self.pick_pcap(artifacts_dir)
        grown = tmp_path / pcap.name
        grown_keylog = tmp_path / keylog.name
        grown_keylog.write_text(keylog.read_text())
        data = pcap.read_bytes()

        def writer():
            chunk = max(1, len(data) // 10)
            with open(grown, "wb") as handle:
                for start in range(0, len(data), chunk):
                    handle.write(data[start : start + chunk])
                    handle.flush()
                    time.sleep(0.05)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            source = FollowPcapSource(
                pcap=grown,
                keylog=grown_keylog,
                poll_interval=0.05,
                stop_after_idle=1.5,
            )
            session = StreamAudit(
                config=dataclasses.replace(CONFIG, services=(source.meta().service,))
            )
            followed = result_to_json(session.run(source))
        finally:
            thread.join()
        # The tailed result equals streaming the finished file.
        whole = StreamAudit(
            config=dataclasses.replace(CONFIG, services=("tiktok",))
        )
        assert followed == result_to_json(
            whole.run(SingleCaptureSource(pcap=pcap, keylog=keylog))
        )

    def test_keylog_provider_refreshes_on_miss(self, tmp_path):
        from repro.net.tls import TlsSession

        session = TlsSession.derive(b"refresh-test")
        path = tmp_path / "grow.keylog"
        path.write_text("")
        provider = KeylogProvider(path=path, follow=True)
        assert provider.lookup(session.client_random) is None
        log = KeyLog()
        log.record(session)
        path.write_text(log.to_text())
        # repro-lint: disable=D-NOW — bumping the keylog file's mtime to trigger the follow-mode reload; nothing audited carries this timestamp
        os.utime(path, (time.time() + 5, time.time() + 5))
        found = provider.lookup(session.client_random)
        assert found is not None and found.secret == session.secret

    def test_keylog_provider_without_file(self):
        provider = KeylogProvider(path=None)
        assert provider.lookup(b"\x00" * 32) is None


_MEMORY_SCRIPT = """
import json, resource, sys
from repro.net.tcp import FlowId, segment_request
from repro.net.tls import KeyLog, TlsSession, encrypt_stream, wrap_with_hello
from repro.stream.incremental import EvictionPolicy, IncrementalTraceDecoder

flows = int(sys.argv[1])
budget = int(sys.argv[2])
mode = sys.argv[3]

def flow_frames(index):
    # Pinned (keylog-less) TLS flows: the decoder goes opaque after the
    # hello and discards payload incrementally — the batch path instead
    # buffers and reassembles every flow in full.
    payload = bytes(range(256)) * 256  # 64 KiB per flow
    session = TlsSession.derive(b"mem-%d" % index)
    stream = wrap_with_hello(encrypt_stream(payload, session), session, sni="pinned.example")
    flow = FlowId(client_ip="10.0.0.1", client_port=40000 + index,
                  server_ip="34.0.0.1", server_port=443)
    return segment_request(stream, flow, timestamp=float(index))

def packets():
    if mode == "holes":
        # Adversarial: every flow's SYN (the reassembly anchor) is
        # withheld until all data segments of all flows have arrived,
        # so nothing can drain — only the byte-budget LRU eviction
        # keeps buffering bounded.
        anchors = []
        for index in range(flows):
            frames = flow_frames(index)
            anchors.append(frames[0])
            for frame in frames[1:]:
                yield frame.timestamp, frame.to_bytes()
        for frame in anchors:
            yield frame.timestamp, frame.to_bytes()
        return
    for index in range(flows):
        for frame in flow_frames(index):
            yield frame.timestamp, frame.to_bytes()

decoder = IncrementalTraceDecoder(KeyLog(), EvictionPolicy(byte_budget=budget))
total = 0
for ts, data in packets():
    total += len(data)
    decoder.feed(ts, data)
result = decoder.finish()
assert result.flow_count >= flows
print(json.dumps({
    "bytes": total,
    "high_water": decoder.high_water_bytes,
    "evictions": decoder.evictions,
    "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _run_memory_probe(flows: int, budget: int, mode: str = "inorder") -> dict:
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = f"{root}{os.pathsep}{env.get('PYTHONPATH', '')}"
    completed = subprocess.run(
        [sys.executable, "-c", _MEMORY_SCRIPT, str(flows), str(budget), mode],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(completed.stdout)


class TestBoundedMemory:
    """Peak RSS tracks the eviction budget, not the corpus size."""

    def test_peak_rss_bounded_by_budget_not_corpus(self):
        budget = 256 * 1024
        small = _run_memory_probe(24, budget)
        large = _run_memory_probe(96, budget)
        # The feed quadrupled; buffered bytes stayed under the budget
        # and the process footprint stayed flat.
        assert large["bytes"] > small["bytes"] * 3.5
        assert small["high_water"] <= budget + 4096
        assert large["high_water"] <= budget + 4096
        assert large["peak_rss_kb"] < small["peak_rss_kb"] * 1.35

    def test_budget_eviction_binds_under_adversarial_holes(self):
        budget = 256 * 1024
        probe = _run_memory_probe(48, budget, mode="holes")
        # With every flow's anchor withheld nothing drains, so the LRU
        # eviction must fire — and buffering still respects the budget.
        assert probe["evictions"] > 0
        assert probe["high_water"] <= budget + 4096
        assert probe["bytes"] > budget * 10
