"""Golden-corpus parity: the guard rail around the decode rewrite.

The corpus is *pinned, not stored*: generation is fully deterministic
for a config, so instead of committing ~2 MB of binary artifacts the
repo checks in ``tests/data/golden_corpus.sha256`` — the SHA-256 of
every artifact the golden config produces.  The fixture regenerates
the corpus and the first test proves the bytes still match the pinned
digests; the remaining tests then hold every decode API to identical
results on those exact bytes:

* eager (:class:`PcapFile`), streaming (raw bytes through
  :class:`PcapReader`), and mmap (file path) decoding must produce
  byte-identical :class:`ParsedTrace` output per artifact;
* replaying the corpus through the engine sequentially and with
  ``--jobs 2`` (which exercises sub-shard splitting) must serialize to
  the same JSON document as the in-memory audit of the same config.

Regenerate the digest file only for an *intentional* generator change:
``PYTHONPATH=src python -m repro generate --output D --scale 0.002
--profile light --seed 11 --services tiktok youtube`` then
``(cd D && sha256sum $(ls | sort)) > tests/data/golden_corpus.sha256``.
"""

import hashlib
from pathlib import Path

import pytest

from repro import CorpusConfig, DiffAudit
from repro.capture.decrypt import decrypt_mobile_artifact
from repro.net.pcap import PcapFile
from repro.pipeline.corpus import parsed_trace_from_mobile
from repro.pipeline.engine import generate_corpus_artifacts
from repro.pipeline.replay import ReplayCorpus
from repro.reporting.export import result_to_json

GOLDEN_CONFIG = CorpusConfig(
    seed=11, scale=0.002, profile="light", services=("tiktok", "youtube")
)
DIGEST_FILE = Path(__file__).parent / "data" / "golden_corpus.sha256"


@pytest.fixture(scope="module")
def golden_corpus(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("golden-corpus")
    generate_corpus_artifacts(GOLDEN_CONFIG, directory)
    return directory


def _pinned_digests() -> dict[str, str]:
    digests = {}
    for line in DIGEST_FILE.read_text(encoding="utf-8").splitlines():
        digest, _, name = line.strip().partition("  ")
        digests[name] = digest
    return digests


class TestPinnedBytes:
    def test_corpus_matches_checked_in_digests(self, golden_corpus):
        """Every artifact byte is pinned; drift fails loudly here."""
        expected = _pinned_digests()
        actual = {
            path.name: hashlib.sha256(path.read_bytes()).hexdigest()
            for path in golden_corpus.iterdir()
            if path.is_file()
        }
        assert set(actual) == set(expected), "artifact file set changed"
        mismatched = sorted(
            name for name, digest in actual.items() if expected[name] != digest
        )
        assert not mismatched, f"artifact bytes drifted: {mismatched}"


class TestDecodeApiParity:
    def test_eager_streaming_and_mmap_decode_identically(self, golden_corpus):
        corpus = ReplayCorpus.scan(golden_corpus)
        pcap_units = [unit for unit in corpus.units if unit.pcap is not None]
        assert pcap_units, "golden corpus must contain mobile traces"
        for unit in pcap_units:
            keylog_text = (
                unit.keylog.read_text(encoding="utf-8") if unit.keylog else ""
            )
            raw = unit.pcap.read_bytes()
            eager = parsed_trace_from_mobile(
                unit.meta, PcapFile.from_bytes(raw), keylog_text
            )
            streaming = parsed_trace_from_mobile(unit.meta, raw, keylog_text)
            mmapped = parsed_trace_from_mobile(unit.meta, unit.pcap, keylog_text)
            assert streaming == eager, f"streaming decode diverged for {unit.meta.name}"
            assert mmapped == eager, f"mmap decode diverged for {unit.meta.name}"

    def test_streaming_decode_recovers_requests(self, golden_corpus):
        corpus = ReplayCorpus.scan(golden_corpus)
        recovered = 0
        for unit in corpus.units:
            if unit.pcap is None:
                continue
            keylog_text = (
                unit.keylog.read_text(encoding="utf-8") if unit.keylog else ""
            )
            decryption = decrypt_mobile_artifact(
                unit.pcap.read_bytes(), keylog_text
            )
            assert decryption.packet_count > 0
            recovered += len(decryption.requests)
        assert recovered > 0, "no plaintext recovered from the golden corpus"


class TestEngineParityOnGoldenCorpus:
    def test_replay_sequential_parallel_and_in_memory_agree(self, golden_corpus):
        """The whole pipeline, all three ways, to one JSON document.

        ``jobs=2`` exercises the size-balanced scheduler's sub-shard
        splitting and unordered submission; output must stay
        byte-identical to the sequential replay *and* to the in-memory
        audit that never touched the artifacts.
        """
        sequential = result_to_json(
            DiffAudit(GOLDEN_CONFIG, replay=golden_corpus, jobs=1).run()
        )
        parallel = result_to_json(
            DiffAudit(GOLDEN_CONFIG, replay=golden_corpus, jobs=2).run()
        )
        in_memory = result_to_json(DiffAudit(GOLDEN_CONFIG).run())
        assert sequential == in_memory
        assert parallel == in_memory


class TestIncrementalParityOnGoldenCorpus:
    """Cold == fully-warm == delta, byte for byte, on the pinned corpus.

    The golden corpus is module-scoped and read-only; every test keeps
    its unit-result cache in its own ``tmp_path`` and the growth test
    generates a corpus of its own.
    """

    def _run(self, corpus, cache, config=GOLDEN_CONFIG, **kwargs):
        result, profile = DiffAudit(
            config, replay=corpus, cache_dir=cache, **kwargs
        ).run_profiled()
        return result_to_json(result), profile["engine"]

    def test_cold_and_warm_match_in_memory_across_executors(
        self, golden_corpus, tmp_path
    ):
        baseline = result_to_json(DiffAudit(GOLDEN_CONFIG).run())
        cache = tmp_path / "cache"
        cold, cold_engine = self._run(golden_corpus, cache)
        assert cold == baseline
        assert cold_engine["unit_hits"] == 0
        total = cold_engine["unit_misses"]
        assert total > 0
        # Fully-warm re-audits: every jobs/executor combination must
        # reuse every unit and still serialize to the same bytes.
        for kwargs in (
            {"jobs": 1},
            {"jobs": 2, "executor": "thread"},
            {"jobs": 2, "executor": "process"},
        ):
            warm, engine = self._run(golden_corpus, cache, **kwargs)
            assert warm == baseline, f"warm run diverged for {kwargs}"
            assert engine["unit_hits"] == total, f"partial reuse for {kwargs}"
            assert engine["unit_misses"] == 0, f"recompute under {kwargs}"

    def test_delta_run_recomputes_only_grown_units(self, tmp_path):
        """Grow the corpus by one service; only its units recompute."""
        corpus = tmp_path / "corpus"
        cache = tmp_path / "cache"
        tiktok_only = CorpusConfig(
            seed=11, scale=0.002, profile="light", services=("tiktok",)
        )
        generate_corpus_artifacts(tiktok_only, corpus)
        first, first_engine = self._run(
            corpus, cache, config=tiktok_only, jobs=2, executor="process"
        )
        del first

        generate_corpus_artifacts(
            CorpusConfig(
                seed=11, scale=0.002, profile="light", services=("youtube",)
            ),
            corpus,
        )
        grown = ReplayCorpus.scan(corpus)
        new_units = len(grown.units_for("youtube"))
        assert new_units > 0
        delta, delta_engine = self._run(corpus, cache)
        assert delta_engine["unit_hits"] == first_engine["unit_misses"]
        assert delta_engine["unit_misses"] == new_units
        # Byte parity with a from-scratch audit of the grown corpus.
        fresh = result_to_json(DiffAudit(GOLDEN_CONFIG, replay=corpus).run())
        assert delta == fresh
