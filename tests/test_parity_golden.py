"""Golden-corpus parity: the guard rail around the decode rewrite.

The corpus is *pinned, not stored*: generation is fully deterministic
for a config, so instead of committing ~2 MB of binary artifacts the
repo checks in ``tests/data/golden_corpus.sha256`` — the SHA-256 of
every artifact the golden config produces.  The fixture regenerates
the corpus and the first test proves the bytes still match the pinned
digests; the remaining tests then hold every decode API to identical
results on those exact bytes:

* eager (:class:`PcapFile`), streaming (raw bytes through
  :class:`PcapReader`), and mmap (file path) decoding must produce
  byte-identical :class:`ParsedTrace` output per artifact;
* replaying the corpus through the engine sequentially and with
  ``--jobs 2`` (which exercises sub-shard splitting) must serialize to
  the same JSON document as the in-memory audit of the same config.

Regenerate the digest file only for an *intentional* generator change:
``PYTHONPATH=src python -m repro generate --output D --scale 0.002
--profile light --seed 11 --services tiktok youtube`` then
``(cd D && sha256sum $(ls | sort)) > tests/data/golden_corpus.sha256``.
"""

import hashlib
from pathlib import Path

import pytest

from repro import CorpusConfig, DiffAudit
from repro.capture.decrypt import decrypt_mobile_artifact
from repro.net.pcap import PcapFile
from repro.pipeline.corpus import parsed_trace_from_mobile
from repro.pipeline.engine import generate_corpus_artifacts
from repro.pipeline.replay import ReplayCorpus
from repro.reporting.export import result_to_json

GOLDEN_CONFIG = CorpusConfig(
    seed=11, scale=0.002, profile="light", services=("tiktok", "youtube")
)
DIGEST_FILE = Path(__file__).parent / "data" / "golden_corpus.sha256"


@pytest.fixture(scope="module")
def golden_corpus(tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("golden-corpus")
    generate_corpus_artifacts(GOLDEN_CONFIG, directory)
    return directory


def _pinned_digests() -> dict[str, str]:
    digests = {}
    for line in DIGEST_FILE.read_text(encoding="utf-8").splitlines():
        digest, _, name = line.strip().partition("  ")
        digests[name] = digest
    return digests


class TestPinnedBytes:
    def test_corpus_matches_checked_in_digests(self, golden_corpus):
        """Every artifact byte is pinned; drift fails loudly here."""
        expected = _pinned_digests()
        actual = {
            path.name: hashlib.sha256(path.read_bytes()).hexdigest()
            for path in golden_corpus.iterdir()
            if path.is_file()
        }
        assert set(actual) == set(expected), "artifact file set changed"
        mismatched = sorted(
            name for name, digest in actual.items() if expected[name] != digest
        )
        assert not mismatched, f"artifact bytes drifted: {mismatched}"


class TestDecodeApiParity:
    def test_eager_streaming_and_mmap_decode_identically(self, golden_corpus):
        corpus = ReplayCorpus.scan(golden_corpus)
        pcap_units = [unit for unit in corpus.units if unit.pcap is not None]
        assert pcap_units, "golden corpus must contain mobile traces"
        for unit in pcap_units:
            keylog_text = (
                unit.keylog.read_text(encoding="utf-8") if unit.keylog else ""
            )
            raw = unit.pcap.read_bytes()
            eager = parsed_trace_from_mobile(
                unit.meta, PcapFile.from_bytes(raw), keylog_text
            )
            streaming = parsed_trace_from_mobile(unit.meta, raw, keylog_text)
            mmapped = parsed_trace_from_mobile(unit.meta, unit.pcap, keylog_text)
            assert streaming == eager, f"streaming decode diverged for {unit.meta.name}"
            assert mmapped == eager, f"mmap decode diverged for {unit.meta.name}"

    def test_streaming_decode_recovers_requests(self, golden_corpus):
        corpus = ReplayCorpus.scan(golden_corpus)
        recovered = 0
        for unit in corpus.units:
            if unit.pcap is None:
                continue
            keylog_text = (
                unit.keylog.read_text(encoding="utf-8") if unit.keylog else ""
            )
            decryption = decrypt_mobile_artifact(
                unit.pcap.read_bytes(), keylog_text
            )
            assert decryption.packet_count > 0
            recovered += len(decryption.requests)
        assert recovered > 0, "no plaintext recovered from the golden corpus"


class TestEngineParityOnGoldenCorpus:
    def test_replay_sequential_parallel_and_in_memory_agree(self, golden_corpus):
        """The whole pipeline, all three ways, to one JSON document.

        ``jobs=2`` exercises the size-balanced scheduler's sub-shard
        splitting and unordered submission; output must stay
        byte-identical to the sequential replay *and* to the in-memory
        audit that never touched the artifacts.
        """
        sequential = result_to_json(
            DiffAudit(GOLDEN_CONFIG, replay=golden_corpus, jobs=1).run()
        )
        parallel = result_to_json(
            DiffAudit(GOLDEN_CONFIG, replay=golden_corpus, jobs=2).run()
        )
        in_memory = result_to_json(DiffAudit(GOLDEN_CONFIG).run())
        assert sequential == in_memory
        assert parallel == in_memory
