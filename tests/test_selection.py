"""Unit tests for service selection (§2.2) and the Tranco ranking."""

import pytest

from repro.destinations.tranco import default_tranco
from repro.services.selection import (
    Audience,
    StoreApp,
    meets_criteria,
    select_services,
    selection_summary,
    top100_snapshot,
)


class TestSelectionFunnel:
    def test_chart_has_100_entries(self):
        chart = top100_snapshot()
        assert len(chart) == 100
        assert sorted(app.rank for app in chart) == list(range(1, 101))

    def test_exactly_the_papers_six_qualify(self):
        selected = select_services()
        assert [app.name for app in selected] == [
            "TikTok",
            "YouTube",
            "Roblox",
            "Minecraft",
            "Duolingo",
            "Quizlet",
        ]

    def test_general_audience_without_accounts_rejected(self):
        app = StoreApp(
            name="X",
            key="x",
            rank=1,
            category="games",
            audience=Audience.GENERAL,
            has_accounts=False,
            downloads_billions=1.0,
        )
        assert not meets_criteria(app)

    def test_accounts_without_general_audience_rejected(self):
        app = StoreApp(
            name="X",
            key="x",
            rank=1,
            category="dating",
            audience=Audience.ADULTS_ONLY,
            has_accounts=True,
            downloads_billions=1.0,
        )
        assert not meets_criteria(app)

    def test_summary_matches_paper_shape(self):
        summary = selection_summary()
        assert summary["chart_size"] == 100
        assert len(summary["selected"]) == 6
        # Paper: "cumulatively downloaded more than 12 billion times".
        assert summary["cumulative_downloads_billions"] >= 10.0


class TestTranco:
    def test_services_in_top_100(self):
        """Paper §2.2: Roblox, TikTok, YouTube among the top 100."""
        tranco = default_tranco()
        for domain in ("roblox.com", "tiktok.com", "youtube.com"):
            assert tranco.in_top(domain, 100), domain

    def test_all_six_in_top_5000(self):
        tranco = default_tranco()
        for domain in (
            "duolingo.com",
            "minecraft.net",
            "quizlet.com",
            "roblox.com",
            "tiktok.com",
            "youtube.com",
        ):
            assert tranco.in_top(domain, 5_000), domain

    def test_every_universe_esld_ranked(self):
        from repro.destinations.dataset import default_universe

        tranco = default_tranco()
        assert len(tranco) == len(default_universe().eslds())

    def test_ranks_unique(self):
        tranco = default_tranco()
        entries = tranco.top(len(tranco))
        ranks = [entry.rank for entry in entries]
        assert len(ranks) == len(set(ranks))

    def test_unknown_domain_unranked(self):
        assert default_tranco().rank_of("not-in-universe.example") is None

    def test_top_ordering(self):
        top = default_tranco().top(10)
        assert [e.rank for e in top] == sorted(e.rank for e in top)
        assert top[0].domain == "google.com"
