"""Unit tests for the audit-path profiling layer."""

import json

import pytest

from repro import CorpusConfig, DiffAudit
from repro.pipeline.profile import (
    ENGINE_PROFILE_FIELDS,
    PROFILE_VERSION,
    SHARD_STAGES,
    StageTimer,
    profile_document,
    validate_profile,
    write_profile,
)


def _engine_section(**overrides) -> dict:
    section = {
        "executor": "sequential",
        "jobs": 1,
        "tasks": 2,
        "shard_setup_s": 0.01,
        "execute_s": 1.5,
        "unpack_s": 0.0,
        "merge_s": 0.02,
        "task_bytes": 0,
        "result_bytes": 0,
        "stages": {"generate": 1.2, "classify": 0.2},
    }
    section.update(overrides)
    return section


def _document(**overrides) -> dict:
    document = profile_document("audit", 1.6, _engine_section(), 0.1)
    document.update(overrides)
    return document


class TestStageTimer:
    def test_stage_accumulates_wall_time(self):
        timer = StageTimer()
        with timer.stage("generate"):
            pass
        with timer.stage("generate"):
            pass
        assert timer.get("generate") >= 0.0
        assert set(timer.times) == {"generate"}

    def test_stage_records_on_exception(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("classify"):
                raise RuntimeError("boom")
        assert "classify" in timer.times

    def test_add_and_get(self):
        timer = StageTimer()
        timer.add("decode", 0.5)
        timer.add("decode", 0.25)
        assert timer.get("decode") == pytest.approx(0.75)
        assert timer.get("absent") == 0.0

    def test_merge_folds_stage_tables(self):
        left, right = StageTimer(), StageTimer()
        left.add("extract", 1.0)
        right.add("extract", 0.5)
        right.add("label", 0.1)
        left.merge(right.times)
        assert left.get("extract") == pytest.approx(1.5)
        assert left.get("label") == pytest.approx(0.1)

    def test_as_dict_is_sorted_and_rounded(self):
        timer = StageTimer()
        timer.add("label", 0.123456789)
        timer.add("decode", 1.0)
        table = timer.as_dict()
        assert list(table) == ["decode", "label"]
        assert table["label"] == 0.123457


class TestProfileDocument:
    def test_document_shape(self):
        document = _document()
        assert document["version"] == PROFILE_VERSION
        assert document["workload"] == "audit"
        assert document["wall_time_s"] == 1.6
        assert document["downstream_s"] == 0.1
        assert document["engine"]["executor"] == "sequential"

    def test_valid_document_passes(self):
        validate_profile(_document())

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError, match="must be a mapping"):
            validate_profile(["not", "a", "profile"])

    @pytest.mark.parametrize(
        "field", ["version", "workload", "wall_time_s", "engine", "downstream_s"]
    )
    def test_each_top_level_field_required(self, field):
        document = _document()
        del document[field]
        with pytest.raises(ValueError, match="missing fields"):
            validate_profile(document)

    def test_wrong_version_rejected(self):
        with pytest.raises(ValueError, match="unsupported profile version"):
            validate_profile(_document(version=99))

    @pytest.mark.parametrize("field", ENGINE_PROFILE_FIELDS)
    def test_each_engine_field_required(self, field):
        engine = _engine_section()
        del engine[field]
        with pytest.raises(ValueError, match="engine section missing"):
            validate_profile(_document(engine=engine))

    def test_unknown_stage_rejected(self):
        engine = _engine_section(stages={"generate": 1.0, "teleport": 0.5})
        with pytest.raises(ValueError, match="unknown stages"):
            validate_profile(_document(engine=engine))

    def test_negative_stage_time_rejected(self):
        engine = _engine_section(stages={"generate": -0.1})
        with pytest.raises(ValueError, match="non-negative"):
            validate_profile(_document(engine=engine))

    def test_non_numeric_wall_time_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            validate_profile(_document(wall_time_s="fast"))

    def test_known_stage_names_validate(self):
        engine = _engine_section(
            stages={stage: 0.0 for stage in SHARD_STAGES}
        )
        validate_profile(_document(engine=engine))


class TestWriteProfile:
    def test_writes_json_and_creates_parents(self, tmp_path):
        target = tmp_path / "nested" / "profile.json"
        written = write_profile(target, _document())
        assert written == target
        validate_profile(json.loads(target.read_text()))

    def test_invalid_document_never_written(self, tmp_path):
        target = tmp_path / "profile.json"
        with pytest.raises(ValueError):
            write_profile(target, {"version": PROFILE_VERSION})
        assert not target.exists()


class TestRealRunProfile:
    def test_run_profiled_produces_valid_document(self):
        config = CorpusConfig(scale=0.002, seed=3, services=("youtube",))
        result, profile = DiffAudit(config).run_profiled()
        validate_profile(profile)
        assert profile["workload"] == "audit"
        assert result.flows is not None
        engine = profile["engine"]
        assert engine["executor"] == "sequential"
        assert engine["jobs"] == 1
        assert engine["tasks"] == 1
        # A generated corpus spends its time generating, classifying
        # and flow-building — and the attribution must account for a
        # real share of the wall clock.
        stages = engine["stages"]
        for stage in ("setup", "generate", "extract", "classify", "flow_build"):
            assert stage in stages
        assert "decode" not in stages  # nothing replayed from disk
        assert sum(stages.values()) <= profile["wall_time_s"]
        assert profile["wall_time_s"] > 0
