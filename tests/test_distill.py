"""Unit tests for classifier distillation (paper §3.2.2 extension)."""

import pytest

from repro.datatypes.distill import DistilledClassifier, distill
from repro.datatypes.majority import MajorityVoteClassifier
from repro.flows.builder import GroundTruthClassifier
from repro.ontology.nodes import Level3

TRAINING = {
    "email": Level3.CONTACT_INFORMATION,
    "email_address": Level3.CONTACT_INFORMATION,
    "contact_email": Level3.CONTACT_INFORMATION,
    "phone_number": Level3.CONTACT_INFORMATION,
    "advertising_id": Level3.DEVICE_SOFTWARE_IDENTIFIERS,
    "cookie_id": Level3.DEVICE_SOFTWARE_IDENTIFIERS,
    "tracking_id": Level3.DEVICE_SOFTWARE_IDENTIFIERS,
    "idfa": Level3.DEVICE_SOFTWARE_IDENTIFIERS,
    "latitude": Level3.PRECISE_GEOLOCATION,
    "longitude": Level3.PRECISE_GEOLOCATION,
    "gps_coords": Level3.PRECISE_GEOLOCATION,
}


class TestDistilledClassifier:
    def test_requires_training(self):
        with pytest.raises(RuntimeError):
            DistilledClassifier().classify("email")

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            DistilledClassifier().fit({})

    def test_learns_training_keys(self):
        student = DistilledClassifier().fit(TRAINING)
        for key, label in TRAINING.items():
            assert student.classify(key).label is label, key

    def test_generalizes_to_shape_variants(self):
        """Unseen decorations of known vocabulary still classify."""
        student = DistilledClassifier().fit(TRAINING)
        assert student.classify("usr_email").label is Level3.CONTACT_INFORMATION
        assert (
            student.classify("device_advertising_id").label
            is Level3.DEVICE_SOFTWARE_IDENTIFIERS
        )

    def test_tokenless_key_unlabeled(self):
        student = DistilledClassifier().fit(TRAINING)
        verdict = student.classify("__123__")
        assert verdict.label is None
        assert verdict.confidence == 0.0

    def test_confidence_in_unit_interval(self):
        student = DistilledClassifier().fit(TRAINING)
        for key in ("email", "lat_lng", "random_words_here"):
            assert 0.0 <= student.classify(key).confidence <= 1.0

    def test_parameter_count_small(self):
        student = DistilledClassifier().fit(TRAINING)
        assert 0 < student.parameter_count() < 200


class TestDistillPipeline:
    def test_oracle_teacher_gives_strong_student(self):
        # Enough shape variants that held-out keys share vocabulary
        # with training keys (the realistic regime).
        truth: dict[str, Level3] = {}
        for base, label in TRAINING.items():
            truth[base] = label
            for prefix in ("ga", "fb", "usr", "dev", "client", "ctx"):
                truth[f"{prefix}_{base}"] = label
        teacher = GroundTruthClassifier(truth=truth)
        student, report = distill(
            teacher, list(truth), truth=truth, holdout_fraction=0.25
        )
        assert report.training_size > 0
        assert report.teacher_agreement >= 0.7
        assert report.teacher_accuracy == 1.0
        assert report.student_accuracy >= 0.7

    def test_bad_holdout_rejected(self):
        teacher = GroundTruthClassifier(truth=TRAINING)
        with pytest.raises(ValueError):
            distill(teacher, list(TRAINING), holdout_fraction=1.5)

    def test_full_pipeline_with_llm_teacher(self, payload_factory):
        """Paper claim: the labeled output can train a local model that
        retains the teacher's usefulness."""
        teacher = MajorityVoteClassifier(confidence_mode="avg")
        keys = sorted(payload_factory.registry.truth)[:1200]
        truth = {k: payload_factory.registry.truth[k] for k in keys}
        student, report = distill(teacher, keys, truth=truth)
        assert report.student_parameters < 5_000  # genuinely small
        assert report.teacher_agreement >= 0.55
        # Student within 10 points of the (noisy) teacher on truth.
        assert report.student_accuracy >= report.teacher_accuracy - 0.10

    def test_deterministic(self, payload_factory):
        teacher = GroundTruthClassifier(truth=payload_factory.registry.truth)
        keys = sorted(payload_factory.registry.truth)[:300]
        _, first = distill(teacher, keys, truth=payload_factory.registry.truth)
        _, second = distill(teacher, keys, truth=payload_factory.registry.truth)
        assert first == second
