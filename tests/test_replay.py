"""Tests for the artifact replay pipeline (pipeline/replay.py).

The heart of the matter is the parity guarantee: ``generate`` then
``audit --from-artifacts`` must produce the same DiffAuditResult —
byte-identical JSON — as a direct in-memory audit of the same config,
sequentially and across worker processes.
"""

import json
import shutil

import pytest

from repro import CorpusConfig, DiffAudit
from repro.capture.base import TraceMeta
from repro.model import AgeGroup, Platform, TraceKind
from repro.pipeline.engine import generate_corpus_artifacts
from repro.pipeline.replay import (
    MANIFEST_NAME,
    ReplayCorpus,
    ReplayError,
    TraceUnit,
    load_parsed_trace,
    meta_from_name,
    read_manifest,
    replay_config,
)
from repro.reporting.export import flows_to_csv, result_to_json

CONFIG = CorpusConfig(scale=0.003, seed=7, services=("youtube",))


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    directory = tmp_path_factory.mktemp("artifacts")
    count = generate_corpus_artifacts(CONFIG, directory)
    return directory, count


@pytest.fixture(scope="module")
def direct_result():
    return DiffAudit(CONFIG).run()


@pytest.fixture(scope="module")
def replayed_result(artifacts):
    directory, _ = artifacts
    return DiffAudit(CONFIG, replay=directory).run()


class TestManifest:
    def test_generate_writes_manifest(self, artifacts):
        directory, count = artifacts
        manifest = read_manifest(directory)
        assert manifest is not None
        assert manifest["version"] == 1
        assert manifest["config"] == {
            "seed": 7,
            "scale": 0.003,
            "profile": "standard",
            "services": ["youtube"],
        }
        assert len(manifest["traces"]) == count

    def test_every_manifest_trace_has_files(self, artifacts):
        directory, _ = artifacts
        for record in read_manifest(directory)["traces"]:
            har = directory / f"{record['name']}.har"
            pcap = directory / f"{record['name']}.pcap"
            assert har.exists() or pcap.exists()
            if record["platform"] == "mobile":
                assert pcap.exists()
                assert (directory / f"{record['name']}.keylog").exists()
            else:
                assert har.exists()

    def test_read_manifest_absent(self, tmp_path):
        assert read_manifest(tmp_path) is None

    def test_read_manifest_malformed(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ReplayError, match="unreadable"):
            read_manifest(tmp_path)

    def test_read_manifest_wrong_shape(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"foo": 1}')
        with pytest.raises(ReplayError, match="not a replay manifest"):
            read_manifest(tmp_path)

    def test_incremental_generate_merges_manifest(self, tmp_path):
        generate_corpus_artifacts(
            CorpusConfig(scale=0.003, seed=7, services=("youtube",)), tmp_path
        )
        added = generate_corpus_artifacts(
            CorpusConfig(scale=0.003, seed=7, services=("tiktok",)), tmp_path
        )
        manifest = read_manifest(tmp_path)
        assert manifest["config"]["services"] == ["youtube", "tiktok"]
        services = {record["service"] for record in manifest["traces"]}
        assert services == {"youtube", "tiktok"}
        assert added == sum(
            1 for record in manifest["traces"] if record["service"] == "tiktok"
        )

    def test_regenerate_same_service_replaces_records(self, tmp_path):
        config = CorpusConfig(scale=0.003, seed=7, services=("youtube",))
        first = generate_corpus_artifacts(config, tmp_path)
        second = generate_corpus_artifacts(config, tmp_path)
        assert first == second
        assert len(read_manifest(tmp_path)["traces"]) == first

    def test_incremental_generate_rejects_mismatched_knobs(self, tmp_path):
        generate_corpus_artifacts(
            CorpusConfig(scale=0.003, seed=7, services=("youtube",)), tmp_path
        )
        with pytest.raises(ReplayError, match="fresh --output"):
            generate_corpus_artifacts(
                CorpusConfig(scale=0.003, seed=8, services=("tiktok",)), tmp_path
            )
        # The mismatch fails fast: no tiktok artifacts were written.
        assert not list(tmp_path.glob("tiktok*"))

    def test_read_manifest_unsupported_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"version": 2, "traces": []}')
        with pytest.raises(ReplayError, match="unsupported manifest version 2"):
            read_manifest(tmp_path)


class TestScan:
    def test_scan_with_manifest(self, artifacts):
        directory, count = artifacts
        corpus = ReplayCorpus.scan(directory)
        assert corpus.manifest is not None
        assert len(corpus.units) == count
        assert corpus.services() == ["youtube"]
        assert len(corpus.units_for("youtube")) == count
        assert corpus.units_for("tiktok") == []

    def test_scan_without_manifest_parses_stems(self, artifacts, tmp_path):
        directory, count = artifacts
        clone = tmp_path / "raw"
        shutil.copytree(directory, clone)
        (clone / MANIFEST_NAME).unlink()
        corpus = ReplayCorpus.scan(clone)
        assert corpus.manifest is None
        assert len(corpus.units) == count
        assert {unit.meta.service for unit in corpus.units} == {"youtube"}
        names = [unit.meta.name for unit in corpus.units]
        assert names == sorted(names)

    def test_duplicate_stem_yields_one_unit(self, artifacts, tmp_path):
        # A stem present as both .har and .pcap (possible in external
        # corpora) must not double-count the trace; the HAR wins.
        directory, _ = artifacts
        clone = tmp_path / "raw"
        shutil.copytree(directory, clone)
        (clone / MANIFEST_NAME).unlink()
        har_stem = next(p.stem for p in sorted(clone.iterdir()) if p.suffix == ".har")
        (clone / f"{har_stem}.pcap").write_bytes(b"")
        corpus = ReplayCorpus.scan(clone)
        matching = [u for u in corpus.units if u.meta.name == har_stem]
        assert len(matching) == 1
        assert matching[0].har is not None

    def test_scan_missing_directory(self, tmp_path):
        with pytest.raises(ReplayError, match="does not exist"):
            ReplayCorpus.scan(tmp_path / "nope")

    def test_scan_empty_directory(self, tmp_path):
        with pytest.raises(ReplayError, match="no .har or .pcap"):
            ReplayCorpus.scan(tmp_path)

    def test_manifest_record_without_files(self, artifacts, tmp_path):
        directory, _ = artifacts
        clone = tmp_path / "broken"
        clone.mkdir()
        shutil.copy(directory / MANIFEST_NAME, clone / MANIFEST_NAME)
        with pytest.raises(ReplayError, match="neither"):
            ReplayCorpus.scan(clone)

    def test_provenance(self, artifacts):
        directory, count = artifacts
        provenance = ReplayCorpus.scan(directory).provenance()
        assert provenance.traces == count
        assert provenance.har_traces + provenance.pcap_traces == count
        assert provenance.manifest is True
        document = provenance.to_json_dict()
        assert document["source"] == "artifacts"
        assert document["services"] == ["youtube"]


class TestMetaFromName:
    def test_round_trip_via_name(self):
        meta = TraceMeta(
            service="youtube",
            platform=Platform.MOBILE,
            kind=TraceKind.LOGGED_IN,
            age=AgeGroup.CHILD,
        )
        assert meta_from_name(meta.name) == meta

    def test_logged_out_has_no_age(self):
        meta = meta_from_name("tiktok-web-logged_out-none")
        assert meta.age is None
        assert meta.kind is TraceKind.LOGGED_OUT

    def test_hyphenated_service_survives(self):
        meta = meta_from_name("my-cool-app-web-logged_in-adult")
        assert meta.service == "my-cool-app"
        assert meta.platform is Platform.WEB

    def test_too_few_parts_rejected(self):
        with pytest.raises(ReplayError, match="cannot derive"):
            meta_from_name("junk")

    def test_unknown_platform_rejected(self):
        with pytest.raises(ReplayError, match="cannot derive"):
            meta_from_name("youtube-vr-logged_in-adult")


class TestTraceUnit:
    META = TraceMeta(
        service="youtube",
        platform=Platform.WEB,
        kind=TraceKind.LOGGED_OUT,
        age=None,
    )

    def test_needs_exactly_one_artifact(self, tmp_path):
        with pytest.raises(ReplayError, match="exactly one"):
            TraceUnit(meta=self.META)
        with pytest.raises(ReplayError, match="exactly one"):
            TraceUnit(meta=self.META, har=tmp_path / "a.har", pcap=tmp_path / "a.pcap")

    def test_load_har_unit(self, artifacts):
        directory, _ = artifacts
        corpus = ReplayCorpus.scan(directory)
        unit = next(unit for unit in corpus.units if unit.har is not None)
        parsed = load_parsed_trace(unit)
        assert parsed.meta == unit.meta
        assert parsed.requests
        assert parsed.packet_count == len(parsed.requests)

    def test_load_pcap_unit(self, artifacts):
        directory, _ = artifacts
        corpus = ReplayCorpus.scan(directory)
        unit = next(unit for unit in corpus.units if unit.pcap is not None)
        parsed = load_parsed_trace(unit)
        assert parsed.meta == unit.meta
        assert parsed.requests
        assert parsed.flow_count > 0

    def test_pcap_without_keylog_is_all_opaque(self, artifacts):
        directory, _ = artifacts
        corpus = ReplayCorpus.scan(directory)
        unit = next(unit for unit in corpus.units if unit.pcap is not None)
        blind = TraceUnit(meta=unit.meta, pcap=unit.pcap, keylog=None)
        parsed = load_parsed_trace(blind)
        assert parsed.requests == []
        assert parsed.undecryptable_flows == parsed.flow_count
        assert parsed.opaque_hosts  # destinations still counted (SNI)


class TestParity:
    """generate → replay ≡ in-memory, the tentpole guarantee."""

    def test_json_byte_identical(self, direct_result, replayed_result):
        assert result_to_json(direct_result) == result_to_json(replayed_result)

    def test_flows_csv_identical(self, direct_result, replayed_result):
        assert flows_to_csv(direct_result.flows) == flows_to_csv(
            replayed_result.flows
        )

    def test_observations_identical_in_order(self, direct_result, replayed_result):
        assert (
            direct_result.flows.observations()
            == replayed_result.flows.observations()
        )

    def test_parallel_replay_matches(self, artifacts, direct_result):
        directory, _ = artifacts
        parallel = DiffAudit(CONFIG, replay=directory, jobs=4).run()
        assert result_to_json(parallel) == result_to_json(direct_result)

    def test_replay_without_manifest_matches(self, artifacts, direct_result, tmp_path):
        # Stem-parsed metadata must reconstruct the same corpus; with a
        # single service the sorted-stem order feeds one shard, whose
        # merged result is order-insensitive at the JSON granularity.
        directory, _ = artifacts
        clone = tmp_path / "raw"
        shutil.copytree(directory, clone)
        (clone / MANIFEST_NAME).unlink()
        replayed = DiffAudit(CONFIG, replay=clone).run()
        assert result_to_json(replayed) == result_to_json(direct_result)


class TestReplayConfig:
    def test_unspecified_fields_filled_from_manifest(self, artifacts):
        directory, _ = artifacts
        corpus = ReplayCorpus.scan(directory)
        resolved = replay_config(corpus)
        assert resolved.seed == 7
        assert resolved.scale == 0.003
        assert resolved.profile == "standard"
        assert resolved.services == ("youtube",)

    def test_explicit_values_win(self, artifacts):
        directory, _ = artifacts
        corpus = ReplayCorpus.scan(directory)
        resolved = replay_config(
            corpus, seed=99, scale=0.5, services=("youtube",)
        )
        assert resolved.seed == 99
        assert resolved.scale == 0.5

    def test_explicit_value_equal_to_default_still_wins(self, artifacts):
        # Typing `--seed 2023` (the default) must not be mistaken for
        # "unset" and silently replaced by the manifest's seed.
        directory, _ = artifacts
        corpus = ReplayCorpus.scan(directory)
        fallback = CorpusConfig(seed=2023, scale=0.02)
        resolved = replay_config(corpus, seed=2023, fallback=fallback)
        assert resolved.seed == 2023
        assert resolved.scale == 0.003  # unset → manifest

    def test_fallback_used_when_no_manifest(self, artifacts, tmp_path):
        directory, _ = artifacts
        clone = tmp_path / "raw"
        shutil.copytree(directory, clone)
        (clone / MANIFEST_NAME).unlink()
        corpus = ReplayCorpus.scan(clone)
        fallback = CorpusConfig(seed=123, scale=0.04)
        resolved = replay_config(corpus, fallback=fallback)
        assert resolved.services == ("youtube",)  # from the scan
        assert resolved.seed == 123
        assert resolved.scale == 0.04


class TestErrors:
    def test_corrupt_har_raises_replay_error(self, artifacts, tmp_path):
        directory, _ = artifacts
        clone = tmp_path / "corrupt"
        shutil.copytree(directory, clone)
        har_path = next(p for p in sorted(clone.iterdir()) if p.suffix == ".har")
        har_path.write_text("{truncated")
        with pytest.raises(ReplayError, match="cannot replay trace"):
            DiffAudit(CONFIG, replay=clone).run()

    def test_corrupt_pcap_raises_replay_error(self, artifacts, tmp_path):
        directory, _ = artifacts
        clone = tmp_path / "corrupt"
        shutil.copytree(directory, clone)
        pcap_path = next(p for p in sorted(clone.iterdir()) if p.suffix == ".pcap")
        pcap_path.write_bytes(b"\x00" * 64)
        with pytest.raises(ReplayError, match="cannot replay trace"):
            DiffAudit(CONFIG, replay=clone).run()

    def test_corrupt_artifact_with_worker_pool(self, artifacts, tmp_path):
        # The wrapped error must also survive a process-pool round
        # trip (--jobs > 1) instead of surfacing as a raw traceback.
        directory, _ = artifacts
        clone = tmp_path / "corrupt"
        shutil.copytree(directory, clone)
        # Two services so the pool really runs (the incremental
        # generate merges into the existing manifest); corrupt one
        # youtube HAR.
        generate_corpus_artifacts(
            CorpusConfig(scale=0.003, seed=7, services=("tiktok",)), clone
        )
        har_path = next(
            p
            for p in sorted(clone.iterdir())
            if p.name.startswith("youtube") and p.suffix == ".har"
        )
        har_path.write_text("{truncated")
        config = CorpusConfig(scale=0.003, seed=7, services=("youtube", "tiktok"))
        with pytest.raises(ReplayError, match="cannot replay trace"):
            DiffAudit(config, replay=clone, jobs=2).run()

    def test_uncatalogued_service_rejected(self, artifacts, tmp_path):
        # An external corpus of services outside the catalog must fail
        # loudly, not exit 0 with an empty "compliant" audit.
        directory, _ = artifacts
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        source = next(p for p in sorted(directory.iterdir()) if p.suffix == ".har")
        shutil.copy(source, foreign / "my-cool-app-web-logged_in-adult.har")
        corpus = ReplayCorpus.scan(foreign)
        config = replay_config(corpus)
        assert config.services == ("my-cool-app",)
        with pytest.raises(ReplayError, match="not in the service catalog"):
            DiffAudit(config, replay=corpus).run()

    def test_bad_manifest_profile_is_replay_error(self, artifacts, tmp_path):
        directory, _ = artifacts
        clone = tmp_path / "badprofile"
        shutil.copytree(directory, clone)
        manifest = json.loads((clone / MANIFEST_NAME).read_text())
        manifest["config"]["profile"] = "turbo"
        (clone / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ReplayError, match="invalid corpus config"):
            replay_config(ReplayCorpus.scan(clone))

    def test_missing_configured_service(self, artifacts):
        directory, _ = artifacts
        config = CorpusConfig(scale=0.003, seed=7, services=("tiktok",))
        with pytest.raises(ReplayError, match="no artifacts for configured"):
            DiffAudit(config, replay=directory).run()

    def test_provenance_json_round_trips(self, artifacts):
        directory, _ = artifacts
        document = ReplayCorpus.scan(directory).provenance().to_json_dict()
        assert json.loads(json.dumps(document)) == document
