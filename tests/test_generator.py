"""Unit and property tests for the traffic generator.

The central invariant: *every* data flow the generator emits must be
allowed by the service's Table 4 grid for that column/platform/cell —
grid exactness downstream depends on it.
"""

import pytest

from repro.datatypes.extract import extract_from_request
from repro.model import AgeGroup, FlowCell, Platform, TraceColumn, TraceKind
from repro.services import CorpusConfig, TrafficGenerator
from repro.services.catalog import SERVICES, service
from repro.services.generator import _LEVEL2_OF, ip_for
from repro.services.profiles import profile_for

CONFIG = CorpusConfig(scale=0.005)


@pytest.fixture(scope="module")
def generator():
    return TrafficGenerator(CONFIG)


class TestUnits:
    def test_unit_count_per_platform(self, generator):
        """3 ages × 2 kinds + 1 logged-out = 7 units per platform."""
        spec = service("tiktok")
        units = generator.trace_units(spec)
        assert len(units) == 7 * len(spec.platforms)

    def test_desktop_platforms_only_for_gaming(self):
        assert Platform.DESKTOP in service("roblox").platforms
        assert Platform.DESKTOP in service("minecraft").platforms
        assert Platform.DESKTOP not in service("tiktok").platforms

    def test_determinism(self):
        a = TrafficGenerator(CorpusConfig(scale=0.005))
        b = TrafficGenerator(CorpusConfig(scale=0.005))
        spec = service("tiktok")
        unit_a = a.generate_unit(spec, Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.CHILD)
        unit_b = b.generate_unit(spec, Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.CHILD)
        assert len(unit_a.requests) == len(unit_b.requests)
        for x, y in zip(unit_a.requests, unit_b.requests):
            assert x.request.to_bytes() == y.request.to_bytes()
            assert x.connection == y.connection


class TestGridCompliance:
    """The generator may never emit a flow the grid forbids."""

    @pytest.mark.parametrize("service_key", ["tiktok", "youtube", "minecraft"])
    @pytest.mark.parametrize("platform", [Platform.WEB, Platform.MOBILE])
    @pytest.mark.parametrize("age", [AgeGroup.CHILD, AgeGroup.ADULT])
    def test_logged_in_units_respect_grid(self, generator, service_key, platform, age):
        spec = service(service_key)
        if platform not in spec.platforms:
            pytest.skip("platform not offered")
        profile = spec.profile
        column = TraceColumn(age.value)
        unit = generator.generate_unit(spec, platform, TraceKind.LOGGED_IN, age)
        truth = generator.payloads.registry.truth
        ats_first = set(spec.first_party_ats_pool)
        ats_third = set(spec.third_party_ats_pool)
        first_party = set(spec.first_party_pool) | ats_first
        for traced in unit.requests:
            host = traced.request.url.host
            if host in first_party:
                cell = (
                    FlowCell.COLLECT_1ST_ATS
                    if host in ats_first
                    else FlowCell.COLLECT_1ST
                )
            else:
                cell = (
                    FlowCell.SHARE_3RD_ATS if host in ats_third else FlowCell.SHARE_3RD
                )
            for item in extract_from_request(traced.request):
                label = truth.get(item.key)
                if label is None or label not in _LEVEL2_OF:
                    continue
                level2 = _LEVEL2_OF[label]
                assert profile.presence(level2, column, cell).on(platform), (
                    host,
                    item.key,
                    label,
                    level2,
                    cell,
                )

    def test_logged_out_never_sends_age_or_gender(self, generator):
        spec = service("quizlet")
        truth = generator.payloads.registry.truth
        for platform in (Platform.WEB, Platform.MOBILE):
            unit = generator.generate_unit(spec, platform, TraceKind.LOGGED_OUT, None)
            for traced in unit.requests:
                for item in extract_from_request(traced.request):
                    label = truth.get(item.key)
                    assert label is None or label.value not in ("Age", "Gender/Sex")


class TestLinkabilityShaping:
    def test_partner_counts_match_figure3(self, generator):
        for spec in SERVICES():
            for column in TraceColumn:
                partners = generator._partners(spec, column)
                assert len(partners) == spec.profile.linkable_third_parties[column]

    def test_partners_are_prefix_stable(self, generator):
        """Child partners ⊆ adolescent partners — 'similar destination
        domains, without much differentiation' (paper §4.2)."""
        spec = service("quizlet")
        child = generator._partners(spec, TraceColumn.CHILD)
        adult = generator._partners(spec, TraceColumn.ADULT)
        assert child == adult[: len(child)]

    def test_partner_pool_mixes_ats_and_non_ats(self):
        spec = service("quizlet")
        pool = spec.third_party_pool_interleaved()[:20]
        ats = set(spec.third_party_ats_pool)
        assert any(p in ats for p in pool)
        assert any(p not in ats for p in pool)

    def test_beacons_single_sided(self, generator):
        """Beacon targets receive PI-side types only (never linkable)."""
        from repro.ontology import ONTOLOGY

        spec = service("quizlet")
        profile = spec.profile
        import random

        beacons = generator._beacon_requests(
            spec, profile, TraceColumn.ADULT, Platform.WEB, random.Random(0)
        )
        truth = generator.payloads.registry.truth
        for request, _, _ in beacons:
            for item in extract_from_request(request):
                label = truth.get(item.key)
                if label is not None:
                    assert not ONTOLOGY.is_identifier(label)


class TestVolumeAndConnections:
    def test_filler_fills_toward_packet_target(self, generator):
        spec = service("tiktok")
        small = generator.generate_unit(
            spec, Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.ADULT, packet_target=0
        )
        big = generator.generate_unit(
            spec,
            Platform.WEB,
            TraceKind.LOGGED_IN,
            AgeGroup.ADULT,
            packet_target=len(small.requests) + 500,
        )
        assert len(big.requests) >= len(small.requests) + 400

    def test_mobile_filler_is_pinned(self, generator):
        spec = service("tiktok")
        unit = generator.generate_unit(
            spec, Platform.MOBILE, TraceKind.LOGGED_IN, AgeGroup.ADULT, packet_target=900
        )
        pinned = [t for t in unit.requests if t.pinned]
        assert pinned
        assert all(t.connection.startswith("filler:") for t in pinned)

    def test_flow_target_splits_connections(self, generator):
        spec = service("tiktok")
        base = generator.generate_unit(
            spec, Platform.MOBILE, TraceKind.LOGGED_IN, AgeGroup.ADULT,
            packet_target=600, flow_target=0,
        )
        split = generator.generate_unit(
            spec, Platform.MOBILE, TraceKind.LOGGED_IN, AgeGroup.ADULT,
            packet_target=600, flow_target=150,
        )
        connections_base = {t.connection for t in base.requests}
        connections_split = {t.connection for t in split.requests}
        assert len(connections_split) > len(connections_base)

    def test_timestamps_monotonic(self, generator):
        spec = service("duolingo")
        unit = generator.generate_unit(spec, Platform.WEB, TraceKind.LOGGED_IN, AgeGroup.ADULT)
        stamps = [t.request.timestamp for t in unit.requests]
        assert all(b >= a for a, b in zip(stamps, stamps[1:]))


class TestAccountCreation:
    def test_child_signup_includes_parent_consent_on_gated_services(self, generator):
        spec = service("roblox")  # requires_parent_email
        unit = generator.generate_unit(
            spec, Platform.WEB, TraceKind.ACCOUNT_CREATION, AgeGroup.CHILD
        )
        paths = {t.request.url.path for t in unit.requests}
        assert "/api/v1/signup/parent-consent" in paths

    def test_adult_signup_has_no_parent_step(self, generator):
        spec = service("roblox")
        unit = generator.generate_unit(
            spec, Platform.WEB, TraceKind.ACCOUNT_CREATION, AgeGroup.ADULT
        )
        paths = {t.request.url.path for t in unit.requests}
        assert "/api/v1/signup/parent-consent" not in paths

    def test_logged_out_has_no_signup(self, generator):
        spec = service("roblox")
        unit = generator.generate_unit(spec, Platform.WEB, TraceKind.LOGGED_OUT, None)
        paths = {t.request.url.path for t in unit.requests}
        assert not any(p.startswith("/api/v1/signup") for p in paths)


class TestIpFor:
    def test_deterministic(self):
        assert ip_for("x.example.com") == ip_for("x.example.com")

    def test_distinct_hosts_usually_differ(self):
        assert ip_for("a.example.com") != ip_for("b.example.com")

    def test_plausible_public_address(self):
        first_octet = int(ip_for("host.example").split(".")[0])
        assert 34 <= first_octet <= 133
