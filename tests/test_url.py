"""Unit and property tests for URL parsing (repro.net.url)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.url import (
    Url,
    UrlError,
    encode_query,
    is_ip_literal,
    parse_query,
    parse_url,
    percent_encode,
)


class TestParseUrl:
    def test_simple(self):
        url = parse_url("https://www.example.com/path?a=1#frag")
        assert url.scheme == "https"
        assert url.host == "www.example.com"
        assert url.port == 443
        assert url.path == "/path"
        assert url.query == "a=1"
        assert url.fragment == "frag"

    def test_default_ports(self):
        assert parse_url("http://x.com").port == 80
        assert parse_url("https://x.com").port == 443
        assert parse_url("wss://x.com").port == 443

    def test_explicit_port(self):
        assert parse_url("https://x.com:8443/").port == 8443

    def test_host_lowercased(self):
        assert parse_url("https://WwW.ExAmPlE.CoM/").host == "www.example.com"

    def test_trailing_dot_stripped(self):
        assert parse_url("https://example.com./").host == "example.com"

    def test_no_path_means_root(self):
        assert parse_url("https://x.com").path == "/"

    def test_userinfo_stripped(self):
        assert parse_url("https://user:pw@x.com/").host == "x.com"

    def test_ipv6_literal(self):
        url = parse_url("https://[2001:db8::1]:8080/api")
        assert url.host == "2001:db8::1"
        assert url.port == 8080

    @pytest.mark.parametrize(
        "bad",
        [
            "example.com/path",  # no scheme
            "ftp://example.com/",  # unsupported scheme
            "https:example.com",  # missing authority
            "https:///path",  # empty host
            "https://x.com:99999/",  # port out of range
            "https://x.com:abc/",  # non-numeric port
        ],
    )
    def test_rejects_bad_urls(self, bad):
        with pytest.raises(UrlError):
            parse_url(bad)

    def test_str_round_trip(self):
        raw = "https://api.example.com/v1/data?x=1&y=2#top"
        assert str(parse_url(raw)) == raw

    def test_origin_omits_default_port(self):
        assert parse_url("https://x.com/a").origin == "https://x.com"
        assert parse_url("https://x.com:444/a").origin == "https://x.com:444"


class TestQuery:
    def test_parse_pairs(self):
        assert parse_query("a=1&b=two") == [("a", "1"), ("b", "two")]

    def test_bare_flag(self):
        assert parse_query("debug") == [("debug", "")]

    def test_repeated_keys_preserved(self):
        assert parse_query("k=1&k=2") == [("k", "1"), ("k", "2")]

    def test_percent_decoding(self):
        assert parse_query("q=hello%20world") == [("q", "hello world")]

    def test_plus_decodes_to_space(self):
        assert parse_query("q=a+b") == [("q", "a b")]

    def test_empty_query(self):
        assert parse_query("") == []

    def test_encode_round_trip(self):
        pairs = [("key one", "value&=x"), ("flag", ""), ("z", "ümlaut")]
        assert parse_query(encode_query(pairs)) == pairs

    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=10),
                st.text(max_size=10),
            ),
            max_size=5,
        )
    )
    def test_encode_parse_round_trip_property(self, pairs):
        assert parse_query(encode_query(pairs)) == pairs

    def test_percent_encode_unreserved_untouched(self):
        assert percent_encode("AZaz09-._~") == "AZaz09-._~"


class TestIpLiteral:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("1.2.3.4", True),
            ("255.255.255.255", True),
            ("256.1.1.1", False),
            ("example.com", False),
            ("2001:db8::1", True),
            ("1.2.3", False),
        ],
    )
    def test_cases(self, host, expected):
        assert is_ip_literal(host) is expected


class TestUrlModel:
    def test_query_pairs(self):
        url = Url(scheme="https", host="x.com", port=443, query="a=1&b=2")
        assert url.query_pairs() == [("a", "1"), ("b", "2")]

    def test_fqdn_is_host(self):
        url = Url(scheme="https", host="sub.x.com", port=443)
        assert url.fqdn == "sub.x.com"
