#!/usr/bin/env python
"""Docs sanity checker — a thin wrapper over the lint engine.

The checks that used to live here (module references, markdown
links, CLI snippets, the ``docs/cli.md`` ↔ argparse sync, the BENCH
schema coverage, the named-profile coverage) are now first-class
rules in :mod:`repro.lint` — ``S-DOC-REF``, ``S-CLI-DOC``,
``S-BENCH-DOC`` and ``S-PROFILE-DOC`` — so there is one analyzer,
one report format, one exit code.  This wrapper keeps the historical
entry point (and the CI docs job) working by running exactly that
docs-sync subset.

Run from the repo root with ``PYTHONPATH=src python tools/check_docs.py``.
Exits non-zero listing every broken reference.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.lint import doc_rules, run_lint  # noqa: E402


def main() -> int:
    result = run_lint(ROOT, targets=[], rules=doc_rules())
    if result.findings:
        print(f"{len(result.findings)} doc problem(s):", file=sys.stderr)
        for finding in result.findings:
            print(
                f"  {finding.path}:{finding.line}: "
                f"[{finding.rule}] {finding.message}",
                file=sys.stderr,
            )
        return 1
    checked = len(list((ROOT / "docs").glob("*.md"))) + 1  # + README.md
    print(f"docs ok: {checked} file(s) checked by {len(doc_rules())} S rules")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
