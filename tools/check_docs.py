#!/usr/bin/env python
"""Docs sanity checker: module references and CLI snippets must be real.

Scans README.md and docs/*.md for

* ``repro.foo.bar`` dotted module/attribute references — each must
  resolve to an importable module or an attribute of one;
* relative markdown links — each must point at an existing file;
* ``$ python -m repro …`` console snippets — each must parse against
  the actual CLI argument parser (commands and flags must exist);
* ``docs/cli.md`` — the complete CLI reference must stay in sync with
  the argparse tree: every (sub)command needs a ``## `repro …` ``
  heading (the ``bench`` subcommand included), every option a command
  defines must appear in that command's section, and every
  ``--option`` token anywhere in the file must exist somewhere in the
  CLI (no stale flags);
* ``docs/performance.md`` — the documented ``BENCH_<n>.json`` schema
  must cover every field in ``repro.bench.BENCH_SCHEMA_FIELDS``;
* ``docs/cli.md`` — every named impairment profile
  (``repro.stream.impair.IMPAIRMENT_PROFILES``) and every named load
  profile (``repro.services.generator.LOAD_PROFILES``) must appear as
  an inline-code token, so ``--impair``/``--profile`` choices are
  never undocumented.

Run from the repo root with ``PYTHONPATH=src python tools/check_docs.py``.
Exits non-zero listing every broken reference.
"""

from __future__ import annotations

import importlib
import re
import shlex
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

MODULE_REF = re.compile(r"\brepro(?:\.[a-z_][a-z0-9_]*)+\b")
MD_LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")
CLI_SNIPPET = re.compile(r"^\$ (?:PYTHONPATH=\S+ )?python -m repro (.+)$", re.MULTILINE)


def check_module_ref(ref: str) -> bool:
    """True when ``ref`` is an importable module or module attribute."""
    parts = ref.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_cli_snippet(arg_line: str) -> str | None:
    """Parse one documented invocation; return an error string or None."""
    from repro.cli import build_parser

    argv = shlex.split(arg_line)
    # Neutralize writes: parsing only needs the shape, not the paths.
    try:
        build_parser().parse_args(argv)
    except SystemExit:
        return f"does not parse: python -m repro {arg_line}"
    return None


def iter_cli_commands(parser, prefix: str = "repro"):
    """Yield ``(command_path, parser)`` for every subcommand, recursively."""
    import argparse

    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            seen = set()
            for name, sub in action.choices.items():
                if id(sub) in seen:  # aliases map to the same parser
                    continue
                seen.add(id(sub))
                path = f"{prefix} {name}"
                yield path, sub
                yield from iter_cli_commands(sub, path)


def command_options(parser) -> set[str]:
    """The long option strings one command defines (``--help`` aside)."""
    return {
        option
        for action in parser._actions
        for option in action.option_strings
        if option.startswith("--") and option != "--help"
    }


CLI_HEADING = re.compile(r"^#+ .*`(repro[^`]*)`", re.MULTILINE)
CLI_OPTION = re.compile(r"`(--[a-z][a-z-]*)`")
# Greedy token scan for coverage checks: matches the longest flag at
# each position, so documenting `--cache-dir` can never be mistaken
# for documenting a hypothetical `--cache`.
OPTION_TOKEN = re.compile(r"--[a-z][a-z-]*")


def check_cli_reference() -> list[str]:
    """``docs/cli.md`` section-by-section against the argparse tree."""
    from repro.cli import build_parser

    path = ROOT / "docs" / "cli.md"
    rel = path.relative_to(ROOT)
    if not path.exists():
        return [f"{rel}: missing"]
    text = path.read_text(encoding="utf-8")
    errors: list[str] = []

    commands = dict(iter_cli_commands(build_parser()))
    headings = [
        (match.start(), match.group(1).strip())
        for match in CLI_HEADING.finditer(text)
    ]
    sections: dict[str, str] = {}
    for index, (start, name) in enumerate(headings):
        end = headings[index + 1][0] if index + 1 < len(headings) else len(text)
        sections[name] = text[start:end]

    for name in sections:
        if name != "repro" and name not in commands:
            errors.append(f"{rel}: section for unknown command {name!r}")
    # Flags shared by several commands (--seed, --jobs, …) may be
    # documented once in the preamble instead of in every section.
    preamble = text[: headings[0][0]] if headings else text
    shared = set(OPTION_TOKEN.findall(preamble))
    for name, parser in commands.items():
        section = sections.get(name)
        if section is None:
            errors.append(f"{rel}: no section heading for `{name}`")
            continue
        documented = set(OPTION_TOKEN.findall(section)) | shared
        for option in sorted(command_options(parser) - documented):
            errors.append(
                f"{rel}: `{name}` section does not document {option}"
            )

    all_options = {
        option
        for parser in commands.values()
        for option in command_options(parser)
    }
    for option in sorted(set(CLI_OPTION.findall(text)) - all_options):
        errors.append(f"{rel}: documents nonexistent option {option}")
    return errors


def check_named_profiles() -> list[str]:
    """Every named impairment/load profile must be documented.

    ``--impair`` and ``--profile`` take closed sets of names; a
    profile added to the code without a line in ``docs/cli.md`` would
    be invisible to users reading the reference.
    """
    from repro.services.generator import LOAD_PROFILES
    from repro.stream.impair import IMPAIRMENT_PROFILES

    path = ROOT / "docs" / "cli.md"
    rel = path.relative_to(ROOT)
    if not path.exists():
        return [f"{rel}: missing"]
    text = path.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([a-z][a-z-]*)`", text))
    errors = [
        f"{rel}: impairment profile `{name}` is not documented"
        for name in IMPAIRMENT_PROFILES
        if name not in documented
    ]
    errors.extend(
        f"{rel}: load profile `{name}` is not documented"
        for name in LOAD_PROFILES
        if name not in documented
    )
    return errors


def check_bench_schema() -> list[str]:
    """``docs/performance.md`` must document every BENCH schema field.

    The benchmark trajectory is only useful if its on-disk schema is
    readable without the source; any field added to
    ``repro.bench.BENCH_SCHEMA_FIELDS`` has to show up (as an inline
    ```code` `` token) in the performance page.
    """
    from repro.bench import BENCH_SCHEMA_FIELDS

    path = ROOT / "docs" / "performance.md"
    rel = path.relative_to(ROOT)
    if not path.exists():
        return [f"{rel}: missing"]
    text = path.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([a-z_]+)`", text))
    return [
        f"{rel}: BENCH schema field `{field}` is not documented"
        for field in BENCH_SCHEMA_FIELDS
        if field not in documented
    ]


def main() -> int:
    errors: list[str] = []
    errors.extend(check_cli_reference())
    errors.extend(check_bench_schema())
    errors.extend(check_named_profiles())
    for path in DOC_FILES:
        if not path.exists():
            errors.append(f"{path.relative_to(ROOT)}: missing")
            continue
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(ROOT)

        for ref in sorted(set(MODULE_REF.findall(text))):
            if not check_module_ref(ref):
                errors.append(f"{rel}: unresolvable module reference {ref!r}")

        for target in MD_LINK.findall(text):
            if "://" in target or target.startswith("mailto:"):
                continue  # external links are out of scope offline
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue  # same-file anchor
            target_path = (path.parent / file_part).resolve()
            if not target_path.exists():
                errors.append(f"{rel}: broken link {target!r}")

        for arg_line in CLI_SNIPPET.findall(text):
            error = check_cli_snippet(arg_line.strip())
            if error:
                errors.append(f"{rel}: {error}")

    if errors:
        print(f"{len(errors)} doc problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"docs ok: {len(DOC_FILES)} file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
