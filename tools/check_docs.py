#!/usr/bin/env python
"""Docs sanity checker: module references and CLI snippets must be real.

Scans README.md and docs/*.md for

* ``repro.foo.bar`` dotted module/attribute references — each must
  resolve to an importable module or an attribute of one;
* relative markdown links — each must point at an existing file;
* ``$ python -m repro …`` console snippets — each must parse against
  the actual CLI argument parser (commands and flags must exist).

Run from the repo root with ``PYTHONPATH=src python tools/check_docs.py``.
Exits non-zero listing every broken reference.
"""

from __future__ import annotations

import importlib
import re
import shlex
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

MODULE_REF = re.compile(r"\brepro(?:\.[a-z_][a-z0-9_]*)+\b")
MD_LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")
CLI_SNIPPET = re.compile(r"^\$ (?:PYTHONPATH=\S+ )?python -m repro (.+)$", re.MULTILINE)


def check_module_ref(ref: str) -> bool:
    """True when ``ref`` is an importable module or module attribute."""
    parts = ref.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def check_cli_snippet(arg_line: str) -> str | None:
    """Parse one documented invocation; return an error string or None."""
    from repro.cli import build_parser

    argv = shlex.split(arg_line)
    # Neutralize writes: parsing only needs the shape, not the paths.
    try:
        build_parser().parse_args(argv)
    except SystemExit:
        return f"does not parse: python -m repro {arg_line}"
    return None


def main() -> int:
    errors: list[str] = []
    for path in DOC_FILES:
        if not path.exists():
            errors.append(f"{path.relative_to(ROOT)}: missing")
            continue
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(ROOT)

        for ref in sorted(set(MODULE_REF.findall(text))):
            if not check_module_ref(ref):
                errors.append(f"{rel}: unresolvable module reference {ref!r}")

        for target in MD_LINK.findall(text):
            if "://" in target or target.startswith("mailto:"):
                continue  # external links are out of scope offline
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue  # same-file anchor
            target_path = (path.parent / file_part).resolve()
            if not target_path.exists():
                errors.append(f"{rel}: broken link {target!r}")

        for arg_line in CLI_SNIPPET.findall(text):
            error = check_cli_snippet(arg_line.strip())
            if error:
                errors.append(f"{rel}: {error}")

    if errors:
        print(f"{len(errors)} doc problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"docs ok: {len(DOC_FILES)} file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
