#!/usr/bin/env python
"""Run the benchmark suite and append ``BENCH_<n>.json`` at the repo root.

Thin wrapper over :mod:`repro.bench` that pins ``--output-dir`` to the
repository root, so the recorded trajectory always lands next to the
previous entries regardless of the caller's working directory:

    PYTHONPATH=src python tools/bench_record.py [--quick] [--scale S]

See ``docs/performance.md`` for the entry schema and the recorded
history.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["--output-dir", str(ROOT), *sys.argv[1:]]))
