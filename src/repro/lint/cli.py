"""CLI plumbing for the linter — shared by ``repro lint`` and
``python -m repro.lint``.

Exit codes: 0 clean, 1 findings, 2 usage/configuration errors — the
same convention as the rest of the ``repro`` CLI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint import all_rules
from repro.lint.engine import BaselineError, run_lint, write_baseline
from repro.lint.report import render_json, render_text

#: Default baseline filename, looked up relative to ``--root``.
BASELINE_NAME = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` flags to ``parser``."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src, tools, "
        "benchmarks, tests under --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root for relative paths, docs rules and the "
        "baseline (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


class UsageError(ValueError):
    """Bad flag values (unknown rule IDs, …) — exit 2."""


def _selected_rules(args) -> list:
    rules = list(all_rules())
    known = {rule.rule_id for rule in rules}
    for flag in ("select", "ignore"):
        value = getattr(args, flag)
        if value is None:
            continue
        requested = {part.strip() for part in value.split(",") if part.strip()}
        unknown = requested - known
        if unknown:
            raise UsageError(
                f"--{flag} names unknown rule(s): "
                + ", ".join(sorted(unknown))
            )
        if flag == "select":
            rules = [rule for rule in rules if rule.rule_id in requested]
        else:
            rules = [rule for rule in rules if rule.rule_id not in requested]
    return rules


def run_from_args(args) -> int:
    """Execute one lint run described by parsed ``args``."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:14s} [{rule.severity}] {rule.summary}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: --root {args.root} is not a directory", file=sys.stderr)
        return 2
    targets = [Path(p) for p in args.paths] or None
    baseline_path = (
        Path(args.baseline) if args.baseline else root / BASELINE_NAME
    )

    try:
        result = run_lint(
            root,
            targets=targets,
            rules=_selected_rules(args),
            baseline_path=None if args.write_baseline else baseline_path,
        )
    except (FileNotFoundError, BaselineError, UsageError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    output = (
        render_json(result) if args.format == "json" else render_text(result)
    )
    print(output)
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant linter (determinism, "
        "executor safety, registry/docs sync)",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv))
