"""S family: registry- and docs-sync rules.

The repo keeps several registries that must agree with code that
lives elsewhere: the profile stage schema, the argparse tree vs
``docs/cli.md``, the BENCH entry schema vs ``docs/performance.md``,
and the named load/impairment profiles.  These rules are the old
``tools/check_docs.py`` checks rebuilt as first-class lint rules —
one analyzer, one report format, one exit code — plus an AST check
that stage names used in the pipeline exist in the schema.
"""

from __future__ import annotations

import ast
import importlib
import re
import shlex
from typing import Iterator

from repro.lint.engine import AstRule, Finding, ModuleSource, Project, ProjectRule


def _line_col(text: str, pos: int) -> tuple[int, int]:
    line = text.count("\n", 0, pos) + 1
    col = pos - (text.rfind("\n", 0, pos) + 1) + 1
    return line, col


# ----------------------------------------------------------------------
# S-STAGE — profile stage names used in the pipeline must be schema'd
# ----------------------------------------------------------------------


def _allowed_stage_names() -> frozenset[str]:
    """Shard stages plus engine stages (``<name>_s`` schema fields)."""
    from repro.pipeline.profile import ENGINE_PROFILE_FIELDS, SHARD_STAGES

    engine_stages = {
        name[: -len("_s")]
        for name in ENGINE_PROFILE_FIELDS
        if name.endswith("_s")
    }
    return frozenset(SHARD_STAGES) | frozenset(engine_stages)


class StageNameRule(AstRule):
    """S-STAGE: ``timer.stage("…")`` names must exist in the schema."""

    rule_id = "S-STAGE"
    severity = "error"
    summary = (
        "stage name not in the profile schema — validate_profile would "
        "reject every document the run produces"
    )
    hint = (
        "add the stage to repro.pipeline.profile.SHARD_STAGES (or the "
        "engine fields) before timing against it"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return "pipeline/" in module.rel or "stream/" in module.rel

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        allowed = _allowed_stage_names()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "stage"):
                continue
            if not node.args:
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue  # dynamic stage names are checked at runtime
            if arg.value not in allowed:
                yield self.finding(
                    module.rel,
                    arg.lineno,
                    arg.col_offset + 1,
                    f"stage {arg.value!r} is not in the profile schema",
                )


# ----------------------------------------------------------------------
# Docs rules (absorbed from tools/check_docs.py)
# ----------------------------------------------------------------------

MODULE_REF = re.compile(r"\brepro(?:\.[a-z_][a-z0-9_]*)+\b")
MD_LINK = re.compile(r"\[[^\]]+\]\(([^)]+)\)")
CLI_SNIPPET = re.compile(r"^\$ (?:PYTHONPATH=\S+ )?python -m repro (.+)$", re.MULTILINE)
CLI_HEADING = re.compile(r"^#+ .*`(repro[^`]*)`", re.MULTILINE)
CLI_OPTION = re.compile(r"`(--[a-z][a-z-]*)`")
# Greedy token scan for coverage checks: matches the longest flag at
# each position, so documenting `--cache-dir` can never be mistaken
# for documenting a hypothetical `--cache`.
OPTION_TOKEN = re.compile(r"--[a-z][a-z-]*")
CODE_TOKEN = re.compile(r"`([a-z][a-z-]*)`")
FIELD_TOKEN = re.compile(r"`([a-z_]+)`")


def _check_module_ref(ref: str) -> bool:
    """True when ``ref`` is an importable module or module attribute."""
    parts = ref.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        # repro-lint: disable=X-SWALLOW — probing successively shorter module prefixes; a miss just tries the next split
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def _iter_cli_commands(parser, prefix: str = "repro"):
    """Yield ``(command_path, parser)`` for every subcommand, recursively."""
    import argparse

    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            seen = set()
            for name, sub in action.choices.items():
                if id(sub) in seen:  # aliases map to the same parser
                    continue
                seen.add(id(sub))
                path = f"{prefix} {name}"
                yield path, sub
                yield from _iter_cli_commands(sub, path)


def _command_options(parser) -> set[str]:
    """The long option strings one command defines (``--help`` aside)."""
    return {
        option
        for action in parser._actions
        for option in action.option_strings
        if option.startswith("--") and option != "--help"
    }


class DocReferenceRule(ProjectRule):
    """S-DOC-REF: docs must only reference things that exist."""

    rule_id = "S-DOC-REF"
    severity = "error"
    summary = (
        "docs reference something unreal: a repro.* dotted path that "
        "does not import, a broken relative link, or a CLI snippet the "
        "parser rejects"
    )
    hint = "fix the reference, or update the docs to match the code"

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.cli import build_parser

        for path in project.doc_files():
            text = path.read_text(encoding="utf-8")
            rel = project.rel(path)

            for match in MODULE_REF.finditer(text):
                ref = match.group(0)
                if not _check_module_ref(ref):
                    line, col = _line_col(text, match.start())
                    yield self.finding(
                        rel, line, col, f"unresolvable module reference {ref!r}"
                    )

            for match in MD_LINK.finditer(text):
                target = match.group(1)
                if "://" in target or target.startswith("mailto:"):
                    continue  # external links are out of scope offline
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue  # same-file anchor
                if not (path.parent / file_part).resolve().exists():
                    line, col = _line_col(text, match.start())
                    yield self.finding(rel, line, col, f"broken link {target!r}")

            for match in CLI_SNIPPET.finditer(text):
                arg_line = match.group(1).strip()
                try:
                    build_parser().parse_args(shlex.split(arg_line))
                except SystemExit:
                    line, col = _line_col(text, match.start())
                    yield self.finding(
                        rel,
                        line,
                        col,
                        f"does not parse: python -m repro {arg_line}",
                    )


class CliReferenceRule(ProjectRule):
    """S-CLI-DOC: ``docs/cli.md`` must mirror the argparse tree."""

    rule_id = "S-CLI-DOC"
    severity = "error"
    summary = (
        "docs/cli.md out of sync with the argparse tree: a command "
        "without a section, an undocumented flag, or a documented flag "
        "that does not exist"
    )
    hint = "update docs/cli.md to match the repro.cli parser"

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.cli import build_parser

        path = project.root / "docs" / "cli.md"
        if not path.exists():
            yield self.finding("docs/cli.md", 1, 1, "docs/cli.md is missing")
            return
        text = path.read_text(encoding="utf-8")
        rel = project.rel(path)

        commands = dict(_iter_cli_commands(build_parser()))
        headings = [
            (match.start(), match.group(1).strip())
            for match in CLI_HEADING.finditer(text)
        ]
        sections: dict[str, tuple[int, str]] = {}
        for index, (start, name) in enumerate(headings):
            end = headings[index + 1][0] if index + 1 < len(headings) else len(text)
            sections[name] = (start, text[start:end])

        for name, (start, _) in sections.items():
            if name != "repro" and name not in commands:
                line, col = _line_col(text, start)
                yield self.finding(
                    rel, line, col, f"section for unknown command {name!r}"
                )
        # Flags shared by several commands (--seed, --jobs, …) may be
        # documented once in the preamble instead of in every section.
        preamble = text[: headings[0][0]] if headings else text
        shared = set(OPTION_TOKEN.findall(preamble))
        for name, parser in commands.items():
            entry = sections.get(name)
            if entry is None:
                yield self.finding(
                    rel, 1, 1, f"no section heading for `{name}`"
                )
                continue
            start, section = entry
            line, col = _line_col(text, start)
            documented = set(OPTION_TOKEN.findall(section)) | shared
            for option in sorted(_command_options(parser) - documented):
                yield self.finding(
                    rel,
                    line,
                    col,
                    f"`{name}` section does not document {option}",
                )

        all_options = {
            option
            for parser in commands.values()
            for option in _command_options(parser)
        }
        documented_options = {
            match.group(1): match.start() for match in CLI_OPTION.finditer(text)
        }
        for option in sorted(set(documented_options) - all_options):
            line, col = _line_col(text, documented_options[option])
            yield self.finding(
                rel, line, col, f"documents nonexistent option {option}"
            )


class NamedProfileRule(ProjectRule):
    """S-PROFILE-DOC: every named load/impairment/fault profile is documented.

    ``--impair``, ``--profile`` and ``--inject-faults`` take closed
    sets of names; a profile added to the code without a line in
    ``docs/cli.md`` would be invisible to users reading the reference.
    """

    rule_id = "S-PROFILE-DOC"
    severity = "error"
    summary = (
        "a named load/impairment/fault profile is missing from docs/cli.md"
    )
    hint = "mention the profile name as an inline-code token in docs/cli.md"

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.faults import FAULT_PROFILES
        from repro.services.generator import LOAD_PROFILES
        from repro.stream.impair import IMPAIRMENT_PROFILES

        path = project.root / "docs" / "cli.md"
        if not path.exists():
            yield self.finding("docs/cli.md", 1, 1, "docs/cli.md is missing")
            return
        text = path.read_text(encoding="utf-8")
        rel = project.rel(path)
        documented = set(CODE_TOKEN.findall(text))
        for name in IMPAIRMENT_PROFILES:
            if name not in documented:
                yield self.finding(
                    rel, 1, 1, f"impairment profile `{name}` is not documented"
                )
        for name in LOAD_PROFILES:
            if name not in documented:
                yield self.finding(
                    rel, 1, 1, f"load profile `{name}` is not documented"
                )
        for name in FAULT_PROFILES:
            if name not in documented:
                yield self.finding(
                    rel, 1, 1, f"fault profile `{name}` is not documented"
                )


class BenchSchemaRule(ProjectRule):
    """S-BENCH-DOC: every BENCH schema field is documented.

    The benchmark trajectory is only useful if its on-disk schema is
    readable without the source; any field added to
    ``repro.bench.BENCH_SCHEMA_FIELDS`` has to show up (as an
    inline-code token) in ``docs/performance.md``.
    """

    rule_id = "S-BENCH-DOC"
    severity = "error"
    summary = (
        "a BENCH_<n>.json schema field is missing from "
        "docs/performance.md"
    )
    hint = "document the field in the BENCH schema table"

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.bench import BENCH_SCHEMA_FIELDS

        path = project.root / "docs" / "performance.md"
        if not path.exists():
            yield self.finding(
                "docs/performance.md", 1, 1, "docs/performance.md is missing"
            )
            return
        text = path.read_text(encoding="utf-8")
        rel = project.rel(path)
        documented = set(FIELD_TOKEN.findall(text))
        for field in BENCH_SCHEMA_FIELDS:
            if field not in documented:
                yield self.finding(
                    rel,
                    1,
                    1,
                    f"BENCH schema field `{field}` is not documented",
                )


class MetricCatalogRule(ProjectRule):
    """S-METRIC-DOC: every cataloged telemetry metric is documented.

    The metrics registry refuses to create a metric that is not in
    :data:`repro.obs.catalog.CATALOG`, and this rule closes the loop
    the other way: a cataloged name that never shows up (as an
    inline-code token) in ``docs/observability.md`` is invisible to
    anyone deciding what to scrape or alert on.
    """

    rule_id = "S-METRIC-DOC"
    severity = "error"
    summary = (
        "a cataloged telemetry metric is missing from "
        "docs/observability.md"
    )
    hint = "document the metric in the docs/observability.md catalog table"

    def check(self, project: Project) -> Iterator[Finding]:
        from repro.obs.catalog import CATALOG

        path = project.root / "docs" / "observability.md"
        if not path.exists():
            yield self.finding(
                "docs/observability.md",
                1,
                1,
                "docs/observability.md is missing",
            )
            return
        text = path.read_text(encoding="utf-8")
        rel = project.rel(path)
        documented = set(FIELD_TOKEN.findall(text))
        for name in CATALOG:
            if name not in documented:
                yield self.finding(
                    rel, 1, 1, f"metric `{name}` is not documented"
                )


#: The docs-facing subset — what ``tools/check_docs.py`` runs.
DOC_RULES = (
    DocReferenceRule(),
    CliReferenceRule(),
    NamedProfileRule(),
    BenchSchemaRule(),
    MetricCatalogRule(),
)

ALL = (StageNameRule(),) + DOC_RULES
