"""``repro.lint`` — AST-based invariant linter for this repository.

Statically enforces the guarantees the reproduction's tests only
probe at runtime: determinism (D rules), executor/IPC safety
(X rules), and registry/docs sync (S rules).  Run it as
``python -m repro.lint`` or ``repro lint``; see ``docs/cli.md`` for
flags and ``docs/architecture.md`` for the rule catalog.
"""

from __future__ import annotations

from repro.lint import determinism, executor, sync
from repro.lint.engine import (
    AstRule,
    BaselineError,
    Finding,
    LintResult,
    ModuleSource,
    Project,
    ProjectRule,
    Rule,
    run_lint,
)

__all__ = [
    "AstRule",
    "BaselineError",
    "Finding",
    "LintResult",
    "ModuleSource",
    "Project",
    "ProjectRule",
    "Rule",
    "all_rules",
    "doc_rules",
    "run_lint",
]


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, D then X then S."""
    return determinism.ALL + executor.ALL + sync.ALL


def doc_rules() -> tuple[Rule, ...]:
    """The docs-sync subset ``tools/check_docs.py`` runs."""
    return sync.DOC_RULES
