"""X family: executor- and IPC-safety rules.

The sharded engine runs the same shard code under three executors
(sequential, thread pool, process pool) and promises byte-identical
results from all three.  These rules flag the patterns that break
that promise: state shared through module globals or mutable
defaults, caches that pin instances, payloads that pickle poorly,
and packed-IPC transports that silently drop fields.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.determinism import dotted_name
from repro.lint.engine import AstRule, Finding, ModuleSource

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
        "defaultdict",
        "deque",
        "OrderedDict",
        "Counter",
    }
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        return dotted in _MUTABLE_CALLS
    return False


class MutableDefaultRule(AstRule):
    """X-MUTDEF: mutable default argument values."""

    rule_id = "X-MUTDEF"
    severity = "error"
    summary = (
        "mutable default argument — shared across calls, and across "
        "shards when the function object crosses an executor"
    )
    hint = "default to None and create the container inside the function"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module.rel,
                        default.lineno,
                        default.col_offset + 1,
                        f"mutable default argument in {name}()",
                    )


class GlobalMutationRule(AstRule):
    """X-GLOBAL: functions that rebind module globals."""

    rule_id = "X-GLOBAL"
    severity = "error"
    summary = (
        "function rebinds a module global — invisible to process-pool "
        "workers, racy under the thread pool"
    )
    hint = (
        "thread state through arguments/return values, or move it onto "
        "an object the caller owns"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: dict[str, ast.Global] = {}
            assigned: set[str] = set()
            for child in ast.walk(node):
                if isinstance(child, ast.Global):
                    for name in child.names:
                        declared.setdefault(name, child)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name):
                                assigned.add(leaf.id)
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    if isinstance(child.target, ast.Name):
                        assigned.add(child.target.id)
            for name, stmt in declared.items():
                if name in assigned:
                    yield self.finding(
                        module.rel,
                        stmt.lineno,
                        stmt.col_offset + 1,
                        f"{node.name}() rebinds module global {name!r}",
                    )


_CACHE_DECORATORS = frozenset(
    {"lru_cache", "cache", "functools.lru_cache", "functools.cache"}
)


class LruCacheMethodRule(AstRule):
    """X-LRU: ``lru_cache`` on an instance method."""

    rule_id = "X-LRU"
    severity = "error"
    summary = (
        "lru_cache on an instance method — the cache keys on self, "
        "pinning every instance alive and breaking pool pickling"
    )
    hint = (
        "cache a module-level function of the method's real inputs, or "
        "memoize on the instance explicitly"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                names = {
                    dotted_name(
                        d.func if isinstance(d, ast.Call) else d
                    )
                    for d in item.decorator_list
                }
                if "staticmethod" in names or "classmethod" in names:
                    continue
                if not item.args.args or item.args.args[0].arg != "self":
                    continue
                if names & _CACHE_DECORATORS:
                    yield self.finding(
                        module.rel,
                        item.lineno,
                        item.col_offset + 1,
                        f"lru_cache on instance method "
                        f"{node.name}.{item.name}",
                    )


class BroadExceptRule(AstRule):
    """X-BARE-EXCEPT: ``except:`` / ``except Exception:``."""

    rule_id = "X-BARE-EXCEPT"
    severity = "error"
    summary = (
        "bare or Exception-wide except — swallows executor teardown "
        "(KeyboardInterrupt aside) and masks real shard failures"
    )
    hint = "catch the specific exception(s) the guarded code can raise"

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module.rel,
                    node.lineno,
                    node.col_offset + 1,
                    "bare except catches everything",
                )
                continue
            names = (
                [elt for elt in node.type.elts]
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for name_node in names:
                dotted = dotted_name(name_node)
                if dotted in self._BROAD:
                    yield self.finding(
                        module.rel,
                        node.lineno,
                        node.col_offset + 1,
                        f"except {dotted} is too broad",
                    )


class SwallowedExceptionRule(AstRule):
    """X-SWALLOW: except handlers whose whole body is pass/continue.

    A handler that only passes (or continues) makes a failure
    invisible: no degraded record, no log line, no counter.  The
    fault-tolerance machinery depends on every error either
    propagating or being *recorded* — decode failures become
    DegradedUnit entries, store failures disable the store loudly.
    Where discarding really is correct (quarantining an already-
    corrupt file, probing optional modules), say why in a suppression.
    """

    rule_id = "X-SWALLOW"
    severity = "error"
    summary = (
        "except handler swallows the exception — its entire body is "
        "pass/continue, so the failure leaves no trace anywhere"
    )
    hint = (
        "record the failure (degraded list, warning, counter) or "
        "suppress with a comment saying why discarding is safe"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(
                isinstance(stmt, (ast.Pass, ast.Continue))
                for stmt in node.body
            ):
                caught = (
                    dotted_name(node.type) if node.type is not None else None
                ) or "exception"
                yield self.finding(
                    module.rel,
                    node.lineno,
                    node.col_offset + 1,
                    f"handler swallows {caught} without recording it",
                )


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | ast.Call | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if dotted_name(target) in ("dataclass", "dataclasses.dataclass"):
            return decorator
    return None


class PoolDataclassSlotsRule(AstRule):
    """X-PICKLE: pool-boundary dataclasses must be slotted.

    Every dataclass defined in an executor-boundary module crosses (or
    feeds something that crosses) the process pool; ``slots=True``
    keeps the pickled payload to the declared fields — no ``__dict__``
    to drift, no silently-pickled extra state.
    """

    rule_id = "X-PICKLE"
    severity = "error"
    summary = (
        "pool-boundary dataclass without slots=True — pickles a "
        "__dict__ that can carry undeclared state across the pool"
    )
    hint = "declare @dataclass(slots=True) (or define __slots__)"

    #: Modules whose dataclasses are considered pool-crossing.
    boundary_suffixes = ("pipeline/engine.py",)
    #: Within those modules, the pool payloads by naming convention:
    #: executors/engines stay parent-side, tasks/results/shards cross.
    boundary_names = re.compile(r"(Task|Result|Shard)$")

    def applies_to(self, module: ModuleSource) -> bool:
        return module.rel.endswith(self.boundary_suffixes)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self.boundary_names.search(node.name):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            slotted = isinstance(decorator, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in decorator.keywords
            )
            has_dunder_slots = any(
                isinstance(item, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in item.targets
                )
                for item in node.body
            )
            if not slotted and not has_dunder_slots:
                yield self.finding(
                    module.rel,
                    node.lineno,
                    node.col_offset + 1,
                    f"dataclass {node.name} crosses the pool boundary "
                    "without slots=True",
                )


def _class_field_names(node: ast.ClassDef) -> list[str]:
    return [
        item.target.id
        for item in node.body
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)
    ]


class PackedResultCoverageRule(AstRule):
    """X-PACK: the packed IPC transport must cover every result field.

    ``pack_shard_result`` flattens a ``ShardResult`` for cheap process
    pool IPC.  A field added to ``ShardResult`` but never read inside
    ``pack_shard_result`` would silently vanish on the packed path —
    sequential and parallel runs would diverge.  Applies to any module
    defining both names, so the invariant follows the code if it moves.
    """

    rule_id = "X-PACK"
    severity = "error"
    summary = (
        "ShardResult field not referenced by pack_shard_result — the "
        "packed process-pool path would drop it"
    )
    hint = (
        "intern/copy the new field in pack_shard_result and restore it "
        "in PackedShardResult.unpack"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        result_class: ast.ClassDef | None = None
        pack_fn: ast.FunctionDef | None = None
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "ShardResult":
                result_class = node
            if (
                isinstance(node, ast.FunctionDef)
                and node.name == "pack_shard_result"
            ):
                pack_fn = node
        if result_class is None or pack_fn is None:
            return
        packed_attrs = {
            child.attr
            for child in ast.walk(pack_fn)
            if isinstance(child, ast.Attribute)
        }
        for field_name in _class_field_names(result_class):
            if field_name not in packed_attrs:
                yield self.finding(
                    module.rel,
                    pack_fn.lineno,
                    pack_fn.col_offset + 1,
                    f"pack_shard_result never reads ShardResult."
                    f"{field_name}",
                )


class AtomicWriteRule(AstRule):
    """X-ATOMIC: artifacts must not be written with raw Path writes.

    A raw ``Path.write_text`` / ``Path.write_bytes`` truncates the
    destination before the new bytes land: a crash (or SIGKILL — the
    exact scenario the resumable-audit machinery exists for) in the
    window leaves a torn file that poisons the next run.  Everything
    the pipeline writes goes through
    ``repro.fsutil.atomic_write_text`` / ``atomic_write_bytes``
    (temp + fsync + rename); writes that are genuinely fine torn
    (test fixtures, deliberate corruption) say why in a suppression.
    """

    rule_id = "X-ATOMIC"
    severity = "error"
    summary = (
        "raw Path.write_text/write_bytes — truncate-then-write leaves "
        "a torn file behind on a crash mid-write"
    )
    hint = (
        "write through repro.fsutil.atomic_write_text/atomic_write_bytes"
    )

    _WRITERS = frozenset({"write_text", "write_bytes"})

    def applies_to(self, module: ModuleSource) -> bool:
        # Production code only: tests write fixtures raw on purpose,
        # and fsutil implements the atomic primitive itself.
        return module.rel.startswith("src/") and not module.rel.endswith(
            "fsutil.py"
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._WRITERS
            ):
                continue
            yield self.finding(
                module.rel,
                node.lineno,
                node.col_offset + 1,
                f"raw .{func.attr}() is not crash-safe",
            )


ALL = (
    MutableDefaultRule(),
    GlobalMutationRule(),
    LruCacheMethodRule(),
    BroadExceptRule(),
    SwallowedExceptionRule(),
    PoolDataclassSlotsRule(),
    PackedResultCoverageRule(),
    AtomicWriteRule(),
)
