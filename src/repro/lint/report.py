"""Render one :class:`LintResult` as text or JSON."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The default one-line-per-finding report, hint included."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} [{finding.severity}] {finding.message}"
        )
        if finding.hint:
            lines.append(f"    hint: {finding.hint}")
    for finding in result.baselined:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} [baselined] {finding.message}"
        )
    for rule, path, message in result.stale_baseline:
        lines.append(
            f"{path}: stale baseline entry for {rule} "
            f"(no longer fires): {message}"
        )
    errors = sum(1 for f in result.findings if f.severity == "error")
    warnings = len(result.findings) - errors
    summary = (
        f"{len(result.findings)} finding(s) "
        f"({errors} error(s), {warnings} warning(s))"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entrie(s)"
    summary += f" — {result.files_scanned} file(s) scanned"
    if result.ok:
        summary = f"lint ok: {summary}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    document = {
        "version": 1,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "hint": f.hint,
            }
            for f in result.findings
        ],
        "baselined": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in result.baselined
        ],
        "stale_baseline": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in result.stale_baseline
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
