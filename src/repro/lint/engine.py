"""Core of the invariant linter: rule model, suppressions, baseline.

The linter walks the repository's Python sources once, parses each
file to an AST shared by every rule, and runs two kinds of rules:

* :class:`AstRule` — per-file ``ast`` checks (determinism, executor
  safety).  Each rule declares a stable ID, a severity, and a fix
  hint, and yields :class:`Finding` objects anchored to a line.
* :class:`ProjectRule` — whole-repository checks (docs/CLI/schema
  sync) that look at the tree and the docs rather than at one file.

Two escape hatches keep the signal honest:

* inline suppressions — ``# repro-lint: disable=RULE — reason`` on
  (or directly above) the offending line.  The reason is mandatory;
  a suppression without one, or one that matches no finding, is
  itself an error (``L-SUPPRESS`` / ``L-UNUSED``), so dead
  suppressions cannot accumulate.
* a baseline file — known findings recorded as (rule, path, message)
  triples that report but do not fail.  The committed baseline is
  empty and must stay empty; it exists so a future emergency has a
  paper trail instead of a disabled linter.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Sequence

from repro.fsutil import atomic_write_text

BASELINE_VERSION = 1

#: Rules report at one of these severities; every severity fails the
#: run (exit 1) — the distinction is informational, separating "this
#: is a bug" (error) from "this deserves a look" (warning).
SEVERITIES = ("error", "warning")

# Engine meta-rule IDs (not suppressible — they police the
# suppression mechanism itself).
RULE_SUPPRESS = "L-SUPPRESS"
RULE_UNUSED = "L-UNUSED"
RULE_PARSE = "L-PARSE"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule: str
    path: str  # repository-relative POSIX path
    line: int
    col: int
    message: str
    severity: str = "error"
    hint: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> tuple[str, str, str]:
        """Line-insensitive identity: surrounding edits must not churn
        the baseline, so the line number is deliberately excluded."""
        return (self.rule, self.path, self.message)


@dataclass(slots=True)
class ModuleSource:
    """One parsed Python file, shared by every AST rule."""

    path: Path  # absolute
    rel: str  # repository-relative POSIX path
    text: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        rel = path.resolve().relative_to(root.resolve()).as_posix()
        tree = ast.parse(text, filename=str(path))
        return cls(path=path, rel=rel, text=text, tree=tree,
                   lines=text.splitlines())


@dataclass(slots=True)
class Project:
    """What a :class:`ProjectRule` sees: the repo root and its docs."""

    root: Path

    def doc_files(self) -> list[Path]:
        docs = [self.root / "README.md"]
        docs_dir = self.root / "docs"
        if docs_dir.is_dir():
            docs.extend(sorted(docs_dir.glob("*.md")))
        return [path for path in docs if path.exists()]

    def rel(self, path: Path) -> str:
        return path.resolve().relative_to(self.root.resolve()).as_posix()


class Rule:
    """Common surface every rule exposes to the CLI and the catalog."""

    rule_id: ClassVar[str]
    severity: ClassVar[str] = "error"
    summary: ClassVar[str] = ""
    hint: ClassVar[str] = ""

    def finding(self, rel: str, line: int, col: int, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=rel,
            line=line,
            col=col,
            message=message,
            severity=self.severity,
            hint=self.hint,
        )


class AstRule(Rule):
    """A per-file rule over one parsed module."""

    def applies_to(self, module: ModuleSource) -> bool:
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


class ProjectRule(Rule):
    """A whole-repository rule (docs/CLI/schema sync)."""

    def check(self, project: Project) -> Iterator[Finding]:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# Inline suppressions
# ----------------------------------------------------------------------

#: Anything that *looks* like a suppression marker — parsed strictly
#: below so a malformed marker is an error, never silently inert.
_MARKER = re.compile(r"#\s*repro-lint:\s*(.*)$")
#: Strict form: ``disable=RULE[,RULE…] — reason`` (``--`` also accepted
#: as the separator; the reason is mandatory).
_DISABLE = re.compile(
    r"disable=([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)\s+(?:—|--)\s+(\S.*)$"
)


@dataclass(slots=True)
class Suppression:
    """One parsed ``# repro-lint: disable=…`` comment."""

    rel: str
    line: int  # line the comment sits on
    rules: tuple[str, ...]
    reason: str
    standalone: bool  # comment-only line → applies to the next line
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        if finding.rule not in self.rules:
            return False
        target = self.line + 1 if self.standalone else self.line
        return finding.line == target or finding.line == self.line


def _comment_tokens(text: str) -> Iterator[tuple[int, int, str]]:
    """Real COMMENT tokens only — a ``# repro-lint:`` inside a string
    literal or docstring is documentation, not a suppression."""
    import io
    import tokenize

    tokens = tokenize.generate_tokens(io.StringIO(text).readline)
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.start[1] + 1, token.string


def scan_suppressions(
    module: ModuleSource, known_rules: Iterable[str]
) -> tuple[list[Suppression], list[Finding]]:
    """Parse every suppression comment; malformed ones become findings."""
    known = set(known_rules)
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    for lineno, col, comment in _comment_tokens(module.text):
        marker = _MARKER.search(comment)
        if marker is None:
            continue
        line = module.lines[lineno - 1]
        parsed = _DISABLE.match(marker.group(1).strip())
        if parsed is None:
            problems.append(
                Finding(
                    rule=RULE_SUPPRESS,
                    path=module.rel,
                    line=lineno,
                    col=col,
                    message=(
                        "malformed suppression: expected "
                        "'# repro-lint: disable=RULE — reason' "
                        "(the reason is mandatory)"
                    ),
                )
            )
            continue
        rules = tuple(
            part.strip() for part in parsed.group(1).split(",") if part.strip()
        )
        unknown = [rule for rule in rules if rule not in known]
        if unknown:
            problems.append(
                Finding(
                    rule=RULE_SUPPRESS,
                    path=module.rel,
                    line=lineno,
                    col=col,
                    message=(
                        "suppression names unknown rule(s): "
                        + ", ".join(sorted(unknown))
                    ),
                )
            )
            continue
        suppressions.append(
            Suppression(
                rel=module.rel,
                line=lineno,
                rules=rules,
                reason=parsed.group(2).strip(),
                standalone=line.strip().startswith("#"),
            )
        )
    return suppressions, problems


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: Path) -> list[dict]:
    """Read a baseline file; absent file means an empty baseline."""
    if not path.exists():
        return []
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise BaselineError(
            f"baseline {path} must be "
            f'{{"version": {BASELINE_VERSION}, "findings": [...]}}'
        )
    for entry in document["findings"]:
        if not isinstance(entry, dict) or not {
            "rule",
            "path",
            "message",
        } <= set(entry):
            raise BaselineError(
                f"baseline {path}: every finding needs rule/path/message"
            )
    return document["findings"]


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    atomic_write_text(path, json.dumps(document, indent=2) + "\n")


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------

#: Directories never scanned, wherever they appear.
_SKIP_DIRS = {".git", "__pycache__", ".hypothesis", "results", "artifacts"}


def discover_files(root: Path, targets: Sequence[Path]) -> list[Path]:
    """Every ``.py`` file under the targets, deterministically ordered."""
    files: set[Path] = set()
    for target in targets:
        if target.is_file() and target.suffix == ".py":
            files.add(target.resolve())
            continue
        if not target.is_dir():
            raise FileNotFoundError(f"lint target {target} does not exist")
        files |= {
            path.resolve()
            for path in target.rglob("*.py")
            if not _SKIP_DIRS.intersection(path.parts)
        }
    return sorted(files)


@dataclass(slots=True)
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding]  # live findings (fail the run)
    baselined: list[Finding]  # matched a baseline entry (reported, pass)
    stale_baseline: list[tuple[str, str, str]]  # entries matching nothing
    files_scanned: int

    @property
    def ok(self) -> bool:
        return not self.findings


def run_lint(
    root: Path,
    targets: Sequence[Path] | None = None,
    rules: Sequence[Rule] | None = None,
    baseline_path: Path | None = None,
) -> LintResult:
    """Run ``rules`` (default: all registered) over ``targets``.

    ``targets`` defaults to the repository's source roots that exist
    under ``root``; project rules run once regardless of targets.
    """
    from repro.lint import all_rules  # local: registry imports rules

    root = Path(root).resolve()
    active: list[Rule] = list(rules) if rules is not None else list(all_rules())
    ast_rules = [rule for rule in active if isinstance(rule, AstRule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    enabled_ids = {rule.rule_id for rule in active}
    # Suppressions may legitimately name any registered rule, not just
    # the ones enabled for this run — a `--select D-NOW` pass must not
    # report every X-BARE-EXCEPT suppression as "unknown".
    known_ids = {rule.rule_id for rule in all_rules()} | enabled_ids

    if targets is None:
        targets = [
            root / name
            for name in ("src", "tools", "benchmarks", "tests")
            if (root / name).is_dir()
        ]

    findings: list[Finding] = []
    suppressions: list[Suppression] = []
    files = discover_files(root, list(targets)) if ast_rules else []
    for path in files:
        try:
            module = ModuleSource.load(path, root)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule=RULE_PARSE,
                    path=path.resolve().relative_to(root).as_posix(),
                    line=exc.lineno or 1,
                    col=exc.offset or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        module_suppressions, problems = scan_suppressions(module, known_ids)
        suppressions.extend(module_suppressions)
        findings.extend(problems)
        for rule in ast_rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))

    project = Project(root=root)
    for rule in project_rules:
        findings.extend(rule.check(project))

    # Apply suppressions (inline comments only ever cover Python files).
    kept: list[Finding] = []
    for finding in findings:
        covering = next(
            (
                s
                for s in suppressions
                if s.rel == finding.path and s.covers(finding)
            ),
            None,
        )
        if covering is None:
            kept.append(finding)
        else:
            covering.used = True
    for suppression in suppressions:
        # Unused-ness is only decidable when every rule the comment
        # names actually ran; under `--select` a suppression for a
        # disabled rule is neither used nor dead.
        if not suppression.used and set(suppression.rules) <= enabled_ids:
            kept.append(
                Finding(
                    rule=RULE_UNUSED,
                    path=suppression.rel,
                    line=suppression.line,
                    col=1,
                    message=(
                        "suppression for "
                        + ",".join(suppression.rules)
                        + " matched no finding — delete it"
                    ),
                )
            )

    # Apply the baseline.
    baseline = load_baseline(baseline_path) if baseline_path else []
    allowed = {(e["rule"], e["path"], e["message"]) for e in baseline}
    live: list[Finding] = []
    baselined: list[Finding] = []
    matched: set[tuple[str, str, str]] = set()
    for finding in kept:
        key = finding.baseline_key()
        if key in allowed:
            matched.add(key)
            baselined.append(finding)
        else:
            live.append(finding)
    stale = sorted(allowed - matched)

    live.sort(key=Finding.sort_key)
    baselined.sort(key=Finding.sort_key)
    return LintResult(
        findings=live,
        baselined=baselined,
        stale_baseline=stale,
        files_scanned=len(files),
    )
