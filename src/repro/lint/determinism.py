"""D family: determinism rules.

Everything this reproduction promises rests on byte-identical output
for a given seed — across executors, across runs, across machines.
These rules flag the three ways nondeterminism usually sneaks in:
shared module-level RNG state, wall-clock reads, and iteration over
unordered containers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import AstRule, Finding, ModuleSource

#: ``random``-module functions that touch the shared global RNG.
#: ``random.Random``/``random.SystemRandom`` construct independent
#: (seedable) generators and are the sanctioned alternative.
UNSEEDED_RANDOM_FNS = frozenset(
    {
        "random",
        "seed",
        "getstate",
        "setstate",
        "getrandbits",
        "randbytes",
        "randrange",
        "randint",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)

#: Wall-clock / entropy reads, matched against the dotted call name.
#: ``time.perf_counter``/``time.monotonic`` are fine — they measure
#: durations, they never leak the date into output.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
    }
)


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _imports_module(tree: ast.Module, name: str) -> bool:
    """True when the file imports ``name`` (at any nesting level)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == name for alias in node.names):
                return True
    return False


class UnseededRandomRule(AstRule):
    """D-RANDOM: calls into the shared module-level RNG."""

    rule_id = "D-RANDOM"
    severity = "error"
    summary = (
        "unseeded random.* module call — shared global RNG state makes "
        "output depend on call order across shards and sessions"
    )
    hint = "seed an instance: rng = random.Random(seed); rng.choice(...)"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        uses_random = _imports_module(module.tree, "random")
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in UNSEEDED_RANDOM_FNS:
                        yield self.finding(
                            module.rel,
                            node.lineno,
                            node.col_offset + 1,
                            f"from random import {alias.name} pulls in the "
                            "shared global RNG",
                        )
            if not uses_random:
                continue
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr in UNSEEDED_RANDOM_FNS
                ):
                    yield self.finding(
                        module.rel,
                        node.lineno,
                        node.col_offset + 1,
                        f"random.{func.attr}() uses the shared global RNG",
                    )


class WallClockRule(AstRule):
    """D-NOW: wall-clock or entropy reads outside the sanctioned seam."""

    rule_id = "D-NOW"
    severity = "error"
    summary = (
        "wall-clock/entropy read (time.time, datetime.now, uuid4, "
        "os.urandom) — output would differ run to run"
    )
    hint = (
        "derive timestamps from the corpus seed/config, or route through "
        "an injectable seam with a justified suppression"
    )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            for banned in WALL_CLOCK_CALLS:
                if dotted == banned or dotted.endswith("." + banned):
                    yield self.finding(
                        module.rel,
                        node.lineno,
                        node.col_offset + 1,
                        f"{dotted}() reads the wall clock / OS entropy",
                    )
                    break


# Callables whose result does not depend on iteration order: feeding
# them an unordered iterable is harmless.
_ORDER_INSENSITIVE_CALLS = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"}
)


def _unordered_source(node: ast.expr) -> str | None:
    """Describe ``node`` when its iteration order is undefined."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted in ("set", "frozenset"):
            return f"{dotted}(...)"
        if dotted in ("glob.glob", "glob.iglob", "os.listdir", "os.scandir"):
            return f"{dotted}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "iterdir",
            "glob",
            "rglob",
        ):
            return f".{node.func.attr}(...)"
    return None


class UnsortedIterationRule(AstRule):
    """D-SORT: iterating an unordered source where order can leak out."""

    rule_id = "D-SORT"
    severity = "error"
    summary = (
        "iteration over an unordered source (set, glob, listdir, iterdir) "
        "in an order-sensitive position"
    )
    hint = "wrap the iterable in sorted(...) to pin a deterministic order"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        # Iterables in a provably order-insensitive position: direct
        # argument of a commutative reducer, or the generators of a
        # comprehension that *builds* an unordered container anyway
        # (set/dict comprehensions — their result ignores order).
        sanctioned: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _ORDER_INSENSITIVE_CALLS:
                    for arg in node.args:
                        sanctioned.add(id(arg))
                        # sum(… for … in SRC): the genexp's sources
                        # inherit the reducer's order-insensitivity.
                        if isinstance(arg, ast.GeneratorExp):
                            for comp in arg.generators:
                                sanctioned.add(id(comp.iter))
            if isinstance(node, (ast.SetComp, ast.DictComp)):
                for comp in node.generators:
                    sanctioned.add(id(comp.iter))

        def flag(iter_node: ast.expr) -> Iterator[Finding]:
            if id(iter_node) in sanctioned:
                return
            description = _unordered_source(iter_node)
            if description is not None:
                yield self.finding(
                    module.rel,
                    iter_node.lineno,
                    iter_node.col_offset + 1,
                    f"iterating {description} in undefined order",
                )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from flag(node.iter)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for comp in node.generators:
                    yield from flag(comp.iter)


ALL = (UnseededRandomRule(), WallClockRule(), UnsortedIterationRule())
