"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``audit``      run the DiffAudit pipeline and print/export results
``stream``     incremental bounded-memory audit over a packet feed
``classify``   classify raw data type keys from the command line
``generate``   write raw capture artifacts (HAR/PCAP/keylog) to disk
``report``     render one paper table/figure from a fresh run
``distill``    train the small local classifier from the LLM teacher
``cache``      inspect/maintain the persistent classification store
``bench``      run the benchmark suite and record ``BENCH_<n>.json``
``lint``       static invariant analysis (determinism/executor/sync)

``audit``, ``report``, ``stream`` and ``classify`` accept
``--cache-dir DIR`` to persist classifications across runs and worker
processes; see ``docs/cli.md`` for the complete flag reference.

SIGINT/SIGTERM are handled gracefully everywhere: parallel shard
workers are torn down without traceback spew, a streaming session
flushes a final snapshot, and the process exits 130.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path

from repro import CorpusConfig, DiffAudit
from repro.datatypes.store import StoreError
from repro.faults import FAULT_PROFILES, FaultPlan
from repro.fsutil import atomic_write_text
from repro.lint.cli import add_lint_arguments
from repro.lint.cli import run_from_args as _run_lint_args
from repro.pipeline.engine import EXECUTOR_KINDS
from repro.pipeline.replay import ReplayCorpus, ReplayError, replay_config
from repro.services.catalog import SERVICES
from repro.services.generator import LOAD_PROFILES
from repro.stream.impair import IMPAIRMENT_PROFILES

# Derived from the catalog so the CLI choices can never drift from the
# services the pipeline actually knows.
_SERVICES = tuple(spec.key for spec in SERVICES())

# Effective defaults for corpus flags.  The parser's own defaults are
# None ("not specified") so `audit --from-artifacts` can tell an
# omitted flag — fill it from the corpus manifest — apart from an
# explicitly typed value, which always wins.
_DEFAULT_SEED = 2023
_DEFAULT_SCALE = 0.02
_DEFAULT_PROFILE = "standard"


def _positive_int(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--services",
        nargs="+",
        choices=_SERVICES,
        default=None,
        help="subset of services (default: all six)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="traffic volume relative to the paper's (default 0.02)",
    )
    parser.add_argument("--seed", type=int, default=None, help="(default 2023)")
    parser.add_argument(
        "--profile",
        choices=sorted(LOAD_PROFILES),
        default=None,
        help="named load profile scaling traffic volume and request rate "
        "(default standard)",
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for per-service shards (default 1: sequential)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="auto",
        help="shard executor: auto picks sequential at --jobs 1, a thread "
        "pool for replayed corpora (decode and a warm store release the "
        "GIL) and a process pool otherwise; results are byte-identical "
        "for every choice",
    )
    _add_impair_argument(parser)


def _add_impair_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--impair",
        choices=sorted(IMPAIRMENT_PROFILES),
        default=None,
        help="seeded network-impairment profile applied to every mobile "
        "capture (reorder/duplicate are recoverable by reassembly; "
        "drop/jitter/fragment are not)",
    )


def _add_metrics_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the run's final telemetry snapshot to FILE on exit "
        "(.prom/.txt: Prometheus text exposition format; any other "
        "suffix: a JSON snapshot); telemetry is observational only — "
        "results are byte-identical with or without it",
    )


def _write_metrics_out(args) -> None:
    """Honor ``--metrics-out`` after a command's work is done."""
    path = getattr(args, "metrics_out", None)
    if not path:
        return
    from repro.obs import write_metrics

    write_metrics(path)
    print(f"wrote metrics to {path}", file=sys.stderr)


def _add_cache_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="directory for the persistent classification store; verdicts "
        "persist across runs and are shared by --jobs workers, so warm "
        "re-runs skip the inner classifier entirely (results are "
        "byte-identical either way)",
    )


def _add_replay_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--from-artifacts",
        metavar="DIR",
        default=None,
        help="replay captured HAR/PCAP artifacts from DIR (a generate "
        "output directory or an external corpus) instead of generating "
        "traffic in-memory; omitted corpus flags are filled from DIR's "
        "manifest.json",
    )
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="with --from-artifacts and --cache-dir: disable per-unit "
        "result reuse and recompute every trace unit (results are "
        "byte-identical either way; this only trades time)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run: requires --from-artifacts and "
        "--cache-dir, and reuses every per-unit result the killed run "
        "already flushed to the store (results are byte-identical to a "
        "cold run; prints how many units were reused)",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject-faults",
        metavar="PROFILE",
        choices=sorted(FAULT_PROFILES),
        default=None,
        help="seeded fault-injection profile exercising the recovery "
        "machinery: " + ", ".join(sorted(FAULT_PROFILES)) + ". Faults "
        "are deterministic in (--fault-seed, profile); kill/stall/store "
        "faults never change output bytes, data faults (corrupt-unit, "
        "chaos) need --keep-going",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the --inject-faults plan (default 0)",
    )
    strictness = parser.add_mutually_exclusive_group()
    strictness.add_argument(
        "--strict",
        action="store_true",
        default=True,
        help="fail fast on the first undecodable or worker-killing trace "
        "unit, naming its path and digest (this is the default)",
    )
    strictness.add_argument(
        "--keep-going",
        dest="strict",
        action="store_false",
        help="quarantine failing trace units instead of aborting: the run "
        "completes, the report gains a `degraded` section naming each "
        "quarantined unit, and the exit code is 3",
    )


def _fault_plan(args) -> FaultPlan | None:
    if not getattr(args, "inject_faults", None):
        return None
    return FaultPlan(profile=args.inject_faults, seed=args.fault_seed)


def _resume_usage_error(args) -> str | None:
    if not getattr(args, "resume", False):
        return None
    if not args.from_artifacts or not args.cache_dir:
        return (
            "error: --resume requires --from-artifacts DIR and --cache-dir "
            "DIR (resume reuses the per-unit results the interrupted run "
            "flushed into the store)"
        )
    if args.no_incremental:
        return (
            "error: --resume and --no-incremental conflict (resume IS "
            "per-unit result reuse)"
        )
    return None


def _config(args, corpus: ReplayCorpus | None = None) -> CorpusConfig:
    services = tuple(args.services) if args.services else None
    impair = getattr(args, "impair", None)
    if corpus is not None:
        manifest_config = (corpus.manifest or {}).get("config", {})
        for name in ("seed", "scale", "profile", "impair"):
            value = getattr(args, name, None)
            if value is None:
                continue
            if name in manifest_config:
                recorded = manifest_config[name]
            elif name == "impair" and manifest_config:
                recorded = None  # a manifest without the key is clean
            else:
                continue
            if value != recorded:
                # Replay never regenerates traffic, so these flags only
                # change what the result's config block *claims* about
                # the archived corpus — say so instead of silently
                # mislabeling the data.
                print(
                    f"warning: --{name} {value} overrides the corpus manifest's "
                    f"{name} {recorded}; replayed traffic is "
                    "unchanged, only the reported config differs",
                    file=sys.stderr,
                )
        return replay_config(
            corpus,
            seed=args.seed,
            scale=args.scale,
            profile=args.profile,
            impair=impair,
            services=services,
            fallback=CorpusConfig(
                seed=_DEFAULT_SEED, scale=_DEFAULT_SCALE, profile=_DEFAULT_PROFILE
            ),
        )
    return CorpusConfig(
        seed=args.seed if args.seed is not None else _DEFAULT_SEED,
        scale=args.scale if args.scale is not None else _DEFAULT_SCALE,
        services=services,
        profile=args.profile if args.profile is not None else _DEFAULT_PROFILE,
        impair=impair,
    )


def _scan_replay_corpus(args) -> ReplayCorpus | None:
    if not getattr(args, "from_artifacts", None):
        return None
    return ReplayCorpus.scan(Path(args.from_artifacts))


def _output_usage_error(args) -> str | None:
    """Reject the ambiguous ``--output`` forms before running anything.

    With ``--json``, ``--output`` names the JSON summary *file*;
    without it, ``--output`` names the *directory* that receives
    ``flows.csv`` and ``findings.csv``.  Mixing the two used to fail
    only after a full (multi-minute at scale) audit run, or worse,
    silently create a directory named ``results.json``.
    """
    if not args.output:
        return None
    path = Path(args.output)
    if args.json:
        if path.is_dir():
            return (
                f"error: with --json, --output must be a file path, but "
                f"{args.output!r} is an existing directory"
            )
        if not path.parent.is_dir():
            return (
                f"error: cannot write {args.output!r}: parent directory "
                f"{str(path.parent)!r} does not exist"
            )
    else:
        if path.suffix == ".json":
            return (
                f"error: without --json, --output names a directory for CSV "
                f"exports, but {args.output!r} looks like a JSON file path "
                "(add --json for a JSON summary file)"
            )
        if path.is_file():
            return (
                f"error: without --json, --output names a directory for CSV "
                f"exports, but {args.output!r} is an existing file"
            )
    return None


def cmd_audit(args) -> int:
    error = _resume_usage_error(args) or _output_usage_error(args)
    if error is None and args.with_provenance and not (
        args.from_artifacts and args.json
    ):
        error = "error: --with-provenance requires --from-artifacts and --json"
    if error:
        print(error, file=sys.stderr)
        return 2
    span_sink = None
    if args.spans_out:
        from repro.obs.trace import SpanRecorder

        span_sink = SpanRecorder(retain_events=True)
    try:
        corpus = _scan_replay_corpus(args)
        result, profile = DiffAudit(
            _config(args, corpus),
            replay=corpus,
            jobs=args.jobs,
            executor=args.executor,
            cache_dir=args.cache_dir,
            incremental=not args.no_incremental,
            keep_going=not args.strict,
            faults=_fault_plan(args),
            span_sink=span_sink,
        ).run_profiled()
    except (ReplayError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.profile_out:
        from repro.pipeline.profile import write_profile

        write_profile(args.profile_out, profile)
        print(f"wrote profile to {args.profile_out}", file=sys.stderr)
    if span_sink is not None:
        span_sink.write_jsonl(args.spans_out)
        print(f"wrote spans to {args.spans_out}", file=sys.stderr)
    _write_metrics_out(args)
    if args.verbose:
        # One consistent run summary, whether the corpus was generated
        # in-memory or replayed from disk.
        engine_profile = profile.get("engine", {})
        print(
            f"run summary: {engine_profile.get('traces', 0)} traces, "
            f"{len(result.degraded)} degraded, "
            f"{engine_profile.get('store_hits', 0)} store hits, "
            f"{profile['wall_time_s']:.2f}s wall",
            file=sys.stderr,
        )
    if args.verbose or args.resume:
        engine_profile = profile.get("engine", {})
        if "unit_hits" in engine_profile:
            if args.resume:
                print(
                    f"resumed: {engine_profile['unit_hits']} unit results "
                    f"reused, {engine_profile['unit_misses']} recomputed",
                    file=sys.stderr,
                )
            else:
                print(
                    f"incremental replay: {engine_profile['unit_hits']} unit "
                    f"hits, {engine_profile['unit_misses']} dirty units "
                    "recomputed",
                    file=sys.stderr,
                )
        else:
            print(
                "incremental replay: inactive (requires --from-artifacts "
                "and --cache-dir)",
                file=sys.stderr,
            )
    provenance = corpus.provenance() if args.with_provenance else None
    status = _emit_result(result, json_flag=args.json, output=args.output,
                          provenance=provenance)
    return _degraded_status(result) if status == 0 else status


def _degraded_status(result) -> int:
    """Exit 3 ("completed with degraded units") when any unit was
    quarantined under --keep-going; 0 on a fully clean run."""
    if not result.degraded:
        return 0
    print(
        f"warning: completed with {len(result.degraded)} degraded unit(s); "
        "see the report's `degraded` section",
        file=sys.stderr,
    )
    return 3


def _emit_result(result, json_flag: bool, output: str | None, provenance=None) -> int:
    """Print/export one audit result (shared by ``audit`` and ``stream``)."""
    if json_flag:
        from repro.reporting.export import result_to_json

        document = result_to_json(result, provenance=provenance)
        if output:
            atomic_write_text(Path(output), document)
            print(f"wrote {output}")
        else:
            print(document)
        return 0
    for service in sorted(result.audits):
        for line in result.audits[service].summary_lines():
            print(line)
        print()
    if output:
        from repro.reporting.export import findings_to_csv, flows_to_csv

        directory = Path(output)
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(directory / "flows.csv", flows_to_csv(result.flows))
        atomic_write_text(directory / "findings.csv", findings_to_csv(result))
        print(f"wrote {directory}/flows.csv and {directory}/findings.csv")
    return 0


def cmd_stream(args) -> int:
    """Incremental bounded-memory audit over a packet feed."""
    import json as json_module

    from repro.net.pcap import PcapError
    from repro.stream import (
        ArtifactStreamSource,
        EvictionPolicy,
        FollowPcapSource,
        LiveGeneratorSource,
        SingleCaptureSource,
        StreamAudit,
        StreamError,
        snapshot_summary,
    )

    chosen = [
        name
        for name, value in (
            ("--from-artifacts", args.from_artifacts),
            ("--pcap", args.pcap),
            ("--live", args.live),
        )
        if value
    ]
    if len(chosen) != 1:
        print(
            "error: stream needs exactly one source: --from-artifacts DIR, "
            "--pcap FILE, or --live",
            file=sys.stderr,
        )
        return 2
    if args.follow and not args.pcap:
        print("error: --follow requires --pcap FILE", file=sys.stderr)
        return 2
    if args.pcap and args.services:
        # The capture's service comes from its file stem; a filter that
        # could contradict it must not be silently ignored.
        print(
            "error: --services cannot be combined with --pcap (the trace's "
            "service comes from the capture's file stem)",
            file=sys.stderr,
        )
        return 2
    error = _output_usage_error(args)
    if error:
        print(error, file=sys.stderr)
        return 2

    snapshot_dir = Path(args.snapshot_dir) if args.snapshot_dir else None
    if snapshot_dir is not None:
        snapshot_dir.mkdir(parents=True, exist_ok=True)

    def write_snapshot(index: int, output, final: bool = False) -> None:
        summary = snapshot_summary(output)
        if snapshot_dir is not None:
            name = "snapshot_final.json" if final else f"snapshot_{index:05d}.json"
            # Atomic so a kill mid-write (the exact moment snapshots
            # exist for) never leaves a truncated JSON file behind.
            atomic_write_text(
                snapshot_dir / name, json_module.dumps(summary, indent=1) + "\n"
            )
        print(
            f"snapshot {index}: {summary['traces']} traces, "
            f"{summary['packets']} packets, "
            f"{summary['flow_observations']} flow observations",
            file=sys.stderr,
        )

    try:
        if args.from_artifacts:
            corpus = ReplayCorpus.scan(Path(args.from_artifacts))
            config = _config(args, corpus)
            source = ArtifactStreamSource(
                corpus=corpus, services=config.services or tuple(corpus.services())
            )
        elif args.pcap:
            if args.follow:
                source = FollowPcapSource(
                    pcap=Path(args.pcap),
                    keylog=Path(args.keylog) if args.keylog else None,
                    poll_interval=args.poll_interval,
                    stop_after_idle=args.stop_after_idle,
                )
            else:
                source = SingleCaptureSource(
                    pcap=Path(args.pcap),
                    keylog=Path(args.keylog) if args.keylog else None,
                )
            meta = source.meta()
            args.services = [meta.service]
            config = _config(args)
        else:  # --live
            config = _config(args)
        if not config.service_specs():
            raise StreamError(
                "no catalog services to stream (configured: "
                f"{', '.join(config.services or ())})"
            )
        if args.live:
            source = LiveGeneratorSource(config=config)
        session = StreamAudit(
            config=config,
            policy=EvictionPolicy(
                idle_timeout=args.idle_timeout, byte_budget=args.byte_budget
            ),
            snapshot_every=args.snapshot_every,
            cache_dir=args.cache_dir,
        )
    except (ReplayError, StreamError, StoreError, PcapError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    server = None
    if args.metrics_port is not None:
        from repro.obs.http import MetricsServer

        def _live_stats() -> dict:
            return {
                "traces": session.trace_count,
                "packets": session.packet_count,
                "evictions": session.evictions,
                "high_water_bytes": session.high_water_bytes,
            }

        try:
            # The constructor binds the socket, so it belongs in the
            # try with start(): a port already in use fails here.
            server = MetricsServer(port=args.metrics_port, stats_fn=_live_stats)
            port = server.start()
        except OSError as exc:
            print(
                f"error: cannot bind metrics port {args.metrics_port}: {exc}",
                file=sys.stderr,
            )
            return 2
        print(
            f"serving metrics on http://127.0.0.1:{port}/metrics "
            f"(JSON: /stats)",
            file=sys.stderr,
        )

    index = 0
    try:
        for output in session.snapshots(source):
            index += 1
            write_snapshot(index, output)
    except KeyboardInterrupt:
        # Graceful teardown: flush a final snapshot of everything the
        # stream had fully consumed, then exit non-zero.  With
        # --cache-dir, classifications already persisted, so the next
        # run starts warm.
        write_snapshot(index + 1, session.snapshot(), final=True)
        print(
            f"interrupted after {session.trace_count} traces "
            f"({session.packet_count} packets); final snapshot flushed",
            file=sys.stderr,
        )
        return 130
    except (ReplayError, StreamError, PcapError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.stop()
    if snapshot_dir is not None or args.snapshot_every:
        write_snapshot(index + 1, session.snapshot(), final=True)
    status = _emit_result(session.result(), json_flag=args.json, output=args.output)
    _write_metrics_out(args)
    return status


def cmd_classify(args) -> int:
    from repro.datatypes.cache import CachingClassifier
    from repro.datatypes.majority import MajorityVoteClassifier
    from repro.datatypes.store import PersistentClassifier, store_path_for

    keys = args.keys
    if not keys:
        if sys.stdin.isatty():
            # Without this, an interactive `repro classify` blocks
            # silently on a terminal read that looks like a hang.
            print(
                "error: no keys given and stdin is a terminal; pass keys as "
                "arguments (repro classify email age) or pipe them in "
                "(printf 'email\\nage\\n' | repro classify)",
                file=sys.stderr,
            )
            return 2
        keys = [line.strip() for line in sys.stdin if line.strip()]
    classifier: object = MajorityVoteClassifier(confidence_mode=args.mode)
    persistent = None
    if args.cache_dir:
        # Interactive use warms the exact store a full `audit
        # --cache-dir` run reads, and benefits from it in turn.
        persistent = PersistentClassifier.wrap(
            classifier, store_path_for(args.cache_dir)
        )
        classifier = persistent
    cache = CachingClassifier.wrap(classifier)
    try:
        if persistent is not None:
            persistent.store  # fail fast on an unusable --cache-dir
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for verdict in cache.classify_batch(keys):
        print(verdict.formatted())
    if persistent is not None and keys and not persistent._disabled:
        # Statistics are best-effort: classification succeeded, so a
        # store failure here warns instead of failing the command
        # (mirroring AuditEngine.run's record_run handling).
        try:
            persistent.store.record_run(
                persistent.inner.name,
                memory_hits=cache.hits,
                store_hits=persistent.store_hits,
                misses=persistent.misses,
            )
        except StoreError as exc:
            print(
                f"warning: could not record run statistics: {exc}",
                file=sys.stderr,
            )
    if args.verbose:
        from repro.datatypes.store import RunRecord

        counters = RunRecord(
            id=0,
            classifier=cache.name,
            memory_hits=cache.hits,
            store_hits=persistent.store_hits if persistent else 0,
            misses=persistent.misses if persistent else cache.misses,
        )
        print(f"cache: {counters.summary()}", file=sys.stderr)
    return 0


def cmd_generate(args) -> int:
    from repro.pipeline.engine import generate_corpus_artifacts

    directory = Path(args.output)
    try:
        count = generate_corpus_artifacts(
            _config(args), directory, jobs=args.jobs, executor=args.executor
        )
    except ReplayError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {count} trace artifacts into {directory}/")
    return 0


def cmd_report(args) -> int:
    error = _resume_usage_error(args)
    if error:
        print(error, file=sys.stderr)
        return 2
    try:
        corpus = _scan_replay_corpus(args)
        result = DiffAudit(
            _config(args, corpus),
            replay=corpus,
            jobs=args.jobs,
            executor=args.executor,
            cache_dir=args.cache_dir,
            incremental=not args.no_incremental,
            keep_going=not args.strict,
            faults=_fault_plan(args),
        ).run()
    except (ReplayError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.linkability.analysis import linkability_matrix
    from repro.reporting import (
        render_census,
        render_fig3,
        render_fig4,
        render_fig5,
        render_table1,
        render_table2,
        render_table4,
        render_table5,
    )

    def render_ci() -> str:
        from repro.audit.contextual import summarize
        from repro.reporting.tables import render_table

        rows = []
        for service in sorted(result.audits):
            summary = summarize(
                [o for o in result.flows.observations() if o.service == service]
            )
            rows.append(
                [
                    service,
                    str(summary.appropriate),
                    str(summary.conditional),
                    str(summary.inappropriate),
                    f"{summary.inappropriate_fraction:.1%}",
                ]
            )
        return render_table(
            ["Service", "Appropriate", "Conditional", "Inappropriate", "Inapp. %"],
            rows,
            "Contextual-integrity judgment",
        )

    renderers = {
        "table1": lambda: render_table1(result.dataset),
        "table2": lambda: render_table2(result.flows),
        "table4": lambda: render_table4(result.flows),
        "table5": render_table5,
        "fig3": lambda: render_fig3(linkability_matrix(result.flows)),
        "fig4": lambda: render_fig4(linkability_matrix(result.flows)),
        "fig5": lambda: render_fig5(result.alluvial),
        "census": lambda: render_census(result.census),
        "ci": render_ci,
    }
    print(renderers[args.artifact]())
    _write_metrics_out(args)
    return _degraded_status(result)


def cmd_distill(args) -> int:
    from repro.datatypes.distill import distill
    from repro.datatypes.majority import MajorityVoteClassifier
    from repro.services.payloads import PayloadFactory

    factory = PayloadFactory(seed=args.seed)
    teacher = MajorityVoteClassifier(confidence_mode="avg")
    keys = sorted(factory.registry.truth)
    student, report = distill(
        teacher,
        keys,
        confidence_threshold=args.threshold,
        truth=factory.registry.truth,
    )
    print(f"training labels:     {report.training_size}")
    print(f"student parameters:  {report.student_parameters}")
    print(f"teacher agreement:   {report.teacher_agreement:.3f}")
    if report.student_accuracy is not None:
        print(f"student accuracy:    {report.student_accuracy:.3f}")
        print(f"teacher accuracy:    {report.teacher_accuracy:.3f}")
    return 0


def _open_store(args):
    """Open an existing store, or report why it can't be.

    Inspection/maintenance commands open with ``recover=False``: a
    corrupt store is reported (exit 2) with the file left untouched
    for salvage, never silently quarantined and rebuilt empty — that
    recovery behavior is for the audit pipeline, where the store is
    disposable, not for the command asked to show its contents.
    """
    from repro.datatypes.store import ClassificationStore, StoreError, store_path_for

    path = store_path_for(args.cache_dir)
    if not path.exists():
        print(f"error: no classification store at {path}", file=sys.stderr)
        return None
    try:
        return ClassificationStore(path, recover=False)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def cmd_cache_stats(args) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    try:
        with store:
            stats = store.stats()
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"store:   {stats.path}")
    print(f"entries: {stats.total_entries}")
    for name, count in stats.entries.items():
        print(f"  {name}: {count}")
    print(f"unit results: {stats.total_unit_results}")
    for service, count in stats.unit_results.items():
        print(f"  {service}: {count}")
    if stats.stale_unit_results:
        print(
            f"  stale (older result schema): {stats.stale_unit_results} "
            "(prune with `cache prune --unit-results`)"
        )
    print(f"runs recorded: {stats.run_count}")
    last = stats.last_run
    if last is not None:
        print(f"last run ({last.classifier}): {last.summary()}")
    return 0


def cmd_cache_export(args) -> int:
    import json

    store = _open_store(args)
    if store is None:
        return 2
    try:
        with store:
            lines = [
                json.dumps(
                    {
                        "classifier": name,
                        "text": verdict.text,
                        "label": verdict.label.value if verdict.label else None,
                        "confidence": verdict.confidence,
                        "explanation": verdict.explanation,
                    },
                    sort_keys=True,
                )
                for name, verdict in store.entries(args.classifier)
            ]
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    output = "\n".join(lines)
    if args.output:
        try:
            atomic_write_text(Path(args.output), output + "\n" if output else "")
        except OSError as exc:
            print(f"error: cannot write {args.output!r}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {len(lines)} entries to {args.output}")
    else:
        if output:
            print(output)
    return 0


def cmd_cache_prune(args) -> int:
    if args.classifier is None and args.below is None and not args.unit_results:
        print(
            "error: prune needs --classifier, --below and/or --unit-results "
            "(use `cache clear` to wipe the store)",
            file=sys.stderr,
        )
        return 2
    store = _open_store(args)
    if store is None:
        return 2
    try:
        with store:
            removed = 0
            if args.classifier is not None or args.below is not None:
                removed = store.prune(
                    classifier=args.classifier, below=args.below
                )
            removed_units = (
                store.prune_unit_results() if args.unit_results else 0
            )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    message = f"pruned {removed} entries"
    if args.unit_results:
        message += f" and {removed_units} stale unit results"
    print(message)
    return 0


def cmd_cache_clear(args) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    try:
        with store:
            removed = store.clear()
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"cleared {removed} entries")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import main as bench_main

    argv = ["--output-dir", args.output_dir, "--jobs", str(args.jobs)]
    if args.quick:
        argv.append("--quick")
    if args.scale is not None:
        argv.extend(["--scale", str(args.scale)])
    if args.profile is not None:
        argv.extend(["--profile", args.profile])
    if args.repeats is not None:
        argv.extend(["--repeats", str(args.repeats)])
    if args.min_decode_speedup is not None:
        argv.extend(["--min-decode-speedup", str(args.min_decode_speedup)])
    if args.min_audit_speedup is not None:
        argv.extend(["--min-audit-speedup", str(args.min_audit_speedup)])
    if args.min_audit_parallel_speedup is not None:
        argv.extend(
            ["--min-audit-parallel-speedup", str(args.min_audit_parallel_speedup)]
        )
    if args.min_parallel_efficiency is not None:
        argv.extend(
            ["--min-parallel-efficiency", str(args.min_parallel_efficiency)]
        )
    if args.min_incremental_speedup is not None:
        argv.extend(
            ["--min-incremental-speedup", str(args.min_incremental_speedup)]
        )
    status = bench_main(argv)
    # Bench workloads run in isolated child processes, so this snapshot
    # covers the orchestrating process — written even on a failed gate,
    # since that is exactly when telemetry is wanted.
    _write_metrics_out(args)
    return status


def cmd_lint(args) -> int:
    """``repro lint`` — thin shim over :mod:`repro.lint.cli`."""
    return _run_lint_args(args)


def _package_version() -> str:
    """The installed distribution's version, else the source tree's.

    ``pip install -e .`` registers package metadata; a bare
    ``PYTHONPATH=src`` checkout has none, so fall back to
    ``repro.__version__``.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except (ImportError, PackageNotFoundError):
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DiffAudit reproduction — differential privacy auditing",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    audit = sub.add_parser("audit", help="run the full audit pipeline")
    _add_corpus_arguments(audit)
    _add_replay_argument(audit)
    _add_cache_argument(audit)
    _add_fault_arguments(audit)
    audit.add_argument("--json", action="store_true", help="emit a JSON summary")
    audit.add_argument(
        "--output",
        help="with --json: file path for the JSON summary; without --json: "
        "directory that receives flows.csv and findings.csv",
    )
    audit.add_argument(
        "--with-provenance",
        action="store_true",
        help="include replay provenance (source directory, trace counts) in "
        "the JSON summary; requires --from-artifacts and --json",
    )
    audit.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="write a stage-attribution profile of this run (wall time per "
        "pipeline stage, executor overheads, IPC payload sizes) as JSON",
    )
    audit.add_argument(
        "--spans-out",
        metavar="FILE",
        default=None,
        help="write the run's span events (engine orchestration stages, "
        "unit-store round-trips, result assembly) as JSON lines; the "
        "first line is a schema header",
    )
    _add_metrics_argument(audit)
    audit.add_argument(
        "--verbose",
        action="store_true",
        help="print a one-line run summary (traces, degraded units, store "
        "hits, wall time) plus incremental-replay unit hit/miss counts "
        "to stderr",
    )
    audit.set_defaults(func=cmd_audit)

    stream = sub.add_parser(
        "stream",
        help="incremental bounded-memory audit over a packet feed",
    )
    stream.add_argument(
        "--from-artifacts",
        metavar="DIR",
        default=None,
        help="stream a captured corpus from disk to EOF, trace by trace "
        "and packet by packet (final results are byte-identical to "
        "`repro audit --from-artifacts DIR`)",
    )
    stream.add_argument(
        "--pcap",
        metavar="FILE",
        default=None,
        help="stream one capture file; trace identity comes from the "
        "{service}-{platform}-{kind}-{age} file stem",
    )
    stream.add_argument(
        "--keylog",
        metavar="FILE",
        default=None,
        help="NSS key-log file next to --pcap (omitted: all TLS flows opaque)",
    )
    stream.add_argument(
        "--live",
        action="store_true",
        help="synthetic live feed: drive the traffic generator through the "
        "--impair injector with no artifacts on disk",
    )
    stream.add_argument(
        "--follow",
        action="store_true",
        help="with --pcap: tail a capture file that is still being written, "
        "ending after --stop-after-idle seconds of quiet",
    )
    stream.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        metavar="S",
        help="follow mode: seconds between file polls (default 0.2)",
    )
    stream.add_argument(
        "--stop-after-idle",
        type=float,
        default=5.0,
        metavar="S",
        help="follow mode: end the stream after the capture file stays "
        "unchanged this many wall-clock seconds (default 5)",
    )
    stream.add_argument(
        "--services",
        nargs="+",
        choices=_SERVICES,
        default=None,
        help="subset of services (default: all six / all in the corpus)",
    )
    stream.add_argument(
        "--scale", type=float, default=None,
        help="traffic volume relative to the paper's (default 0.02)",
    )
    stream.add_argument("--seed", type=int, default=None, help="(default 2023)")
    stream.add_argument(
        "--profile",
        choices=sorted(LOAD_PROFILES),
        default=None,
        help="named load profile (default standard)",
    )
    _add_impair_argument(stream)
    stream.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="evict a flow after this many stream-time seconds without a "
        "segment (default 60)",
    )
    stream.add_argument(
        "--byte-budget",
        type=int,
        default=32 << 20,
        metavar="BYTES",
        help="cap on buffered payload bytes across all flows; least-recently-"
        "active flows are finalized to stay under it (default 33554432)",
    )
    stream.add_argument(
        "--snapshot-every",
        type=_positive_int,
        default=0,
        metavar="N",
        help="emit an engine-state snapshot every N finished traces "
        "(default: none)",
    )
    stream.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        default=None,
        help="write snapshot_<n>.json digests (plus snapshot_final.json) "
        "into DIR",
    )
    _add_cache_argument(stream)
    stream.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="N",
        help="serve live telemetry over HTTP on 127.0.0.1:N while the "
        "stream runs — GET /metrics returns Prometheus text "
        "exposition, GET /stats a JSON digest of the session; N=0 "
        "binds an ephemeral port (printed to stderr)",
    )
    _add_metrics_argument(stream)
    stream.add_argument(
        "--json", action="store_true", help="emit a JSON summary at EOF"
    )
    stream.add_argument(
        "--output",
        help="with --json: file path for the JSON summary; without --json: "
        "directory that receives flows.csv and findings.csv",
    )
    stream.set_defaults(func=cmd_stream)

    classify = sub.add_parser("classify", help="classify raw data type keys")
    classify.add_argument("keys", nargs="*", help="keys (default: read stdin)")
    classify.add_argument("--mode", choices=("avg", "max"), default="avg")
    _add_cache_argument(classify)
    classify.add_argument(
        "--verbose",
        action="store_true",
        help="print cache hit/miss statistics to stderr after classifying",
    )
    classify.set_defaults(func=cmd_classify)

    generate = sub.add_parser("generate", help="write raw capture artifacts")
    _add_corpus_arguments(generate)
    generate.add_argument("--output", default="./artifacts")
    generate.set_defaults(func=cmd_generate)

    report = sub.add_parser("report", help="render one paper table/figure")
    _add_corpus_arguments(report)
    _add_replay_argument(report)
    _add_cache_argument(report)
    _add_fault_arguments(report)
    _add_metrics_argument(report)
    report.add_argument(
        "artifact",
        choices=(
            "table1",
            "table2",
            "table4",
            "table5",
            "fig3",
            "fig4",
            "fig5",
            "census",
            "ci",
        ),
    )
    report.set_defaults(func=cmd_report)

    distill = sub.add_parser("distill", help="train the small local classifier")
    distill.add_argument("--seed", type=int, default=2023)
    distill.add_argument("--threshold", type=float, default=0.8)
    distill.set_defaults(func=cmd_distill)

    cache = sub.add_parser(
        "cache", help="inspect/maintain the persistent classification store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    def _cache_dir_arg(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--cache-dir",
            metavar="DIR",
            required=True,
            help="directory holding the classification store",
        )

    cache_stats = cache_sub.add_parser(
        "stats", help="entry counts and per-run hit rates"
    )
    _cache_dir_arg(cache_stats)
    cache_stats.set_defaults(func=cmd_cache_stats)

    cache_export = cache_sub.add_parser(
        "export", help="dump stored verdicts as JSON lines"
    )
    _cache_dir_arg(cache_export)
    cache_export.add_argument(
        "--classifier", default=None, help="restrict to one classifier's entries"
    )
    cache_export.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )
    cache_export.set_defaults(func=cmd_cache_export)

    cache_prune = cache_sub.add_parser(
        "prune", help="delete entries by classifier and/or confidence"
    )
    _cache_dir_arg(cache_prune)
    cache_prune.add_argument(
        "--classifier", default=None, help="delete this classifier's entries"
    )
    cache_prune.add_argument(
        "--below",
        type=float,
        default=None,
        help="delete entries with confidence below this threshold",
    )
    cache_prune.add_argument(
        "--unit-results",
        action="store_true",
        help="age out per-unit replay results recorded under an older "
        "result-schema version (current-schema rows are kept)",
    )
    cache_prune.set_defaults(func=cmd_cache_prune)

    cache_clear = cache_sub.add_parser(
        "clear", help="delete every entry and the run history"
    )
    _cache_dir_arg(cache_clear)
    cache_clear.set_defaults(func=cmd_cache_clear)

    bench = sub.add_parser(
        "bench", help="run the benchmark suite and record BENCH_<n>.json"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small corpus, one repeat per workload",
    )
    bench.add_argument(
        "--scale",
        type=float,
        default=None,
        help="corpus scale for the workloads (default 0.02; --quick 0.005)",
    )
    bench.add_argument(
        "--profile",
        choices=sorted(LOAD_PROFILES),
        default=None,
        help="load profile for the workloads (default standard)",
    )
    bench.add_argument(
        "--jobs",
        type=_positive_int,
        default=2,
        help="worker processes for the audit-parallel workload (default 2)",
    )
    bench.add_argument(
        "--repeats",
        type=_positive_int,
        default=None,
        help="runs per workload, best-of-N recorded (default 3, or 1 with "
        "--quick); raise on noisy hosts",
    )
    bench.add_argument(
        "--output-dir",
        default=".",
        help="directory receiving BENCH_<n>.json (default: current directory)",
    )
    bench.add_argument(
        "--min-decode-speedup",
        type=float,
        default=None,
        help="exit non-zero unless decode throughput is at least this "
        "multiple of the previous comparable entry",
    )
    bench.add_argument(
        "--min-audit-speedup",
        type=float,
        default=None,
        help="exit non-zero unless audit throughput is at least this "
        "multiple of the previous comparable entry",
    )
    bench.add_argument(
        "--min-audit-parallel-speedup",
        type=float,
        default=None,
        help="exit non-zero unless audit-parallel throughput is at least "
        "this multiple of the previous comparable entry",
    )
    bench.add_argument(
        "--min-parallel-efficiency",
        type=float,
        default=None,
        help="exit non-zero unless this entry's own audit-parallel "
        "throughput is at least this multiple of its sequential audit "
        "throughput (needs >1 physical core to exceed 1.0)",
    )
    _add_metrics_argument(bench)
    bench.add_argument(
        "--min-incremental-speedup",
        type=float,
        default=None,
        help="exit non-zero unless this entry's own warm incremental "
        "re-audit is at least this multiple faster than its cold replay "
        "(the audit-incremental workload's in-entry ratio)",
    )
    bench.set_defaults(func=cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="statically enforce determinism/executor/sync invariants",
    )
    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    return parser


def _raise_interrupt(signum, frame) -> None:
    raise KeyboardInterrupt


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Route SIGTERM through the same graceful-teardown path as Ctrl-C:
    # executors cancel and terminate their workers, the stream command
    # flushes a final snapshot, and the process exits 130 — no
    # traceback spew either way.  Signal handlers only exist in the
    # main thread; embedded callers elsewhere keep their own handling.
    restore = None
    if threading.current_thread() is threading.main_thread():
        restore = signal.signal(signal.SIGTERM, _raise_interrupt)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        if restore is not None:
            signal.signal(signal.SIGTERM, restore)


if __name__ == "__main__":
    raise SystemExit(main())
