"""Ontology node types and the :class:`Ontology` container.

The ontology is immutable once constructed.  Nodes are addressed by
their level-3 label string (e.g. ``"Coarse Geolocation"``), which is
what the classifiers emit and what data flows carry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Level1(str, enum.Enum):
    """Top-level legal split (COPPA § 312.2 / CCPA § 1798.140)."""

    IDENTIFIERS = "Identifiers"
    PERSONAL_INFORMATION = "Personal Information"


class Level2(str, enum.Enum):
    """The eight broad data type groups (paper §3.2.2)."""

    PERSONAL_IDENTIFIERS = "Personal Identifiers"
    DEVICE_IDENTIFIERS = "Device Identifiers"
    PERSONAL_CHARACTERISTICS = "Personal Characteristics"
    PERSONAL_HISTORY = "Personal History"
    GEOLOCATION = "Geolocation"
    USER_COMMUNICATIONS = "User Communications"
    SENSORS = "Sensors"
    USER_INTERESTS_AND_BEHAVIORS = "User Interests and Behaviors"


class Level3(str, enum.Enum):
    """The 35 classification labels (paper Table 2)."""

    # --- Identifiers / Personal Identifiers -------------------------
    NAME = "Name"
    LINKED_PERSONAL_IDENTIFIERS = "Linked Personal Identifiers"
    CONTACT_INFORMATION = "Contact Information"
    REASONABLY_LINKABLE_PERSONAL_IDENTIFIERS = (
        "Reasonably Linkable Personal Identifiers"
    )
    ALIASES = "Aliases"
    CUSTOMER_NUMBERS = "Customer Numbers"
    LOGIN_INFORMATION = "Login Information"
    # --- Identifiers / Device Identifiers ---------------------------
    DEVICE_HARDWARE_IDENTIFIERS = "Device Hardware Identifiers"
    DEVICE_SOFTWARE_IDENTIFIERS = "Device Software Identifiers"
    DEVICE_INFORMATION = "Device Information"
    # --- Personal Information / Personal Characteristics ------------
    RACE = "Race"
    AGE = "Age"
    LANGUAGE = "Language"
    RELIGION = "Religion"
    GENDER_SEX = "Gender/Sex"
    MARITAL_STATUS = "Marital Status"
    MILITARY_VETERAN_STATUS = "Military/Veteran Status"
    MEDICAL_CONDITIONS = "Medical Conditions"
    GENETIC_INFORMATION = "Genetic Information"
    DISABILITIES = "Disabilities"
    BIOMETRIC_INFORMATION = "Biometric Information"
    # --- Personal Information / Personal History --------------------
    PERSONAL_HISTORY = "Personal History"
    # --- Personal Information / Geolocation -------------------------
    PRECISE_GEOLOCATION = "Precise Geolocation"
    COARSE_GEOLOCATION = "Coarse Geolocation"
    LOCATION_TIME = "Location Time"
    # --- Personal Information / User Communications -----------------
    COMMUNICATIONS = "Communications"
    CONTACTS = "Contacts"
    INTERNET_ACTIVITY = "Internet Activity"
    NETWORK_CONNECTION_INFORMATION = "Network Connection Information"
    # --- Personal Information / Sensors -----------------------------
    SENSOR_DATA = "Sensor Data"
    # --- Personal Information / User Interests and Behaviors --------
    PRODUCTS_AND_ADVERTISING = "Products and Advertising"
    APP_OR_SERVICE_USAGE = "App or Service Usage"
    ACCOUNT_SETTINGS = "Account Settings"
    SERVICE_INFORMATION = "Service Information"
    INFERENCES = "Inferences"


@dataclass(frozen=True)
class OntologyNode:
    """One level-3 label with its ancestry and level-4 examples."""

    level1: Level1
    level2: Level2
    level3: Level3
    examples: tuple[str, ...] = field(default_factory=tuple)

    @property
    def label(self) -> str:
        return self.level3.value


class Ontology:
    """Immutable container over the 35 :class:`OntologyNode` entries.

    Provides the lookups the classifiers and the audit engine rely on:
    label enumeration, level-3 → level-2/level-1 roll-up, and the
    example lexicon.
    """

    def __init__(self, nodes: list[OntologyNode]) -> None:
        self._nodes: dict[Level3, OntologyNode] = {}
        for node in nodes:
            if node.level3 in self._nodes:
                raise ValueError(f"duplicate ontology node {node.level3!r}")
            self._nodes[node.level3] = node

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes.values())

    def __contains__(self, label: str | Level3) -> bool:
        try:
            self.node(label)
        except KeyError:
            return False
        return True

    def node(self, label: str | Level3) -> OntologyNode:
        """Return the node for a level-3 label (string or enum).

        Raises :class:`KeyError` for labels outside the ontology.
        """
        try:
            key = label if isinstance(label, Level3) else Level3(label)
        except ValueError:
            raise KeyError(f"unknown ontology label {label!r}") from None
        return self._nodes[key]

    def label_names(self) -> list[str]:
        """The 35 level-3 label strings in canonical order."""
        return [node.label for node in self._nodes.values()]

    def labels(self) -> list[Level3]:
        return list(self._nodes.keys())

    def examples_for(self, label: str | Level3) -> tuple[str, ...]:
        """Level-4 example data types for a level-3 label."""
        return self.node(label).examples

    def level2_of(self, label: str | Level3) -> Level2:
        """Roll a level-3 label up to its level-2 group."""
        return self.node(label).level2

    def level1_of(self, label: str | Level3) -> Level1:
        """Roll a level-3 label up to Identifiers / Personal Information."""
        return self.node(label).level1

    def labels_under(self, level2: Level2) -> list[Level3]:
        """All level-3 labels belonging to a level-2 group."""
        return [
            node.level3 for node in self._nodes.values() if node.level2 == level2
        ]

    def is_identifier(self, label: str | Level3) -> bool:
        """True when the label falls under the Identifiers branch.

        Used by the linkability analysis: linkable data requires at
        least one identifier *and* one personal-information data type
        sent to the same third party (paper §4.2).
        """
        return self.level1_of(label) is Level1.IDENTIFIERS
