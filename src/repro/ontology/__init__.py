"""COPPA/CCPA data type ontology (paper Table 5).

The ontology is a four-level tree rooted at the legal definitions of
*identifiers* and *personal information* in COPPA (16 C.F.R. § 312.2)
and CCPA (Cal. Civ. Code § 1798.140):

* level 1 — ``Identifiers`` and ``Personal Information``;
* level 2 — eight broad groups (personal identifiers, device
  identifiers, personal characteristics, personal history, geolocation,
  user communications, sensors, user interests and behavior);
* level 3 — the 35 classification labels used by the data type
  classifiers (paper Table 2);
* level 4 — concrete example data types for each label, used as the
  classifier lexicon / few-shot examples.

Public API::

    from repro.ontology import ONTOLOGY, Level2, Level3

    ONTOLOGY.label_names()          # the 35 level-3 label strings
    ONTOLOGY.node("Coarse Geolocation").level2
    ONTOLOGY.examples_for("Aliases")
"""

from repro.ontology.nodes import (
    Level1,
    Level2,
    Level3,
    Ontology,
    OntologyNode,
)
from repro.ontology.coppa_ccpa import ONTOLOGY, OBSERVED_LEVEL3
from repro.ontology.lexicon import Lexicon, build_default_lexicon

__all__ = [
    "Level1",
    "Level2",
    "Level3",
    "Ontology",
    "OntologyNode",
    "ONTOLOGY",
    "OBSERVED_LEVEL3",
    "Lexicon",
    "build_default_lexicon",
]
