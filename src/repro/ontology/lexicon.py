"""Lexicon: token-level knowledge derived from the ontology.

The raw data types extracted from network traffic are key strings in a
myriad of formats — ``email``, ``os``, ``rtt``,
``pers_ad_show_third_part_measurement``, ``IsOptOutEmailShown`` (paper
§3.2.2).  The lexicon maps individual tokens (after snake/camel-case
splitting and abbreviation expansion) to the level-3 labels they
evidence, with a weight per (token, label) pair.

It is the shared knowledge base of the GPT-4-substitute classifier and
the embedding baselines, and the vocabulary source for the traffic
generator's payload synthesis.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from functools import lru_cache

from repro.ontology.nodes import Level3, Ontology

# Abbreviations seen in real traffic keys, expanded before matching.
# Mirrors the classifier prompt instruction: "For text with acronyms and
# abbreviations, use the meaning of the acronyms ... to do the
# classification."
ABBREVIATIONS: dict[str, tuple[str, ...]] = {
    "os": ("operating", "system"),
    "ua": ("user", "agent"),
    "rtt": ("round", "trip", "time"),
    "ttfb": ("time", "first", "byte"),
    "ip": ("ip", "address"),
    "geo": ("geolocation",),
    "lat": ("latitude",),
    "lon": ("longitude",),
    "lng": ("longitude",),
    "tz": ("timezone",),
    "ts": ("timestamp",),
    "dob": ("date", "birth"),
    "pwd": ("password",),
    "msg": ("message",),
    "img": ("image",),
    "adv": ("advertising",),
    "ad": ("advertisement",),
    "ads": ("advertisement",),
    "adid": ("advertising", "identifier"),
    "gaid": ("advertising", "identifier"),
    "idfa": ("advertising", "identifier"),
    "imei": ("device", "hardware", "identifier"),
    "mac": ("mac", "address"),
    "uid": ("user", "identifier"),
    "uuid": ("unique", "identifier"),
    "guid": ("unique", "identifier"),
    "id": ("identifier",),
    "ids": ("identifier",),
    "cfg": ("settings",),
    "config": ("settings",),
    "prefs": ("preferences",),
    "pref": ("preference",),
    "auth": ("authentication",),
    "authn": ("authentication",),
    "sess": ("session",),
    "sid": ("session", "identifier"),
    "req": ("request",),
    "resp": ("response",),
    "res": ("resolution",),
    "px": ("pixel",),
    "lang": ("language",),
    "loc": ("location",),
    "cc": ("country", "code"),
    "fps": ("frames", "per", "second"),
    "abr": ("adaptive", "bitrate"),
    "cpu": ("cpu",),
    "gpu": ("gpu", "device"),
    "mem": ("memory",),
    "dl": ("download",),
    "ul": ("upload",),
    "sdk": ("sdk",),
    "api": ("api",),
    "url": ("url",),
    "uri": ("uri",),
    "dom": ("dom",),
    "cdn": ("cdn",),
    "dns": ("dns",),
    "tls": ("tls",),
    "tcp": ("tcp",),
    "vid": ("video",),
    "aud": ("audio",),
    "dur": ("duration",),
    "pers": ("personalized",),
    "usr": ("user",),
    "acct": ("account",),
    "num": ("number",),
    "tel": ("telephone",),
    "pii": ("personal", "information"),
    "ver": ("version",),
    "env": ("environment",),
    "app": ("application",),
    "ref": ("referer",),
    "utm": ("marketing", "campaign"),
    "fp": ("fingerprint",),
    "bday": ("birthday",),
    "yob": ("birth", "year"),
    "gdpr": ("consent",),
    "ccpa": ("consent",),
    "coppa": ("consent",),
    "hw": ("hardware",),
    "sw": ("software",),
    "eml": ("email",),
    "addr": ("address",),
    "fname": ("first", "name"),
    "lname": ("last", "name"),
    "uname": ("user", "name"),
    "cntry": ("country",),
    "rgn": ("region",),
    "scr": ("screen",),
    "mdl": ("model",),
    "gndr": ("gender",),
    "crd": ("coordinates",),
    "impr": ("impression",),
    "cmp": ("campaign",),
    "seg": ("segment",),
    "tkn": ("token",),
    "hist": ("history",),
    "qry": ("query",),
    "conn": ("connection",),
    "proto": ("protocol",),
}

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_SPLIT_RE = re.compile(r"[^A-Za-z0-9]+")

# Generic tokens carrying no categorical signal on their own.
STOP_TOKENS: frozenset[str] = frozenset(
    {
        "the",
        "a",
        "an",
        "of",
        "is",
        "are",
        "to",
        "for",
        "and",
        "or",
        "with",
        "in",
        "on",
        "at",
        "x",
        "y",
        "z",
        "v",
        "n",
        "s",
        "t",
        "info",
        "information",
        "type",
        "value",
        "values",
        "flag",
        "new",
        "old",
        "current",
        "last",
        "first",
        "next",
        "per",
        "shown",
        "enabled",
        "disabled",
        "has",
        "was",
        "show",
        "part",
        "get",
        "set",
        "opt",
        "cur",
        "raw",
        "blob",
        "hdr",
        "sync",
        "state",
        "snapshot",
        "measurement",
    }
)


@lru_cache(maxsize=65536)
def _split_key_cached(raw: str) -> tuple[str, ...]:
    parts: list[str] = []
    for chunk in _SPLIT_RE.split(raw):
        if not chunk:
            continue
        parts.extend(p for p in _CAMEL_RE.split(chunk) if p)
    return tuple(p.lower() for p in parts)


def split_key(raw: str) -> list[str]:
    """Split a raw traffic key into lowercase word tokens.

    Handles snake_case, kebab-case, dotted paths, and camelCase, e.g.
    ``"IsOptOutEmailShown"`` → ``["is", "opt", "out", "email", "shown"]``.
    Splitting is pure, and the same keys recur across every trace and
    every temperature model, so results are memoized (callers get a
    fresh list they may mutate).
    """
    return list(_split_key_cached(raw))


def expand_tokens(tokens: list[str]) -> list[str]:
    """Expand known abbreviations; unknown tokens pass through."""
    out: list[str] = []
    for token in tokens:
        out.extend(ABBREVIATIONS.get(token, (token,)))
    return out


def tokenize_key(raw: str) -> list[str]:
    """Full normalization pipeline: split, expand, drop stop tokens."""
    return [
        token
        for token in expand_tokens(split_key(raw))
        if token not in STOP_TOKENS and not token.isdigit()
    ]


@dataclass
class Lexicon:
    """(token → label → weight) evidence table built from an ontology.

    Multi-word ontology examples contribute their component tokens with
    weight split across the phrase; exact phrase matches are kept
    separately with full weight so that e.g. ``"mac address"`` scores
    higher for Device Hardware Identifiers than ``"address"`` alone.
    """

    token_weights: dict[str, dict[Level3, float]] = field(default_factory=dict)
    phrases: dict[tuple[str, ...], Level3] = field(default_factory=dict)
    # Scoring is a pure function of the key once the table is built,
    # and the GPT-4 temperature sweep scores every key once per model
    # — memoizing here collapses that to once per key.  Callers treat
    # the returned dict as read-only (classify only sorts its items).
    _score_cache: dict[str, dict[Level3, float]] = field(
        default_factory=dict, repr=False, compare=False
    )
    # Scratch space for caches *derived from* scores (the GPT-4 sweep
    # keeps its per-key ranked evidence here so the five temperature
    # models share one computation).  Invalidated together with the
    # score cache whenever the evidence table changes.
    derived_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def add_example(self, label: Level3, example: str, weight: float = 1.0) -> None:
        tokens = tokenize_key(example)
        self._score_cache.clear()
        self.derived_cache.clear()
        if not tokens:
            return
        if len(tokens) > 1:
            self.phrases[tuple(tokens)] = label
        per_token = weight / len(tokens)
        for token in tokens:
            slot = self.token_weights.setdefault(token, {})
            slot[label] = max(slot.get(label, 0.0), per_token if len(tokens) > 1 else weight)

    def score(self, raw_key: str) -> dict[Level3, float]:
        """Score a raw key against every label; higher is stronger."""
        cached = self._score_cache.get(raw_key)
        if cached is not None:
            return cached
        scored = self._score_uncached(raw_key)
        self._score_cache[raw_key] = scored
        return scored

    def _score_uncached(self, raw_key: str) -> dict[Level3, float]:
        tokens = tokenize_key(raw_key)
        scores: dict[Level3, float] = defaultdict(float)
        if not tokens:
            return dict(scores)
        # Phrase evidence: contiguous subsequences matching an example.
        n = len(tokens)
        for length in range(min(n, 4), 1, -1):
            for start in range(n - length + 1):
                window = tuple(tokens[start : start + length])
                label = self.phrases.get(window)
                if label is not None:
                    scores[label] += 2.0 * length
        # Token evidence.
        for token in tokens:
            for label, weight in self.token_weights.get(token, {}).items():
                scores[label] += weight
        # Normalize by sqrt of key length: long decorated keys should
        # not dominate, but a two-token key with one exact-match token
        # ("request_id") is still strong evidence.
        norm = n**0.5
        return {label: value / norm for label, value in scores.items()}

    def vocabulary(self) -> frozenset[str]:
        return frozenset(self.token_weights)


def build_default_lexicon(ontology: Ontology) -> Lexicon:
    """Build the lexicon from every level-4 example in the ontology."""
    lexicon = Lexicon()
    for node in ontology:
        for example in node.examples:
            lexicon.add_example(node.level3, example)
    return lexicon
