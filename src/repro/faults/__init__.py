"""Seeded fault injection for chaos testing the audit pipeline.

See :mod:`repro.faults.plan` for the model.  The public surface is
:class:`FaultPlan` (a frozen, deterministic fault schedule),
:data:`FAULT_PROFILES` (the ``--inject-faults`` choices),
:class:`FlakyStore` (store-call fault proxy) and
:func:`corrupt_artifact` (on-disk damage helper for tests/CI).
"""

from repro.faults.plan import (
    FAULT_PROFILES,
    FaultPlan,
    FlakyStore,
    corrupt_artifact,
)

__all__ = [
    "FAULT_PROFILES",
    "FaultPlan",
    "FlakyStore",
    "corrupt_artifact",
]
