"""Deterministic, seed-driven fault injection.

A :class:`FaultPlan` is a frozen value object: every decision it makes
— which units "corrupt", which workers die or stall, which store calls
flake — is a pure function of ``(profile, seed, identity key)`` via
SHA-256, so the same plan replays the same faults on every run, in
every process, with no RNG state to carry around.  Plans travel inside
:class:`repro.pipeline.engine.ShardTask` pickles and key the worker's
memoized classifier stack, so they must stay hashable and cheap.

Two fault families, with very different contracts:

* **Non-data faults** — ``kill-worker``, ``slow-worker``,
  ``flaky-store`` — perturb *where and when* work happens, never its
  inputs.  The engine's recovery machinery (shard retry, store
  degradation) must make runs under these plans byte-identical to a
  clean run; CI's ``chaos-smoke`` job and the Hypothesis suite assert
  exactly that.
* **Data faults** — ``corrupt-unit`` — make selected trace units fail
  decode.  Under ``--keep-going`` the run completes with those units
  quarantined into the report's ``degraded`` section (exit code 3);
  under ``--strict`` (the default) the run fails fast naming the unit.

Injected corruption is *synthetic*: the plan makes the decoder treat
the unit as unreadable without ever touching the artifact bytes on
disk — ``--inject-faults corrupt-unit`` must never vandalize a user's
corpus.  Tests and CI that want real on-disk damage use
:func:`corrupt_artifact` on a copy.

Worker-kill faults only fire inside process-pool workers
(``multiprocessing.parent_process()`` is set); under the sequential or
thread executors they are no-ops rather than suicide.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.datatypes.store import StoreError
from repro.obs.metrics import REGISTRY

# Fired-fault accounting, labeled (kind, profile).  Corrupt/stall/store
# firings increment at their decision site — inside a pool worker that
# is counting its own work, so the engine ships them home in the packed
# shard snapshot.  Kill firings cannot be counted here: the worker
# ``os._exit``\\ s with its registry, so the engine's retry loop counts
# them parent-side by replaying the (pure) decision.
FAULTS_FIRED = REGISTRY.counter("repro_faults_fired_total")

#: CLI-facing fault profiles (``--inject-faults``), name → description.
#: ``chaos`` layers every family at once — including the data-fault
#: corruption, so chaos runs want ``--keep-going``.
FAULT_PROFILES: dict[str, str] = {
    "corrupt-unit": "selected trace units fail decode (data fault)",
    "kill-worker": "selected pool workers die on their first attempt",
    "slow-worker": "selected shards stall before processing",
    "flaky-store": "a fraction of store calls raise transient StoreError",
    "chaos": "all of the above at once",
}


@dataclass(frozen=True, slots=True)
class _Rates:
    corrupt: float = 0.0
    kill: float = 0.0
    stall: float = 0.0
    stall_max_s: float = 0.0
    store: float = 0.0


_RATES: dict[str, _Rates] = {
    # "none" is the programmatic escape hatch: zero ambient rates, so a
    # plan can carry only an explicit poison_unit (tests, bisection).
    "none": _Rates(),
    "corrupt-unit": _Rates(corrupt=0.2),
    "kill-worker": _Rates(kill=0.6),
    "slow-worker": _Rates(stall=0.5, stall_max_s=0.15),
    "flaky-store": _Rates(store=0.25),
    "chaos": _Rates(
        corrupt=0.1, kill=0.35, stall=0.35, stall_max_s=0.1, store=0.2
    ),
}


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """One seeded fault schedule.  Hashable, picklable, stateless."""

    profile: str
    seed: int = 0
    # A trace unit whose shard kills its worker on EVERY attempt — a
    # persistent "poison" crash (think a segfaulting decode), unlike
    # the transient kill fault below.  Exercises the engine's
    # bisection + quarantine path.  Test/CI facing; not a profile.
    poison_unit: str | None = None

    def __post_init__(self) -> None:
        if self.profile not in _RATES:
            known = ", ".join(sorted(_RATES))
            raise ValueError(
                f"unknown fault profile {self.profile!r} (choose from {known})"
            )

    @property
    def rates(self) -> _Rates:
        return _RATES[self.profile]

    def _fraction(self, kind: str, key: str) -> float:
        """Uniform [0, 1) draw, fully determined by the plan + key."""
        token = f"{self.seed}|{self.profile}|{kind}|{key}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    # -- data faults ---------------------------------------------------

    def corrupt_unit(self, unit_name: str) -> bool:
        """Should this trace unit be treated as a corrupt artifact?"""
        rates = self.rates
        fired = (
            rates.corrupt > 0
            and self._fraction("corrupt", unit_name) < rates.corrupt
        )
        if fired:
            FAULTS_FIRED.labels("corrupt-unit", self.profile).inc()
        return fired

    # -- worker faults -------------------------------------------------

    def kill_worker(self, service: str, part: int, attempt: int) -> bool:
        """Should the worker running this shard die right now?

        Fires only on ``attempt == 0``: injected kills are transient by
        construction, so the executor's retry is guaranteed to
        terminate and the run stays byte-identical to a clean one.
        """
        if attempt != 0:
            return False
        rates = self.rates
        return rates.kill > 0 and self._fraction("kill", f"{service}:{part}") < rates.kill

    def stall_worker(self, service: str, part: int) -> float:
        """Seconds this shard's worker should sleep before starting."""
        rates = self.rates
        if rates.stall <= 0:
            return 0.0
        key = f"{service}:{part}"
        if self._fraction("stall", key) >= rates.stall:
            return 0.0
        FAULTS_FIRED.labels("slow-worker", self.profile).inc()
        return rates.stall_max_s * (0.2 + 0.8 * self._fraction("stall-length", key))

    # -- store faults --------------------------------------------------

    def store_fault(self, op: str, call_index: int) -> bool:
        """Should this (per-process) store call raise a StoreError?"""
        rates = self.rates
        return rates.store > 0 and self._fraction("store", f"{op}:{call_index}") < rates.store

    @property
    def injects_store_faults(self) -> bool:
        return self.rates.store > 0

    def wrap_store(self, store):
        """Layer store-fault injection over a ClassificationStore."""
        if not self.injects_store_faults:
            return store
        return FlakyStore(store, self)


class FlakyStore:
    """A :class:`~repro.datatypes.store.ClassificationStore` proxy that
    raises deterministic transient :class:`StoreError`\\ s.

    Only the hot read/write operations flake; everything else passes
    straight through.  The call counter is per-process — harmless,
    because every store failure path in the pipeline degrades without
    changing output bytes (uncached recompute, disabled persistence).
    """

    _FLAKY_OPS = frozenset(
        {"get_many", "put_many", "get_unit_results", "put_unit_results"}
    )

    def __init__(self, store, plan: FaultPlan) -> None:
        self._store = store
        self._plan = plan
        self._calls = 0

    def __getattr__(self, name: str):
        attr = getattr(self._store, name)
        if name not in self._FLAKY_OPS:
            return attr

        def flaky(*args, **kwargs):
            self._calls += 1
            if self._plan.store_fault(name, self._calls):
                FAULTS_FIRED.labels("flaky-store", self._plan.profile).inc()
                raise StoreError(
                    f"injected transient store fault ({name} call "
                    f"#{self._calls}, profile {self._plan.profile!r}, "
                    f"seed {self._plan.seed})"
                )
            return attr(*args, **kwargs)

        return flaky


def corrupt_artifact(path, seed: int = 0, mode: str = "scribble") -> None:
    """Deterministically damage an artifact file on disk (tests/CI).

    ``scribble`` overwrites a window in the middle of the file with
    seed-derived garbage (same size, wrecked content); ``truncate``
    chops the file to half its length (torn write).  Never used by
    ``--inject-faults`` — live runs inject corruption synthetically.
    """
    from pathlib import Path

    path = Path(path)
    size = path.stat().st_size
    if mode == "truncate":
        with open(path, "rb+") as handle:
            handle.truncate(size // 2)
        return
    if mode != "scribble":
        raise ValueError(f"unknown corruption mode {mode!r}")
    garbage = hashlib.sha256(f"{seed}|{path.name}".encode()).digest() * 4
    offset = min(size // 3, max(size - len(garbage), 0))
    with open(path, "rb+") as handle:
        handle.seek(offset)
        handle.write(garbage[: max(size - offset, 1)])
        handle.flush()
        os.fsync(handle.fileno())
