"""Crash-safe filesystem helpers.

Every artifact the pipeline writes that a *later* run reads back —
``manifest.json``, bench entries and their profile sidecars, stream
snapshots, the lint baseline — goes through :func:`atomic_write_text`:
the bytes land in a temporary file in the destination directory, are
fsynced, and are renamed over the target in one atomic step.  A SIGKILL
(or power loss) at any point leaves either the old file or the new one,
never a torn half-write that poisons the next run.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(
    path: Path | str, text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically (temp + fsync + rename).

    The temporary file is created in ``path``'s own directory so the
    final ``os.replace`` stays within one filesystem and is atomic.
    On any failure the temporary file is removed; the destination is
    only ever touched by the rename.
    """
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_bytes(path: Path | str, data: bytes) -> Path:
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    # repro-lint: disable=X-BARE-EXCEPT — cleanup-and-reraise: even KeyboardInterrupt must not leave a stray .tmp file behind
    except BaseException:
        try:
            os.unlink(tmp_name)
        # repro-lint: disable=X-SWALLOW — best-effort temp cleanup on the error path; the original exception re-raises below
        except OSError:
            pass
        raise
    # Make the rename itself durable: without a directory fsync a
    # crash can forget the new directory entry even though the data
    # blocks were synced.  Best-effort — some filesystems refuse
    # directory fds.
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path
