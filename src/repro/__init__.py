"""DiffAudit reproduction — differential privacy-practice auditing of
general-audience online services for children and adolescents.

Reproduction of *DiffAudit: Auditing Privacy Practices of Online
Services for Children and Adolescents* (Figueira, Trimananda,
Markopoulou, Jordan — IMC 2024).

Quickstart::

    from repro import DiffAudit, CorpusConfig

    result = DiffAudit(CorpusConfig(scale=0.02, services=("tiktok",))).run()
    print(result.audits["tiktok"].summary_lines())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.model import (
    AgeGroup,
    FlowCell,
    Platform,
    Presence,
    TraceColumn,
    TraceKind,
)
from repro.ontology import ONTOLOGY
from repro.ontology.nodes import Level2, Level3
from repro.datatypes.store import ClassificationStore, PersistentClassifier
from repro.pipeline.diffaudit import DiffAudit, DiffAuditResult
from repro.services.generator import CorpusConfig

__version__ = "1.0.0"

__all__ = [
    "AgeGroup",
    "FlowCell",
    "Platform",
    "Presence",
    "TraceColumn",
    "TraceKind",
    "ONTOLOGY",
    "Level2",
    "Level3",
    "DiffAudit",
    "DiffAuditResult",
    "CorpusConfig",
    "ClassificationStore",
    "PersistentClassifier",
    "__version__",
]
