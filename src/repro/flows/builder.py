"""Flow construction from parsed traces (paper §3.2).

The builder joins three analyses per request:

1. **extraction** — raw data types from body/query/cookies;
2. **classification** — raw type → level-3 ontology category via the
   configured classifier, kept only above the confidence threshold
   (the paper uses Majority-Avg @ 0.8);
3. **destination labeling** — FQDN → first/third party × ATS.

Classification is memoized per unique key, which is what makes
whole-corpus processing cheap (the paper classified its 3,968 unique
data types once, not its 440K packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datatypes.base import Classification, Classifier
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.extract import extract_from_request
from repro.destinations.party import DestinationLabeler
from repro.flows.dataflow import FlowObservation
from repro.model import AgeGroup, Platform, TraceColumn, TraceKind
from repro.net.http import HttpRequest
from repro.net.psl import esld as esld_of
from repro.ontology.nodes import Level3


@dataclass
class GroundTruthClassifier:
    """Oracle classifier: the human-annotator upper bound.

    Uses a known key → category map (the generator's registry stands in
    for the paper's manual labeling).  Exists for ablations — measuring
    how much classifier noise moves each result — not for the default
    pipeline.
    """

    truth: dict[str, Level3]
    name: str = "ground-truth"

    def classify(self, text: str) -> Classification:
        label = self.truth.get(text)
        return Classification(
            text=text,
            label=label,
            confidence=1.0 if label else 0.0,
            explanation="annotated",
        )

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]


@dataclass
class FlowBuilder:
    """Stateful flow construction over a whole corpus."""

    classifier: Classifier
    confidence_threshold: float = 0.8
    _cache: CachingClassifier = field(init=False, repr=False)
    # Keys this builder classified — per-builder even when the cache
    # layer is shared (or pre-warmed) across builders.
    _seen: set[str] = field(init=False, repr=False)
    # Thresholded label per key — the per-request lookup table.  The
    # classifier stack is descended once per new key; repeat keys
    # resolve here without even a cache-layer round-trip.
    _labels: dict[str, Level3 | None] = field(init=False, repr=False)
    #: Keys resolved straight from the label table — the lookups that
    #: were cache-layer hits before the table existed.  Cache hit/miss
    #: accounting stays comparable across versions by adding these to
    #: the cache layer's own hits.
    lookup_hits: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._cache = CachingClassifier.wrap(self.classifier)
        self._seen = set()
        self._labels = {}
        self.lookup_hits = 0

    def label_key(self, key: str) -> Level3 | None:
        """Classify one raw key (memoized, threshold applied)."""
        return self.labels_for_keys([key])[0]

    def _thresholded(self, verdict: Classification) -> Level3 | None:
        return (
            verdict.label
            if verdict.label is not None
            and verdict.confidence >= self.confidence_threshold
            else None
        )

    def labels_for_keys(self, keys: list[str]) -> list[Level3 | None]:
        """Classify raw keys in one batch (memoized, threshold applied)."""
        labels = self._labels
        missing = [key for key in keys if key not in labels]
        self.lookup_hits += len(keys) - len(missing)
        if missing:
            self._seen.update(missing)
            for verdict in self._cache.classify_batch(missing):
                labels[verdict.text] = self._thresholded(verdict)
        return [labels[key] for key in keys]

    def prime(self, keys: list[str]) -> None:
        """Classify ``keys`` ahead of per-request flow building.

        One batched call drains every cache miss at once — through a
        persistent layer that is one disk round-trip for a whole trace
        instead of one per key — after which the per-request lookups
        are all in-memory hits.
        """
        unique = list(dict.fromkeys(keys))
        if unique:
            self._seen.update(unique)
            for verdict in self._cache.classify_batch(unique):
                self._labels[verdict.text] = self._thresholded(verdict)

    def prime_sequence(self, key_lists: Iterable[list[str]]) -> None:
        """Classify many traces' keys in ONE batched call.

        Equivalent to calling :meth:`prime` once per list — each list
        is deduplicated first-occurrence-first and the lists then
        concatenated, so the cache layer's hit/miss arithmetic matches
        the per-trace sequence key for key — but the whole shard costs
        one classifier-stack descent: one persistent-store round-trip
        and one inner batch instead of one per trace.
        """
        keys = [key for key_list in key_lists for key in dict.fromkeys(key_list)]
        if keys:
            self._seen.update(keys)
            for verdict in self._cache.classify_batch(keys):
                self._labels[verdict.text] = self._thresholded(verdict)

    def flows_for_request(
        self,
        request: HttpRequest,
        labeler: DestinationLabeler,
        service: str,
        platform: Platform,
        kind: TraceKind,
        age: AgeGroup | None,
        extracted: list | None = None,
    ) -> list[FlowObservation]:
        """All data flows one outgoing request produces.

        ``extracted`` lets a caller that already ran
        :func:`extract_from_request` (the engine extracts once per
        request for key accounting) pass the result in instead of
        extracting twice.
        """
        if extracted is None:
            extracted = extract_from_request(request)
        return self.flows_for_destination(
            request.url.fqdn,
            labeler,
            service=service,
            platform=platform,
            kind=kind,
            age=age,
            keys=[item.key for item in extracted],
        )

    def flows_for_destination(
        self,
        fqdn: str,
        labeler: DestinationLabeler,
        service: str,
        platform: Platform,
        kind: TraceKind,
        age: AgeGroup | None,
        keys: list[str],
    ) -> list[FlowObservation]:
        """Flows for one request's already-extracted keys.

        The request-free core of :meth:`flows_for_request`: the engine
        extracts keys in a first pass over the shard (so request
        bodies can be dropped before classification), then builds
        flows from ``(fqdn, keys)`` pairs here.
        """
        column = TraceColumn.for_trace(kind, age)
        destination = labeler.label(fqdn)
        observations: list[FlowObservation] = []
        seen: set[Level3] = set()
        labels = self.labels_for_keys(keys)
        for key, label in zip(keys, labels):
            if label is None or label in seen:
                continue
            seen.add(label)
            observations.append(
                FlowObservation(
                    service=service,
                    column=column,
                    platform=platform,
                    level3=label,
                    fqdn=destination.fqdn,
                    esld=destination.esld or esld_of(destination.fqdn),
                    party=destination.party,
                    raw_key=key,
                )
            )
        return observations

    @property
    def classified_keys(self) -> int:
        return len(self._seen)

    def classified_key_set(self) -> set[str]:
        """The unique raw keys this builder has classified so far."""
        return set(self._seen)
