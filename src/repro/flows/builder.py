"""Flow construction from parsed traces (paper §3.2).

The builder joins three analyses per request:

1. **extraction** — raw data types from body/query/cookies;
2. **classification** — raw type → level-3 ontology category via the
   configured classifier, kept only above the confidence threshold
   (the paper uses Majority-Avg @ 0.8);
3. **destination labeling** — FQDN → first/third party × ATS.

Classification is memoized per unique key, which is what makes
whole-corpus processing cheap (the paper classified its 3,968 unique
data types once, not its 440K packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes.base import Classification, Classifier
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.extract import extract_from_request
from repro.destinations.party import DestinationLabeler
from repro.flows.dataflow import FlowObservation
from repro.model import AgeGroup, Platform, TraceColumn, TraceKind
from repro.net.http import HttpRequest
from repro.net.psl import esld as esld_of
from repro.ontology.nodes import Level3


@dataclass
class GroundTruthClassifier:
    """Oracle classifier: the human-annotator upper bound.

    Uses a known key → category map (the generator's registry stands in
    for the paper's manual labeling).  Exists for ablations — measuring
    how much classifier noise moves each result — not for the default
    pipeline.
    """

    truth: dict[str, Level3]
    name: str = "ground-truth"

    def classify(self, text: str) -> Classification:
        label = self.truth.get(text)
        return Classification(
            text=text,
            label=label,
            confidence=1.0 if label else 0.0,
            explanation="annotated",
        )

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]


@dataclass
class FlowBuilder:
    """Stateful flow construction over a whole corpus."""

    classifier: Classifier
    confidence_threshold: float = 0.8
    _cache: CachingClassifier = field(init=False, repr=False)
    # Keys this builder classified — per-builder even when the cache
    # layer is shared (or pre-warmed) across builders.
    _seen: set[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._cache = CachingClassifier.wrap(self.classifier)
        self._seen = set()

    def label_key(self, key: str) -> Level3 | None:
        """Classify one raw key (memoized, threshold applied)."""
        return self.labels_for_keys([key])[0]

    def labels_for_keys(self, keys: list[str]) -> list[Level3 | None]:
        """Classify raw keys in one batch (memoized, threshold applied)."""
        self._seen.update(keys)
        return [
            verdict.label
            if verdict.label is not None
            and verdict.confidence >= self.confidence_threshold
            else None
            for verdict in self._cache.classify_batch(keys)
        ]

    def prime(self, keys: list[str]) -> None:
        """Classify ``keys`` ahead of per-request flow building.

        One batched call drains every cache miss at once — through a
        persistent layer that is one disk round-trip for a whole trace
        instead of one per key — after which the per-request lookups
        are all in-memory hits.
        """
        unique = list(dict.fromkeys(keys))
        if unique:
            self._seen.update(unique)
            self._cache.classify_batch(unique)

    def flows_for_request(
        self,
        request: HttpRequest,
        labeler: DestinationLabeler,
        service: str,
        platform: Platform,
        kind: TraceKind,
        age: AgeGroup | None,
        extracted: list | None = None,
    ) -> list[FlowObservation]:
        """All data flows one outgoing request produces.

        ``extracted`` lets a caller that already ran
        :func:`extract_from_request` (the engine extracts once per
        request for key accounting) pass the result in instead of
        extracting twice.
        """
        column = TraceColumn.for_trace(kind, age)
        destination = labeler.label(request.url.fqdn)
        observations: list[FlowObservation] = []
        seen: set[Level3] = set()
        if extracted is None:
            extracted = extract_from_request(request)
        labels = self.labels_for_keys([item.key for item in extracted])
        for item, label in zip(extracted, labels):
            if label is None or label in seen:
                continue
            seen.add(label)
            observations.append(
                FlowObservation(
                    service=service,
                    column=column,
                    platform=platform,
                    level3=label,
                    fqdn=destination.fqdn,
                    esld=destination.esld or esld_of(destination.fqdn),
                    party=destination.party,
                    raw_key=item.key,
                )
            )
        return observations

    @property
    def classified_keys(self) -> int:
        return len(self._seen)

    def classified_key_set(self) -> set[str]:
        """The unique raw keys this builder has classified so far."""
        return set(self._seen)
