"""Data flows: ``<data type category, destination>`` (paper §3.2.1).

* :mod:`repro.flows.dataflow` — flow records and the aggregated
  :class:`FlowTable` with the Table 4 grid roll-up;
* :mod:`repro.flows.builder` — construct flows from parsed requests
  using a classifier (data types) and a destination labeler (parties).
"""

from repro.flows.dataflow import FlowObservation, FlowTable
from repro.flows.builder import FlowBuilder, GroundTruthClassifier

__all__ = ["FlowObservation", "FlowTable", "FlowBuilder", "GroundTruthClassifier"]
