"""Flow records and aggregation.

A *data flow* is a ``<data type category, destination>`` pair observed
in a trace (paper §3.2.1).  :class:`FlowObservation` carries the full
audit context (service, column, platform, party label);
:class:`FlowTable` aggregates observations into the structures the
results section consumes: the Table 4 grid, unique-flow counts, and
per-destination data type sets for the linkability analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.destinations.party import PartyLabel
from repro.model import FlowCell, Platform, Presence, TraceColumn
from repro.ontology import ONTOLOGY
from repro.ontology.nodes import Level2, Level3


_CELL_FOR = {
    PartyLabel.FIRST_PARTY: FlowCell.COLLECT_1ST,
    PartyLabel.FIRST_PARTY_ATS: FlowCell.COLLECT_1ST_ATS,
    PartyLabel.THIRD_PARTY: FlowCell.SHARE_3RD,
    PartyLabel.THIRD_PARTY_ATS: FlowCell.SHARE_3RD_ATS,
}


def cell_for(party: PartyLabel) -> FlowCell:
    """Map a destination's party label to its Table 4 flow cell."""
    return _CELL_FOR[party]


@dataclass(frozen=True)
class FlowObservation:
    """One observed data flow with its audit context."""

    service: str
    column: TraceColumn
    platform: Platform
    level3: Level3
    fqdn: str
    esld: str
    party: PartyLabel
    raw_key: str = ""

    @property
    def level2(self) -> Level2:
        return ONTOLOGY.level2_of(self.level3)

    @property
    def cell(self) -> FlowCell:
        return cell_for(self.party)

    @property
    def flow_pair(self) -> tuple[Level3, str]:
        """The paper's unique-flow identity <data type, destination>."""
        return (self.level3, self.fqdn)


class FlowTable:
    """All flow observations of a corpus, with audit-ready roll-ups."""

    def __init__(self) -> None:
        self._observations: list[FlowObservation] = []
        # (service, level2, column, cell) -> {platforms observed}
        self._grid: dict[tuple, set[Platform]] = defaultdict(set)
        # (service, column, fqdn) -> {level3 types} for third parties
        self._per_destination: dict[tuple, set[Level3]] = defaultdict(set)
        self._party_by_fqdn: dict[tuple[str, str], PartyLabel] = {}

    def add(self, observation: FlowObservation) -> None:
        self._observations.append(observation)
        self._grid[
            (
                observation.service,
                observation.level2,
                observation.column,
                observation.cell,
            )
        ].add(observation.platform)
        if observation.party.is_third_party:
            self._per_destination[
                (observation.service, observation.column, observation.fqdn)
            ].add(observation.level3)
        self._party_by_fqdn[(observation.service, observation.fqdn)] = observation.party

    def extend(self, observations: list[FlowObservation]) -> None:
        for observation in observations:
            self.add(observation)

    def register_party(self, service: str, fqdn: str, party: PartyLabel) -> None:
        """Record a destination's party label without a flow observation.

        Opaque (undecryptable) contacts never produce flows but still
        count for the destination census; registration never overrides
        a label that an observed flow already set.
        """
        self._party_by_fqdn.setdefault((service, fqdn), party)

    def merge(self, other: "FlowTable") -> None:
        """Fold another table (e.g. one shard's result) into this one.

        Equivalent to replaying ``other``'s observations through
        :meth:`add` and then registering its party labels — the
        roll-ups are merged structurally instead (set unions per grid
        cell and destination), which skips re-deriving each
        observation's level-2 category and flow cell.  Party labels
        keep :meth:`add`'s semantics: labels set by ``other``'s
        observations override, registered-only labels do not.
        """
        self._observations.extend(other._observations)
        for key, platforms in other._grid.items():
            self._grid[key].update(platforms)
        for key, types in other._per_destination.items():
            self._per_destination[key].update(types)
        for observation in other._observations:
            self._party_by_fqdn[
                (observation.service, observation.fqdn)
            ] = observation.party
        for key, party in other._party_by_fqdn.items():
            self._party_by_fqdn.setdefault(key, party)

    def __len__(self) -> int:
        return len(self._observations)

    def observations(self) -> list[FlowObservation]:
        return list(self._observations)

    # -- paper-facing aggregates ---------------------------------------

    def unique_flows(self) -> set[tuple[Level3, str]]:
        """Unique <data type, destination> pairs (paper: 5,508)."""
        return {observation.flow_pair for observation in self._observations}

    def unique_data_types(self) -> set[str]:
        """Unique raw data types observed in flows."""
        return {o.raw_key for o in self._observations if o.raw_key}

    def services(self) -> list[str]:
        return sorted({o.service for o in self._observations})

    def presence(
        self,
        service: str,
        level2: Level2,
        column: TraceColumn,
        cell: FlowCell,
    ) -> Presence:
        """The Table 4 symbol for one grid cell.

        Desktop observations merge into the web side, as the paper
        merges desktop-app traces with the website platform.
        """
        platforms = self._grid.get((service, level2, column, cell), set())
        web = bool({Platform.WEB, Platform.DESKTOP} & platforms)
        mobile = Platform.MOBILE in platforms
        return Presence.from_platforms(web=web, mobile=mobile)

    def grid_for(self, service: str) -> dict[tuple[Level2, TraceColumn, FlowCell], Presence]:
        """The full Table 4 row block for one service."""
        from repro.model import ALL_COLUMNS

        out = {}
        for level2 in Level2:
            for column in ALL_COLUMNS:
                for cell in FlowCell:
                    out[(level2, column, cell)] = self.presence(
                        service, level2, column, cell
                    )
        return out

    def observed_level2(self, service: str | None = None) -> set[Level2]:
        return {
            o.level2
            for o in self._observations
            if service is None or o.service == service
        }

    def observed_level3(self, service: str | None = None) -> set[Level3]:
        return {
            o.level3
            for o in self._observations
            if service is None or o.service == service
        }

    # -- linkability inputs ---------------------------------------------

    def third_party_type_sets(
        self, service: str, column: TraceColumn
    ) -> dict[str, set[Level3]]:
        """Per-third-party data type sets for one service and column."""
        out: dict[str, set[Level3]] = {}
        for (svc, col, fqdn), types in self._per_destination.items():
            if svc == service and col == column:
                out[fqdn] = set(types)
        return out

    def party_of(self, service: str, fqdn: str) -> PartyLabel | None:
        return self._party_by_fqdn.get((service, fqdn))
