"""Text renderers for the paper's tables."""

from __future__ import annotations

from repro.datatypes.validation import ValidationReport
from repro.flows.dataflow import FlowTable
from repro.model import ALL_COLUMNS, FlowCell, Presence
from repro.ontology import ONTOLOGY
from repro.ontology.coppa_ccpa import OBSERVED_LEVEL3
from repro.ontology.nodes import Level1, Level2
from repro.pipeline.dataset import DatasetSummary
from repro.services.profiles import FLOW_CELLS, LEVEL2_ROWS


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Generic monospace table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def render_table1(dataset: DatasetSummary, title: str = "Table 1: Dataset Summary") -> str:
    rows = [
        [service, str(domains), str(eslds), f"{packets:,}", f"{flows:,}"]
        for service, domains, eslds, packets, flows in dataset.rows()
    ]
    rows.append(
        [
            "Total (unique)",
            str(dataset.total_domains),
            str(dataset.total_eslds),
            f"{dataset.total_packets:,}",
            f"{dataset.total_tcp_flows:,}",
        ]
    )
    return render_table(
        ["Service", "Domains", "eSLDs", "Packets", "TCP Flows"], rows, title
    )


def render_table2(flows: FlowTable, title: str = "Table 2: Observed Data Type Categories") -> str:
    observed = flows.observed_level3()
    rows = []
    for node in ONTOLOGY:
        star = "*" if node.level3 in observed else " "
        paper_star = "*" if node.level3 in OBSERVED_LEVEL3 else " "
        rows.append(
            [node.level1.value, node.level3.value, star, paper_star]
        )
    return render_table(
        ["Level 1", "Category", "Observed", "Paper"], rows, title
    )


def render_table3(
    reports: list[ValidationReport],
    title: str = "Table 3: Classifier Validation",
) -> str:
    rows = []
    for report in reports:
        row = [report.classifier, f"{report.accuracy:.2f}"]
        for threshold in report.thresholds:
            row.append(f"{threshold.accuracy:.2f}")
            row.append(str(threshold.labeled))
        rows.append(row)
    headers = ["Model", "Accuracy"]
    if reports:
        for threshold in reports[0].thresholds:
            headers.append(f"Acc@{threshold.threshold}")
            headers.append(f"N@{threshold.threshold}")
    return render_table(headers, rows, title)


_PRESENCE_SYMBOL = {
    Presence.BOTH: "●",
    Presence.WEB_ONLY: "W",
    Presence.MOBILE_ONLY: "M",
    Presence.NONE: "—",
}


def render_table4(
    flows: FlowTable,
    services: list[str] | None = None,
    title: str = "Table 4: Data Flows by Age Category and Platform",
) -> str:
    """The paper's big grid: ● both, W web-only, M mobile-only, — none."""
    services = services or flows.services()
    headers = ["Service", "Data Type Category"]
    for column in ALL_COLUMNS:
        for cell in FLOW_CELLS:
            short = {
                FlowCell.COLLECT_1ST: "C1",
                FlowCell.COLLECT_1ST_ATS: "C1A",
                FlowCell.SHARE_3RD: "S3",
                FlowCell.SHARE_3RD_ATS: "S3A",
            }[cell]
            headers.append(f"{column.value[:5]}:{short}")
    rows = []
    for service in services:
        for level2 in LEVEL2_ROWS:
            row = [service, level2.value]
            for column in ALL_COLUMNS:
                for cell in FLOW_CELLS:
                    row.append(
                        _PRESENCE_SYMBOL[flows.presence(service, level2, column, cell)]
                    )
            rows.append(row)
    return render_table(headers, rows, title)


def render_table5(title: str = "Table 5: Data Type Ontology (COPPA/CCPA)") -> str:
    rows = []
    for node in ONTOLOGY:
        examples = ", ".join(node.examples[:5])
        if len(node.examples) > 5:
            examples += ", …"
        rows.append(
            [node.level1.value, node.level2.value, node.level3.value, examples]
        )
    return render_table(["Level 1", "Level 2", "Level 3", "Level 4 (examples)"], rows, title)


def ontology_statistics() -> dict:
    """Structural facts about the ontology used by Table 5 checks."""
    return {
        "level1": len(Level1),
        "level2": len(Level2),
        "level3": len(ONTOLOGY),
        "level4_examples": sum(len(node.examples) for node in ONTOLOGY),
        "observed_level3": len(OBSERVED_LEVEL3),
    }
