"""Text renderers for the paper's figures (3, 4, 5) and §4.2 census."""

from __future__ import annotations

from repro.linkability.alluvial import AlluvialEdge, top_ats_organizations
from repro.linkability.analysis import DestinationCensus, LinkabilityResult
from repro.model import ALL_COLUMNS, TraceColumn
from repro.reporting.tables import render_table


def _bar(value: int, scale: float = 1.0, max_width: int = 40) -> str:
    width = min(max_width, int(round(value * scale)))
    return "█" * max(width, 1 if value > 0 else 0)


def render_fig3(
    matrix: dict[tuple[str, TraceColumn], LinkabilityResult],
    title: str = "Figure 3: Third Parties Sent Linkable Data",
) -> str:
    """Grouped bars: linkable third-party counts per service/column."""
    services = sorted({service for service, _ in matrix})
    peak = max(
        (result.linkable_third_parties for result in matrix.values()), default=1
    )
    scale = 40 / max(peak, 1)
    lines = [title]
    for service in services:
        lines.append(f"{service}:")
        for column in ALL_COLUMNS:
            result = matrix[(service, column)]
            count = result.linkable_third_parties
            lines.append(
                f"  {column.value:<11} {count:>4}  {_bar(count, scale)}"
            )
    return "\n".join(lines)


def render_fig4(
    matrix: dict[tuple[str, TraceColumn], LinkabilityResult],
    title: str = "Figure 4: Largest Linkable Data Type Sets",
) -> str:
    services = sorted({service for service, _ in matrix})
    lines = [title]
    for service in services:
        lines.append(f"{service}:")
        for column in ALL_COLUMNS:
            result = matrix[(service, column)]
            size = result.largest_set_size
            lines.append(f"  {column.value:<11} {size:>3}  {_bar(size, 2.5)}")
    return "\n".join(lines)


def render_fig5(
    edges: list[AlluvialEdge],
    title: str = "Figure 5: Top Third-Party ATS Organizations Sent Linkable Data",
) -> str:
    """Alluvial edges as a ranked organization table."""
    rows = [
        [organization, str(weight)]
        for organization, weight in top_ats_organizations(edges)[:32]
    ]
    header = render_table(["Organization", "Linkable contacts"], rows, title)
    by_service: dict[str, set[str]] = {}
    for edge in edges:
        by_service.setdefault(edge.service, set()).add(edge.organization)
    lines = [header, "", "service → organizations (top-10 per trace category):"]
    for service in sorted(by_service):
        orgs = sorted(by_service[service])
        lines.append(f"  {service}: {', '.join(orgs[:12])}")
    return "\n".join(lines)


def render_census(
    census: DestinationCensus, title: str = "§4.2 Destination Census"
) -> str:
    rows = [
        ["first party", str(census.first_party), "320"],
        ["first party ATS", str(census.first_party_ats), "33"],
        ["third party", str(census.third_party), "150"],
        ["third party ATS", str(census.third_party_ats), "485"],
        ["organizations", str(census.organizations), "≥212"],
        ["unknown owners", str(census.unknown_owner_domains), "(some)"],
    ]
    return render_table(["Destination class", "Measured", "Paper"], rows, title)
