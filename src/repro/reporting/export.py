"""Machine-readable exports of audit results (CSV / JSON).

The paper plans to release DiffAudit's datasets (§5.3); regulators and
researchers consume flows and findings as data, not prose.  These
exporters emit stable, documented schemas.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING

from repro.flows.dataflow import FlowTable
from repro.model import ALL_COLUMNS
from repro.pipeline.diffaudit import DiffAuditResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.replay import ReplayProvenance

FLOW_FIELDS = (
    "service",
    "column",
    "platform",
    "data_type_category",
    "level2",
    "level1",
    "destination",
    "esld",
    "party",
    "raw_key",
)


def flows_to_csv(flows: FlowTable) -> str:
    """One row per flow observation."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(FLOW_FIELDS)
    from repro.ontology import ONTOLOGY

    for observation in flows.observations():
        node = ONTOLOGY.node(observation.level3)
        writer.writerow(
            [
                observation.service,
                observation.column.value,
                observation.platform.value,
                observation.level3.value,
                node.level2.value,
                node.level1.value,
                observation.fqdn,
                observation.esld,
                observation.party.value,
                observation.raw_key,
            ]
        )
    return buffer.getvalue()


def findings_to_csv(result: DiffAuditResult) -> str:
    """One row per audit finding."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["service", "kind", "severity", "law", "column", "category", "cell", "description"]
    )
    for service in sorted(result.audits):
        for finding in result.audits[service].findings:
            writer.writerow(
                [
                    finding.service,
                    finding.kind.value,
                    finding.severity.value,
                    finding.law,
                    finding.column.value,
                    finding.level2.value if finding.level2 else "",
                    finding.cell.value if finding.cell else "",
                    finding.description,
                ]
            )
    return buffer.getvalue()


def result_to_json(
    result: DiffAuditResult, provenance: "ReplayProvenance | None" = None
) -> str:
    """The full result as one JSON document (summary granularity).

    ``provenance`` (from :meth:`repro.pipeline.replay.ReplayCorpus.provenance`)
    records where replayed input came from.  It is opt-in — default
    output is byte-identical between an in-memory audit and a replay
    of the same corpus, which is the pipeline's parity guarantee.
    """
    document = {
        "config": {
            "seed": result.config.seed,
            "scale": result.config.scale,
            "profile": result.config.profile,
            # null for a clean link — an impaired result must say so,
            # or archived numbers would mislabel as clean traffic.
            "impair": result.config.impair,
            "effective_scale": result.config.effective_scale,
            "services": sorted(result.audits),
        },
        "dataset": {
            service: {
                "domains": stats.domain_count,
                "eslds": stats.esld_count,
                "packets": stats.packets,
                "tcp_flows": stats.tcp_flows,
            }
            for service, stats in result.dataset.per_service.items()
        },
        "dataset_totals": {
            "domains": result.dataset.total_domains,
            "eslds": result.dataset.total_eslds,
            "packets": result.dataset.total_packets,
            "tcp_flows": result.dataset.total_tcp_flows,
        },
        "linkability": {
            service: {
                column.value: {
                    "linkable_third_parties": result.linkability[
                        (service, column)
                    ].linkable_third_parties,
                    "largest_set_size": result.linkability[
                        (service, column)
                    ].largest_set_size,
                    "largest_set": sorted(
                        level3.value
                        for level3 in result.linkability[(service, column)].largest_set
                    ),
                }
                for column in ALL_COLUMNS
            }
            for service in sorted(result.audits)
        },
        "census": {
            "first_party": result.census.first_party,
            "first_party_ats": result.census.first_party_ats,
            "third_party": result.census.third_party,
            "third_party_ats": result.census.third_party_ats,
            "organizations": result.census.organizations,
        },
        "findings": {
            service: [
                {
                    "kind": finding.kind.value,
                    "severity": finding.severity.value,
                    "law": finding.law,
                    "column": finding.column.value,
                    "category": finding.level2.value if finding.level2 else None,
                    "cell": finding.cell.value if finding.cell else None,
                    "description": finding.description,
                }
                for finding in result.audits[service].findings
            ]
            for service in sorted(result.audits)
        },
        "common_linkable_set": sorted(
            level3.value for level3 in result.common_linkable_set
        ),
        "unique_data_types": result.unique_data_types,
        "unique_flows": len(result.flows.unique_flows()),
    }
    if result.degraded:
        # Only when non-empty: clean runs (and strict runs, which never
        # get here with failures) keep their exact output bytes, so
        # every parity invariant — sequential==parallel, cold==warm,
        # non-data-fault==clean — still compares byte-for-byte.
        document["degraded"] = [
            {
                "service": entry.service,
                "unit": entry.unit,
                "path": entry.path,
                "digest": entry.digest,
                "stage": entry.stage,
                "error": entry.error,
                "detail": entry.detail,
            }
            for entry in result.degraded
        ]
    if provenance is not None:
        document["provenance"] = provenance.to_json_dict()
    return json.dumps(document, indent=2)
