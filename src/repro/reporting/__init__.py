"""Rendering of the paper's tables and figures as text artifacts.

Benchmarks print these so a run's output reads like the paper's
results section; EXPERIMENTS.md records paper-vs-measured per item.
"""

from repro.reporting.tables import (
    render_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
)
from repro.reporting.figures import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_census,
)

__all__ = [
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "render_table5",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_census",
]
