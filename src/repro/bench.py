"""Recorded benchmark trajectory — the machine-readable perf record.

``repro bench`` (or ``tools/bench_record.py``) runs the benchmark
suite and appends one ``BENCH_<n>.json`` entry to the trajectory:
``BENCH_0.json`` is the oldest recording, ``BENCH_<n>`` the newest,
so the sequence of files *is* the performance history of the repo and
every future change can be held against it.

Each entry is a JSON document with a ``workloads`` list; every
workload record carries the schema fields in
:data:`BENCH_SCHEMA_FIELDS` (documented in ``docs/performance.md``):

* ``workload`` — which suite member ran (``decode``, ``stream``,
  ``audit``, ``audit-parallel``, ``audit-incremental``);
* ``scale`` / ``profile`` / ``jobs`` / ``repeats`` — the knobs, so
  entries are only ever compared like-for-like;
* ``wall_time_s`` — best-of-``repeats`` wall time;
* ``peak_rss_kb`` — the workload process's peak resident set
  (each workload runs in its own child process so one workload's
  allocations cannot inflate another's reading);
* ``throughput`` / ``throughput_unit`` — MB/s of PCAP bytes decoded,
  or audit traces/s;
* ``git_rev`` — the revision the numbers were measured at
  (``-dirty`` when the working tree had uncommitted changes).

When a previous entry exists, the new document embeds a
``compared_to`` block with per-workload throughput ratios against the
most recent entry that ran the same workload with the same knobs.
When both audit workloads run, the document also carries
``audit_parallel_vs_sequential`` — the in-entry ratio of the parallel
audit's throughput to the sequential audit's, the number the
``--min-parallel-efficiency`` gate holds.  When the
``audit-incremental`` workload runs, the document carries
``audit_incremental_vs_cold`` — the in-entry ratio of the cold run's
wall time to the warm incremental re-audit's, the number the
``--min-incremental-speedup`` gate holds.

Audit workloads run under stage profiling
(:mod:`repro.pipeline.profile`): the best run's stage attribution is
written beside the entry as ``BENCH_<n>.profile.json``, so every
recorded throughput number comes with the breakdown that explains it.
"""

from __future__ import annotations

import json
import multiprocessing
import resource
import subprocess
import sys
import time
from pathlib import Path

from repro import CorpusConfig, DiffAudit
from repro.capture.decrypt import decrypt_mobile_artifact
from repro.fsutil import atomic_write_text
from repro.capture.pcapdroid import PcapdroidCapture
from repro.model import Platform
from repro.pipeline.profile import validate_profile
from repro.services.generator import TrafficGenerator

BENCH_VERSION = 1
BENCH_GLOB = "BENCH_*.json"

#: The fields every workload record must carry — the on-disk schema
#: contract checked by ``tools/check_docs.py`` against
#: ``docs/performance.md`` and by the perf-smoke CI job.
BENCH_SCHEMA_FIELDS = (
    "workload",
    "scale",
    "profile",
    "jobs",
    "repeats",
    "wall_time_s",
    "peak_rss_kb",
    "throughput",
    "throughput_unit",
    "git_rev",
)

DEFAULT_SCALE = 0.02
QUICK_SCALE = 0.005
DEFAULT_REPEATS = 3
QUICK_REPEATS = 1


class BenchError(RuntimeError):
    """Raised when a benchmark entry cannot be recorded or validated."""


# The record fields that must agree for two entries to be comparable.
_COMPARE_KNOBS = ("workload", "scale", "profile", "jobs")


def git_revision(root: Path | None = None) -> str:
    """``<short-rev>[-dirty]`` for the tree the measured code came from.

    Defaults to the directory holding this module (the source
    checkout), not the benchmark output directory — the revision
    describes the *code*, wherever the numbers land.
    """
    cwd = Path(root) if root is not None else Path(__file__).resolve().parent
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return f"{rev}-dirty" if status else rev


def _now() -> int:
    """The one sanctioned wall-clock read in this codebase.

    Everything the pipeline *outputs* is derived from the corpus seed;
    the only thing allowed to know the real date is the benchmark
    trajectory, whose entries are historical records stamped with when
    they were taken.  Tests inject time by monkeypatching this seam.
    """
    return int(time.time())  # repro-lint: disable=D-NOW — BENCH entries are dated historical records; this seam is the single sanctioned call site


def _peak_rss_kb() -> int:
    """Peak resident set of *this* process, normalized to kilobytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS
        peak //= 1024
    return int(peak)


# ----------------------------------------------------------------------
# Workloads (each runs inside its own child process)
# ----------------------------------------------------------------------


def _mobile_corpus(config: CorpusConfig) -> list[tuple[bytes, str]]:
    """Capture every mobile trace as archived (pcap bytes, keylog text)."""
    generator = TrafficGenerator(config)
    capture = PcapdroidCapture()
    corpus: list[tuple[bytes, str]] = []
    for trace in generator.generate_corpus():
        if trace.platform is not Platform.MOBILE:
            continue
        artifact = capture.capture(trace)
        corpus.append((artifact.pcap_bytes(), artifact.keylog_text()))
    return corpus


def _decode_workload(scale: float, profile: str, repeats: int) -> dict:
    """Cold-path decode: PCAP → frames → TCP → TLS → HTTP requests.

    Setup (generation + capture encryption) is untimed; the timed loop
    is exactly the per-trace work ``audit --from-artifacts`` does to a
    mobile corpus.  Throughput is MB of archived PCAP bytes decoded
    per second.
    """
    corpus = _mobile_corpus(CorpusConfig(scale=scale, profile=profile))
    if not corpus:
        raise BenchError("decode workload produced no mobile traces")
    total_bytes = sum(len(pcap) for pcap, _ in corpus)
    best = float("inf")
    requests = 0
    for _ in range(repeats):
        start = time.perf_counter()
        requests = 0
        for pcap_bytes, keylog_text in corpus:
            requests += len(decrypt_mobile_artifact(pcap_bytes, keylog_text).requests)
        best = min(best, time.perf_counter() - start)
    if requests == 0:
        raise BenchError("decode workload recovered no requests")
    return {
        "wall_time_s": round(best, 4),
        "throughput": round(total_bytes / best / 1e6, 3),
        "throughput_unit": "MB/s",
        "detail": {
            "traces": len(corpus),
            "pcap_bytes": total_bytes,
            "requests_recovered": requests,
        },
    }


def _stream_workload(scale: float, profile: str, repeats: int) -> dict:
    """Streaming decode: the same corpus as ``decode``, one packet at
    a time through the incremental reassembly → TLS → HTTP pipeline
    with the default eviction policy.  Holds the streaming path's
    throughput against the batch decoder's, with per-workload peak RSS
    showing the bounded-memory trade."""
    from repro.net.pcap import PcapReader
    from repro.net.tls import KeyLog
    from repro.stream.incremental import IncrementalTraceDecoder

    corpus = _mobile_corpus(CorpusConfig(scale=scale, profile=profile))
    if not corpus:
        raise BenchError("stream workload produced no mobile traces")
    keylogs = [KeyLog.from_text(text) for _, text in corpus]
    total_bytes = sum(len(pcap) for pcap, _ in corpus)
    best = float("inf")
    requests = 0
    for _ in range(repeats):
        start = time.perf_counter()
        requests = 0
        for (pcap_bytes, _), keylog in zip(corpus, keylogs):
            decoder = IncrementalTraceDecoder(keylog)
            reader = PcapReader(pcap_bytes)
            for record in reader.iter_packets():
                decoder.feed(record.timestamp, record.data)
            requests += len(decoder.finish().requests)
            reader.close()
        best = min(best, time.perf_counter() - start)
    if requests == 0:
        raise BenchError("stream workload recovered no requests")
    return {
        "wall_time_s": round(best, 4),
        "throughput": round(total_bytes / best / 1e6, 3),
        "throughput_unit": "MB/s",
        "detail": {
            "traces": len(corpus),
            "pcap_bytes": total_bytes,
            "requests_recovered": requests,
        },
    }


def _audit_incremental_workload(scale: float, profile: str, repeats: int) -> dict:
    """Warm incremental re-audit of an unchanged replayed corpus.

    Setup (untimed loop-wise): generate an artifacts corpus, then one
    cold ``audit --from-artifacts --cache-dir`` run that populates the
    classification store *and* the per-unit result cache — its wall
    time rides along in ``detail`` as the in-entry baseline the
    ``--min-incremental-speedup`` gate divides by.  Timed: the warm
    incremental re-audit of the unchanged corpus, best-of-``repeats``.
    Every warm run must perform zero per-unit recomputations and
    export a report byte-identical to the cold run's — a violation is
    a ``BenchError``, not a slow number.
    """
    import tempfile

    from repro.pipeline.engine import generate_corpus_artifacts
    from repro.reporting.export import result_to_json

    config = CorpusConfig(scale=scale, profile=profile)
    with tempfile.TemporaryDirectory(prefix="repro-bench-incr-") as tmp:
        artifacts = Path(tmp) / "artifacts"
        cache = Path(tmp) / "cache"
        traces = generate_corpus_artifacts(config, artifacts)
        if not traces:
            raise BenchError("audit-incremental workload produced no traces")

        def audit() -> DiffAudit:
            return DiffAudit(config=config, replay=artifacts, cache_dir=cache)

        start = time.perf_counter()
        cold_result, _ = audit().run_profiled()
        cold_wall = time.perf_counter() - start
        cold_json = result_to_json(cold_result)

        best = float("inf")
        best_profile: dict = {}
        hits = 0
        for _ in range(repeats):
            start = time.perf_counter()
            warm_result, warm_profile = audit().run_profiled()
            elapsed = time.perf_counter() - start
            engine_profile = warm_profile.get("engine", {})
            hits = int(engine_profile.get("unit_hits", 0))
            misses = int(engine_profile.get("unit_misses", -1))
            if misses != 0:
                raise BenchError(
                    "warm incremental run recomputed "
                    f"{misses} unit(s) on an unchanged corpus"
                )
            if result_to_json(warm_result) != cold_json:
                raise BenchError(
                    "warm incremental run diverged from the cold run"
                )
            if elapsed < best:
                best = elapsed
                best_profile = warm_profile
        return {
            "wall_time_s": round(best, 4),
            "throughput": round(traces / best, 3),
            "throughput_unit": "traces/s",
            "profile": best_profile,
            "detail": {
                "traces": traces,
                "cold_wall_time_s": round(cold_wall, 4),
                "unit_hits": hits,
                "unit_misses": 0,
            },
        }


def _audit_workload(scale: float, profile: str, jobs: int, repeats: int) -> dict:
    """End-to-end audit wall time (generate → decode → classify → audit).

    Runs under stage profiling; the best run's profile document rides
    back to the parent under the ``profile`` key so ``run_bench`` can
    record it beside the entry.
    """
    config = CorpusConfig(scale=scale, profile=profile)
    traces = sum(
        len(TrafficGenerator(config).trace_units(spec))
        for spec in config.service_specs()
    )
    best = float("inf")
    best_profile: dict = {}
    for _ in range(repeats):
        start = time.perf_counter()
        _, stage_profile = DiffAudit(config, jobs=jobs).run_profiled()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            best_profile = stage_profile
    return {
        "wall_time_s": round(best, 4),
        "throughput": round(traces / best, 3),
        "throughput_unit": "traces/s",
        "profile": best_profile,
        "detail": {"traces": traces},
    }


def _child_entry(target, args: tuple, conn) -> None:
    """Child-process wrapper: run the workload, report payload + RSS."""
    try:
        payload = target(*args)
        payload["peak_rss_kb"] = _peak_rss_kb()
        conn.send(payload)
    # repro-lint: disable=X-BARE-EXCEPT — child-process boundary: ship ANY failure to the parent before dying, then re-raise unchanged
    except BaseException as exc:  # surface the failure in the parent
        conn.send({"error": f"{type(exc).__name__}: {exc}"})
        raise
    finally:
        conn.close()


def _run_isolated(target, args: tuple) -> dict:
    """Run one workload in a fresh child so peak RSS is per-workload."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context()
    receiver, sender = context.Pipe(duplex=False)
    process = context.Process(target=_child_entry, args=(target, args, sender))
    process.start()
    sender.close()
    try:
        payload = receiver.recv()
    except EOFError as exc:
        raise BenchError(f"benchmark worker died without reporting: {exc}") from exc
    finally:
        process.join()
        receiver.close()
    if "error" in payload:
        raise BenchError(f"benchmark workload failed: {payload['error']}")
    return payload


# ----------------------------------------------------------------------
# Trajectory files
# ----------------------------------------------------------------------


def bench_entries(root: Path) -> list[tuple[int, Path]]:
    """Existing ``BENCH_<n>.json`` files, ordered by index."""
    return sorted(
        (int(suffix), path)
        for path in Path(root).glob(BENCH_GLOB)
        if (suffix := path.stem.split("_", 1)[1]).isdigit()
    )


def load_entry(path: Path) -> dict:
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "workloads" not in document:
        raise BenchError(f"{path} is not a benchmark entry (no 'workloads' key)")
    return document


def validate_entry(document: dict) -> None:
    """Schema check: every workload record carries every schema field."""
    for record in document.get("workloads", []):
        missing = [field for field in BENCH_SCHEMA_FIELDS if field not in record]
        if missing:
            raise BenchError(
                f"workload record {record.get('workload')!r} is missing "
                f"schema field(s): {', '.join(missing)}"
            )


def compare_entries(current: dict, previous: dict) -> dict:
    """Per-workload throughput/wall-time ratios vs a previous entry.

    Only like-for-like records (same workload, scale, profile, jobs)
    are compared; a quick CI entry never gets held against a
    full-scale recording.
    """
    ratios: dict[str, dict] = {}
    for record in current.get("workloads", []):
        for old in previous.get("workloads", []):
            if all(
                old.get(field) == record.get(field) for field in _COMPARE_KNOBS
            ):
                if old.get("throughput") and record.get("throughput"):
                    ratios[record["workload"]] = {
                        "throughput_speedup": round(
                            record["throughput"] / old["throughput"], 3
                        ),
                        "wall_time_ratio": round(
                            record["wall_time_s"] / old["wall_time_s"], 3
                        )
                        if old.get("wall_time_s")
                        else None,
                    }
                break
    return ratios


def run_bench(
    root: Path,
    scale: float = DEFAULT_SCALE,
    profile: str = "standard",
    jobs: int = 2,
    repeats: int = DEFAULT_REPEATS,
    workloads: tuple[str, ...] = (
        "decode",
        "stream",
        "audit",
        "audit-parallel",
        "audit-incremental",
    ),
) -> tuple[Path, dict]:
    """Run the suite, write the next ``BENCH_<n>.json``, return both."""
    root = Path(root)
    rev = git_revision()
    records: list[dict] = []
    profiles: dict[str, dict] = {}
    for name in workloads:
        if name == "decode":
            payload = _run_isolated(_decode_workload, (scale, profile, repeats))
            knobs = {"jobs": 1}
        elif name == "stream":
            payload = _run_isolated(_stream_workload, (scale, profile, repeats))
            knobs = {"jobs": 1}
        elif name == "audit":
            payload = _run_isolated(_audit_workload, (scale, profile, 1, repeats))
            knobs = {"jobs": 1}
        elif name == "audit-parallel":
            payload = _run_isolated(_audit_workload, (scale, profile, jobs, repeats))
            knobs = {"jobs": jobs}
        elif name == "audit-incremental":
            payload = _run_isolated(
                _audit_incremental_workload, (scale, profile, repeats)
            )
            knobs = {"jobs": 1}
        else:
            raise BenchError(f"unknown workload {name!r}")
        stage_profile = payload.pop("profile", None)
        if stage_profile:
            stage_profile["workload"] = name
            profiles[name] = stage_profile
        detail = payload.pop("detail", {})
        record = {
            "workload": name,
            "scale": scale,
            "profile": profile,
            "repeats": repeats,
            **knobs,
            **payload,
            "git_rev": rev,
        }
        record["detail"] = detail
        records.append(record)

    entries = bench_entries(root)
    index = entries[-1][0] + 1 if entries else 0
    document: dict = {
        "version": BENCH_VERSION,
        "git_rev": rev,
        "recorded_unix": _now(),
        "python": ".".join(str(v) for v in sys.version_info[:3]),
        "workloads": records,
    }
    # In-entry parallel efficiency: parallel audit throughput over the
    # sequential audit's, measured in the same entry on the same host —
    # the one number that must not dip below 1.0 for --jobs to be worth
    # defaulting on.
    sequential = next((r for r in records if r["workload"] == "audit"), None)
    parallel = next(
        (r for r in records if r["workload"] == "audit-parallel"), None
    )
    if sequential and parallel and sequential.get("throughput"):
        document["audit_parallel_vs_sequential"] = round(
            parallel["throughput"] / sequential["throughput"], 3
        )
    # In-entry incremental speedup: the warm O(delta) re-audit's wall
    # time against the cold run measured in the same workload on the
    # same corpus — the number --min-incremental-speedup holds.
    incremental = next(
        (r for r in records if r["workload"] == "audit-incremental"), None
    )
    if incremental and incremental.get("wall_time_s"):
        cold_wall = incremental.get("detail", {}).get("cold_wall_time_s")
        if cold_wall:
            document["audit_incremental_vs_cold"] = round(
                cold_wall / incremental["wall_time_s"], 3
            )
    # Baseline = the most recent entry with at least one like-for-like
    # record, not blindly the newest file: an interleaved --quick CI
    # entry must not disarm comparisons for full-scale recordings.
    for _, previous_path in reversed(entries):
        ratios = compare_entries(document, load_entry(previous_path))
        if ratios:
            document["compared_to"] = {"file": previous_path.name, **ratios}
            break
    validate_entry(document)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"BENCH_{index}.json"
    atomic_write_text(path, json.dumps(document, indent=1) + "\n")
    if profiles:
        for stage_profile in profiles.values():
            validate_profile(stage_profile)
        profile_path = root / f"BENCH_{index}.profile.json"
        atomic_write_text(
            profile_path, json.dumps(profiles, indent=1, sort_keys=True) + "\n"
        )
    return path, document


def evaluate_gates(
    document: dict,
    min_decode_speedup: float | None = None,
    min_audit_speedup: float | None = None,
    min_audit_parallel_speedup: float | None = None,
    min_parallel_efficiency: float | None = None,
    min_incremental_speedup: float | None = None,
) -> tuple[list[str], list[str]]:
    """Apply the perf gates to a recorded entry.

    Returns ``(warnings, errors)``: a gate that cannot be evaluated
    (no comparable baseline, missing workload) warns instead of
    silently disarming; a gate below its minimum is an error.
    """
    warnings: list[str] = []
    errors: list[str] = []
    # Trajectory gates: throughput vs the previous comparable entry.
    for workload, minimum in (
        ("decode", min_decode_speedup),
        ("audit", min_audit_speedup),
        ("audit-parallel", min_audit_parallel_speedup),
    ):
        if minimum is None:
            continue
        speedup = (
            document.get("compared_to", {})
            .get(workload, {})
            .get("throughput_speedup")
        )
        if speedup is None:
            warnings.append(
                f"--min-{workload}-speedup not evaluated — no previous "
                f"entry ran the {workload} workload with these knobs"
            )
        elif speedup < minimum:
            errors.append(
                f"{workload} speedup {speedup:.2f}x is below the "
                f"required {minimum:.2f}x"
            )
    # In-entry gate: the parallel audit must beat (or at least match)
    # the sequential one measured in the same run.
    if min_parallel_efficiency is not None:
        ratio = document.get("audit_parallel_vs_sequential")
        if ratio is None:
            warnings.append(
                "--min-parallel-efficiency not evaluated — the entry "
                "does not carry both audit workloads"
            )
        elif ratio < min_parallel_efficiency:
            errors.append(
                f"audit parallel efficiency {ratio:.2f}x is below the "
                f"required {min_parallel_efficiency:.2f}x"
            )
    # In-entry gate: the warm incremental re-audit must beat the cold
    # run it was measured against in the same entry.
    if min_incremental_speedup is not None:
        ratio = document.get("audit_incremental_vs_cold")
        if ratio is None:
            warnings.append(
                "--min-incremental-speedup not evaluated — the entry "
                "does not carry the audit-incremental workload"
            )
        elif ratio < min_incremental_speedup:
            errors.append(
                f"audit incremental speedup {ratio:.2f}x is below the "
                f"required {min_incremental_speedup:.2f}x"
            )
    return warnings, errors


def render_report(path: Path, document: dict) -> str:
    lines = [f"wrote {path}", f"git rev: {document['git_rev']}"]
    for record in document["workloads"]:
        lines.append(
            f"  {record['workload']:<16} {record['wall_time_s']:>8.3f} s   "
            f"{record['throughput']:>10.3f} {record['throughput_unit']:<9} "
            f"peak RSS {record['peak_rss_kb'] / 1024:.0f} MB"
        )
    ratio = document.get("audit_parallel_vs_sequential")
    if ratio is not None:
        lines.append(f"audit parallel vs sequential: {ratio:.2f}x")
    ratio = document.get("audit_incremental_vs_cold")
    if ratio is not None:
        lines.append(f"audit incremental vs cold: {ratio:.2f}x")
    compared = document.get("compared_to")
    if compared:
        lines.append(f"vs {compared['file']}:")
        for name, ratio in compared.items():
            if name == "file":
                continue
            lines.append(
                f"  {name:<16} {ratio['throughput_speedup']:.2f}x throughput"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="run the benchmark suite and record BENCH_<n>.json"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: scale {QUICK_SCALE}, {QUICK_REPEATS} repeat",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--profile", default="standard")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help=f"runs per workload, best-of-N recorded (default "
        f"{DEFAULT_REPEATS}, or {QUICK_REPEATS} with --quick); raise on "
        "noisy hosts",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory receiving BENCH_<n>.json (default: current directory)",
    )
    parser.add_argument(
        "--min-decode-speedup",
        type=float,
        default=None,
        help="fail unless decode throughput is at least this multiple of "
        "the previous comparable entry",
    )
    parser.add_argument(
        "--min-audit-speedup",
        type=float,
        default=None,
        help="fail unless audit throughput is at least this multiple of "
        "the previous comparable entry",
    )
    parser.add_argument(
        "--min-audit-parallel-speedup",
        type=float,
        default=None,
        help="fail unless audit-parallel throughput is at least this "
        "multiple of the previous comparable entry",
    )
    parser.add_argument(
        "--min-parallel-efficiency",
        type=float,
        default=None,
        help="fail unless this entry's audit-parallel throughput is at "
        "least this multiple of its sequential audit throughput",
    )
    parser.add_argument(
        "--min-incremental-speedup",
        type=float,
        default=None,
        help="fail unless this entry's warm incremental re-audit is at "
        "least this many times faster than its in-entry cold run",
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (
        QUICK_SCALE if args.quick else DEFAULT_SCALE
    )
    repeats = args.repeats if args.repeats is not None else (
        QUICK_REPEATS if args.quick else DEFAULT_REPEATS
    )
    try:
        path, document = run_bench(
            Path(args.output_dir),
            scale=scale,
            profile=args.profile,
            jobs=args.jobs,
            repeats=repeats,
        )
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_report(path, document))
    warnings, errors = evaluate_gates(
        document,
        min_decode_speedup=args.min_decode_speedup,
        min_audit_speedup=args.min_audit_speedup,
        min_audit_parallel_speedup=args.min_audit_parallel_speedup,
        min_parallel_efficiency=args.min_parallel_efficiency,
        min_incremental_speedup=args.min_incremental_speedup,
    )
    for message in warnings:
        # Never silently disarm a gate: say why it could not run.
        print(f"warning: {message}", file=sys.stderr)
    for message in errors:
        print(f"error: {message}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
