"""Incremental per-packet decoding with bounded memory.

:class:`IncrementalTraceDecoder` is the streaming sibling of the batch
``repro.capture.decrypt._decrypt_packets`` walk: packets feed in one
at a time, each flow's newly contiguous bytes drain straight through
TLS record decryption and HTTP parsing (so raw capture bytes are
released long before the flow ends), and flows are evicted under an
idle-timeout + byte-budget LRU policy.  Feeding a complete capture to
EOF produces a :class:`~repro.capture.decrypt.MobileDecryption` that
is byte-identical to the batch walk over the same packets — every
corner of the batch semantics (first-copy-wins reassembly, all-or-
nothing TLS flows, break-on-error HTTP walks, opaque accounting,
first-seen flow ordering) is reproduced incrementally.

The parity caveat is eviction itself: a flow evicted *mid-life* (more
of its segments arrive later) is finalized early and its stragglers
open a fresh flow record, which the batch path — seeing the whole
capture at once — would have merged.  The defaults are chosen so that
cannot happen on well-formed feeds (the idle timeout is far longer
than any reordering window); the byte budget is the hard memory
guarantee for adversarial ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.capture.decrypt import DecryptedRequest, MobileDecryption, OpaqueContact
from repro.net.http import HttpRequest, pending_request_need, scan_request_stream
from repro.net.packet import PacketError, parse_tcp_segment
from repro.net.tcp import FlowId, TcpReassembler
from repro.net.tls import (
    RECORD_TYPE_APPDATA,
    TlsError,
    decrypt_record,
    scan_records,
)


@dataclass(frozen=True)
class EvictionPolicy:
    """When the streaming decoder lets go of a flow's buffers.

    ``idle_timeout`` is in *stream time* (capture timestamps): a flow
    that has not seen a segment for that long is finalized — on real
    feeds nothing arrives for it afterwards, so parity with the batch
    walk is preserved.  ``byte_budget`` caps the payload bytes held
    across all flows (reassembly buffers plus pipeline remainders);
    when exceeded, least-recently-active flows are finalized until the
    feed fits, whatever the parity cost — the budget is the memory
    guarantee.  ``sweep_interval`` is how many packets pass between
    idle sweeps.
    """

    idle_timeout: float = 60.0
    byte_budget: int = 32 << 20
    sweep_interval: int = 64


# _FlowPipeline stages.
_SNIFF = 0  # undecided: not enough bytes to route the flow yet
_PLAIN = 1  # plaintext HTTP straight off the wire
_TLS_HELLO = 2  # TLS magic seen, waiting for the full pseudo-hello
_TLS_BODY = 3  # session known, decrypting records incrementally
_OPAQUE = 4  # no secret in the key log: destination knowledge only
_UNDECRYPTABLE = 5  # hello-less TLS records: nothing recoverable
_POISONED = 6  # TLS framing error: the whole flow is undecryptable

_TLS_MAGIC = b"\x16\x03"


class _FlowPipeline:
    """One flow's incremental TLS → plaintext → HTTP pipeline.

    Consumes contiguous stream bytes as they become available and
    releases them immediately; holds only a partial TLS record, a
    partial HTTP request, and the requests recovered so far.  The
    stage machine mirrors the batch per-flow block in
    ``decrypt_mobile_artifact`` decision for decision — including the
    all-or-nothing rule that a TLS framing error anywhere discards
    every request the flow produced.
    """

    __slots__ = (
        "_keylog",
        "_stage",
        "_buffer",
        "_plain",
        "_session",
        "_record_index",
        "_http_broken",
        "_http_need",
        "requests",
        "sni",
        "fed",
    )

    def __init__(self, keylog) -> None:
        self._keylog = keylog
        self._stage = _SNIFF
        self._buffer = bytearray()
        self._plain = bytearray()
        self._session = None
        self._record_index = 0
        self._http_broken = False
        self._http_need = 0
        self.requests: list[HttpRequest] = []
        self.sni = ""
        self.fed = 0

    @property
    def buffered(self) -> int:
        """Unconsumed bytes this pipeline is holding."""
        return len(self._buffer) + len(self._plain)

    def feed(self, chunk: bytes) -> None:
        if not chunk:
            return
        self.fed += len(chunk)
        if self._stage in (_OPAQUE, _UNDECRYPTABLE, _POISONED):
            return  # nothing more is recoverable; drop the bytes
        self._buffer += chunk
        self._advance()

    # -- stage machine --------------------------------------------------

    def _advance(self) -> None:
        if self._stage == _SNIFF:
            self._sniff(final=False)
        if self._stage == _PLAIN:
            self._parse_plain(scheme="http")
        elif self._stage == _TLS_HELLO:
            self._parse_hello()
        if self._stage == _TLS_BODY:
            self._parse_records()

    def _sniff(self, final: bool) -> None:
        """Route the flow once enough bytes arrived to mimic
        ``looks_like_tls`` + ``unwrap_hello`` on the full stream."""
        buffer = self._buffer
        if len(buffer) >= 2 and bytes(buffer[:2]) == _TLS_MAGIC:
            self._stage = _TLS_HELLO
            return
        if len(buffer) >= 5:
            if buffer[0] == RECORD_TYPE_APPDATA and buffer[1] == 0x03 and buffer[2] == 0x03:
                # Bare application-data records with no pseudo-hello:
                # looks_like_tls is true, unwrap_hello yields no hello
                # — the batch walk counts the flow undecryptable.
                self._stage = _UNDECRYPTABLE
                self._buffer.clear()
            else:
                self._stage = _PLAIN
            return
        if final:
            # Short flow (under 5 bytes, no TLS magic): the batch walk
            # would route it to the plaintext parser.
            self._stage = _PLAIN

    def _parse_hello(self) -> None:
        buffer = self._buffer
        if len(buffer) < 36:
            return  # wait for the full fixed part
        sni_length = int.from_bytes(buffer[34:36], "big")
        if len(buffer) < 36 + sni_length:
            return  # wait for the SNI bytes
        client_random = bytes(buffer[2:34])
        self.sni = (
            bytes(buffer[36 : 36 + sni_length]).decode("idna") if sni_length else ""
        )
        del buffer[: 36 + sni_length]
        session = self._keylog.lookup(client_random)
        if session is None:
            self._stage = _OPAQUE
            self._buffer.clear()
            return
        self._session = session
        self._stage = _TLS_BODY

    def _parse_records(self) -> None:
        try:
            records, consumed = scan_records(self._buffer)
        except TlsError:
            self._poison()
            return
        if not consumed:
            return
        for record_type, body in records:
            # The record index counts *all* records, matching the
            # batch decryptor's enumerate()-derived keystream offsets.
            index = self._record_index
            self._record_index += 1
            if record_type != RECORD_TYPE_APPDATA:
                continue
            self._plain += decrypt_record(body, self._session, index)
        del self._buffer[:consumed]
        self._parse_plain(scheme="https")

    def _parse_plain(self, scheme: str) -> None:
        source = self._plain if scheme == "https" else self._buffer
        if self._http_broken:
            source.clear()  # the batch walk stopped here for good
            return
        if len(source) < self._http_need:
            # A pending request's framing already told us how many
            # bytes it needs; don't re-copy and re-scan the buffer for
            # every arriving segment of a large body.
            return
        requests, consumed, broken = scan_request_stream(bytes(source), scheme=scheme)
        self.requests.extend(requests)
        del source[:consumed]
        if broken:
            self._http_broken = True
            source.clear()
            return
        self._http_need = pending_request_need(source) if source else 0

    # -- finalization ---------------------------------------------------

    def _poison(self) -> None:
        self._stage = _POISONED
        self.requests.clear()
        self._buffer.clear()
        self._plain.clear()

    def finalize(self) -> "_FlowOutcome":
        """Close the flow and classify it exactly as the batch walk would."""
        if self.fed == 0:
            return _FlowOutcome(kind="empty")
        if self._stage == _SNIFF:
            self._sniff(final=True)
            if self._stage == _PLAIN:
                self._parse_plain(scheme="http")
        if self._stage == _PLAIN:
            return _FlowOutcome(kind="requests", requests=self.requests)
        if self._stage == _OPAQUE:
            return _FlowOutcome(kind="opaque", sni=self.sni)
        if self._stage == _TLS_BODY:
            if self._buffer:
                # A partial trailing record: iter_records would raise,
                # so the whole flow counts undecryptable.
                return _FlowOutcome(kind="undecryptable")
            return _FlowOutcome(kind="requests", requests=self.requests)
        # _TLS_HELLO (truncated hello), _UNDECRYPTABLE, _POISONED.
        return _FlowOutcome(kind="undecryptable")


@dataclass
class _FlowOutcome:
    """What one finalized flow contributed."""

    kind: str  # "empty" | "requests" | "opaque" | "undecryptable"
    requests: list[HttpRequest] = field(default_factory=list)
    sni: str = ""


@dataclass
class _FlowRecord:
    """Bookkeeping for one flow, in first-seen order."""

    flow: FlowId
    key: str  # canonical flow-id string
    outcome: _FlowOutcome | None = None
    first_timestamp: float = 0.0


class IncrementalTraceDecoder:
    """Feed one capture packet at a time; finish to a batch-identical
    :class:`MobileDecryption`.

    The decoder's live memory is the reassembler's buffered payload
    plus the pipelines' unconsumed remainders, both bounded by the
    :class:`EvictionPolicy`; recovered requests and per-flow counters
    scale with the *results*, as they do in batch.
    """

    def __init__(self, keylog, policy: EvictionPolicy | None = None) -> None:
        self.policy = policy or EvictionPolicy()
        self._keylog = keylog
        self._reassembler = TcpReassembler()
        self._pipelines: dict[FlowId, _FlowPipeline] = {}
        self._active: dict[FlowId, _FlowRecord] = {}
        self._records: list[_FlowRecord] = []
        self._frame_counts: dict[str, int] = {}
        self._packet_count = 0
        self._pipeline_buffered = 0
        self._stream_time = 0.0
        self._since_sweep = 0
        self.high_water_bytes = 0
        self.evictions = 0

    # -- feeding --------------------------------------------------------

    def feed(self, timestamp: float, data) -> None:
        """Consume one captured packet (link-layer bytes)."""
        self._packet_count += 1
        try:
            segment = parse_tcp_segment(data, timestamp=timestamp)
        except PacketError:
            return  # non-TCP noise is skipped, as in batch
        if timestamp > self._stream_time:
            self._stream_time = timestamp
        key = "%s:%d->%s:%d" % segment.flow_key
        self._frame_counts[key] = self._frame_counts.get(key, 0) + 1
        flow = FlowId(
            client_ip=segment.src_ip,
            client_port=segment.src_port,
            server_ip=segment.dst_ip,
            server_port=segment.dst_port,
        )
        if flow not in self._active:
            record = _FlowRecord(flow=flow, key=key)
            self._active[flow] = record
            self._records.append(record)
            self._pipelines[flow] = _FlowPipeline(self._keylog)
        self._reassembler.add_segment(segment)
        self._drain(flow)
        self._enforce_policy()

    def _drain(self, flow: FlowId) -> None:
        chunk = self._reassembler.drain_ready(flow)
        if chunk:
            pipeline = self._pipelines[flow]
            before = pipeline.buffered
            pipeline.feed(chunk)
            self._pipeline_buffered += pipeline.buffered - before

    def buffered_bytes(self) -> int:
        """Payload bytes currently buffered (reassembly + pipelines)."""
        return self._reassembler.buffered_bytes() + self._pipeline_buffered

    def live_flows(self) -> int:
        """Flow pipelines currently resident (not yet finalized)."""
        return len(self._pipelines)

    # -- eviction -------------------------------------------------------

    def _enforce_policy(self) -> None:
        buffered = self.buffered_bytes()
        if buffered > self.high_water_bytes:
            self.high_water_bytes = buffered
        self._since_sweep += 1
        if self._since_sweep >= self.policy.sweep_interval:
            self._since_sweep = 0
            for flow in self._reassembler.idle_flows(
                self._stream_time, self.policy.idle_timeout
            ):
                self._evict(flow)
        while self.buffered_bytes() > self.policy.byte_budget:
            victim = self._reassembler.lru_flow()
            if victim is None:
                break
            self._evict(victim)
            self.evictions += 1

    def _evict(self, flow: FlowId) -> None:
        """Finalize one flow now and release everything it holds."""
        self._drain(flow)
        reassembled = self._reassembler.pop_flow(flow)
        pipeline = self._pipelines.pop(flow)
        self._pipeline_buffered -= pipeline.buffered
        pipeline.feed(reassembled.data)
        record = self._active.pop(flow)
        record.first_timestamp = reassembled.first_timestamp
        record.outcome = pipeline.finalize()

    # -- finishing ------------------------------------------------------

    def finish(self) -> MobileDecryption:
        """Finalize every remaining flow and assemble the result.

        Flows land in first-seen order, requests are stamped with
        their flow's first timestamp, and opaque contacts pick up the
        trace-wide frame counts — all exactly as the batch walk does
        at end of capture.
        """
        for flow in self._reassembler.flow_ids():
            self._evict(flow)
        result = MobileDecryption()
        result.packet_count = self._packet_count
        result.flow_count = len(self._records)
        for record in self._records:
            outcome = record.outcome
            if outcome.kind == "empty":
                continue
            if outcome.kind == "requests":
                for request in outcome.requests:
                    request.timestamp = record.first_timestamp
                    result.requests.append(
                        DecryptedRequest(request=request, flow=record.key)
                    )
            elif outcome.kind == "opaque":
                result.undecryptable_flows += 1
                result.opaque.append(
                    OpaqueContact(
                        host=outcome.sni,
                        first_timestamp=record.first_timestamp,
                        frame_count=self._frame_counts.get(record.key, 0),
                    )
                )
            else:  # undecryptable
                result.undecryptable_flows += 1
        return result
