"""The streaming audit session.

:class:`StreamAudit` is the bounded-memory, incremental counterpart of
:class:`repro.pipeline.engine.AuditEngine` + :class:`repro.pipeline.
diffaudit.DiffAudit`: it consumes trace events from a
:class:`~repro.stream.sources.PacketSource`, decodes packet feeds
through :class:`~repro.stream.incremental.IncrementalTraceDecoder`
(idle-timeout + byte-budget flow eviction), folds each finished trace
into per-service shard state exactly the way ``process_shard`` does —
batched key priming included, so the classifier (and the persistent
``--cache-dir`` store beneath it) warms continuously as the stream
runs — and emits rolling :class:`~repro.pipeline.engine.EngineOutput`
snapshots.

Parity: after a complete feed, :meth:`StreamAudit.result` equals the
batch audit of the same corpus byte for byte.  Every stage reuses the
batch machinery — shard-state folding mirrors ``process_shard`` line
for line, snapshots merge through :meth:`AuditEngine.merge`, and the
final result is assembled by the shared
:func:`repro.pipeline.diffaudit.assemble_result` — so the only novel
code on the result path is the incremental decoding, which is pinned
byte-identical by its own tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.datatypes.base import Classifier
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.extract import extract_from_request
from repro.datatypes.store import PersistentClassifier
from repro.destinations.blocklists import BlockListCollection
from repro.destinations.entities import EntityDatabase
from repro.destinations.party import DestinationLabeler
from repro.flows.builder import FlowBuilder
from repro.flows.dataflow import FlowTable
from repro.pipeline.corpus import ParsedTrace
from repro.pipeline.dataset import DatasetSummary
from repro.pipeline.diffaudit import DiffAuditResult, assemble_result
from repro.pipeline.engine import (
    AuditEngine,
    EngineOutput,
    ShardResult,
    labeler_for,
    prepare_classifier,
    record_run_stats,
)
from repro.obs.metrics import REGISTRY
from repro.services.generator import CorpusConfig
from repro.stream.incremental import EvictionPolicy, IncrementalTraceDecoder
from repro.stream.sources import PacketSource, PacketTrace, TraceDocument

_TRACES = REGISTRY.counter("repro_stream_traces_total")
_PACKETS = REGISTRY.counter("repro_stream_packets_total")
_SNAPSHOTS = REGISTRY.counter("repro_stream_snapshots_total")
_EVICTIONS = REGISTRY.counter("repro_stream_evictions_total")


class StreamError(ValueError):
    """Raised when a stream cannot be audited as configured."""


@dataclass
class _ServiceStreamState:
    """One service's in-flight shard — ``process_shard`` unrolled over
    an incremental trace feed."""

    service: str
    labeler: DestinationLabeler
    builder: FlowBuilder
    flows: FlowTable = field(default_factory=FlowTable)
    dataset: DatasetSummary = field(default_factory=DatasetSummary)
    contacted: set[str] = field(default_factory=set)
    raw_keys: set[str] = field(default_factory=set)
    trace_count: int = 0

    def add_trace(self, parsed: ParsedTrace) -> None:
        """Fold one finished trace in — the body of the batch shard loop."""
        self.trace_count += 1
        self.dataset.add_trace(parsed)
        self.contacted.update(parsed.contacted_hosts())
        extracted_per_request = [
            extract_from_request(request) for request in parsed.requests
        ]
        self.builder.prime(
            [item.key for items in extracted_per_request for item in items]
        )
        for request, extracted in zip(parsed.requests, extracted_per_request):
            observations = self.builder.flows_for_request(
                request,
                self.labeler,
                service=self.service,
                platform=parsed.meta.platform,
                kind=parsed.meta.kind,
                age=parsed.meta.age,
                extracted=extracted,
            )
            self.flows.extend(observations)
            self.raw_keys.update(item.key for item in extracted)
        for host in parsed.opaque_hosts:
            if host:
                self.labeler.label(host)

    def shard_result(self) -> ShardResult:
        """This shard as the batch merge consumes it — idempotent, so
        snapshots and the final result share one code path (party
        registration is a ``setdefault`` with deterministic labels)."""
        owners: dict[str, str | None] = {}
        for host in self.contacted:
            label = self.labeler.label(host)
            self.flows.register_party(self.service, host, label.party)
            owners[host] = label.owner
        return ShardResult(
            service=self.service,
            flows=self.flows,
            dataset=self.dataset,
            contacted=self.contacted,
            raw_keys=self.raw_keys,
            classified=self.builder.classified_key_set(),
            owners=owners,
            trace_count=self.trace_count,
        )


@dataclass
class StreamAudit:
    """A live, bounded-memory audit over an unbounded capture feed.

    Use :meth:`snapshots` to drive a source and receive rolling
    :class:`EngineOutput` snapshots (every ``snapshot_every`` finished
    traces), then :meth:`result` for the final
    :class:`DiffAuditResult`; or :meth:`run` to do both in one call.
    """

    config: CorpusConfig = field(default_factory=CorpusConfig)
    classifier: Classifier | None = None
    confidence_threshold: float = 0.8
    entity_db: EntityDatabase | None = None
    blocklists: BlockListCollection | None = None
    policy: EvictionPolicy = field(default_factory=EvictionPolicy)
    snapshot_every: int = 0  # finished traces between snapshots; 0 = none
    # Persistent classification store (``--cache-dir``): verdicts are
    # written through as the stream classifies, so the store is warm
    # across snapshots — and across an interrupted session.
    cache_dir: Path | str | None = None

    def __post_init__(self) -> None:
        self.classifier = prepare_classifier(self.classifier, self.cache_dir)
        if self.entity_db is None:
            from repro.destinations.entities import default_entity_db

            self.entity_db = default_entity_db()
        if self.blocklists is None:
            from repro.destinations.blocklists import default_blocklists

            self.blocklists = default_blocklists()
        # One shared in-memory cache across services, exactly like the
        # batch engine's sequential path: keys common to several
        # services classify once per stream.
        self._cache = CachingClassifier.wrap(self.classifier)
        self._services: dict[str, _ServiceStreamState] = {}
        for spec in self.config.service_specs():
            self._services[spec.key] = _ServiceStreamState(
                service=spec.key,
                labeler=labeler_for(spec, self.entity_db, self.blocklists),
                builder=FlowBuilder(
                    classifier=self._cache,
                    confidence_threshold=self.confidence_threshold,
                ),
            )
        self.trace_count = 0
        self.packet_count = 0
        self.high_water_bytes = 0
        self.evictions = 0
        # The live gauges are collect-on-scrape callbacks over whichever
        # decoder is mid-trace right now (None between traces, so the
        # gauges read zero when the session is quiescent).  Re-creating
        # a session re-registers the callbacks, so the newest session
        # owns the gauges — matching "last writer wins" for plain sets.
        self._current_decoder: IncrementalTraceDecoder | None = None
        REGISTRY.gauge_callback(
            "repro_stream_flows_live",
            lambda: self._current_decoder.live_flows()
            if self._current_decoder is not None
            else 0,
        )
        REGISTRY.gauge_callback(
            "repro_stream_buffered_bytes",
            lambda: self._current_decoder.buffered_bytes()
            if self._current_decoder is not None
            else 0,
        )
        REGISTRY.gauge_callback(
            "repro_stream_high_water_bytes", lambda: self.high_water_bytes
        )

    # -- consuming ------------------------------------------------------

    def consume(self, event: "TraceDocument | PacketTrace") -> None:
        """Feed one trace event through decode → classify → flow-build."""
        if isinstance(event, PacketTrace):
            decoder = IncrementalTraceDecoder(event.keylog, self.policy)
            self._current_decoder = decoder
            packets_before = self.packet_count
            for timestamp, data in event.packets:
                decoder.feed(timestamp, data)
                self.packet_count += 1
            decryption = decoder.finish()
            _PACKETS.inc(self.packet_count - packets_before)
            self.evictions += decoder.evictions
            _EVICTIONS.inc(decoder.evictions)
            if decoder.high_water_bytes > self.high_water_bytes:
                self.high_water_bytes = decoder.high_water_bytes
            self._current_decoder = None
            parsed = ParsedTrace(
                meta=event.meta,
                requests=[item.request for item in decryption.requests],
                opaque_hosts=[contact.host for contact in decryption.opaque],
                packet_count=decryption.packet_count,
                flow_count=decryption.flow_count,
                undecryptable_flows=decryption.undecryptable_flows,
            )
        else:
            parsed = event.parsed
        state = self._services.get(parsed.meta.service)
        if state is None:
            known = ", ".join(sorted(self._services))
            raise StreamError(
                f"trace {parsed.meta.name!r} belongs to service "
                f"{parsed.meta.service!r}, which is not part of this stream's "
                f"configuration (configured: {known})"
            )
        state.add_trace(parsed)
        self.trace_count += 1
        _TRACES.inc()

    def snapshots(self, source: PacketSource) -> Iterator[EngineOutput]:
        """Drive a source to EOF, yielding a snapshot every
        ``snapshot_every`` finished traces (none when 0)."""
        for event in source.events():
            self.consume(event)
            if self.snapshot_every and self.trace_count % self.snapshot_every == 0:
                yield self.snapshot()

    # -- results --------------------------------------------------------

    def snapshot(self) -> EngineOutput:
        """Merged engine state as of now — ``EngineOutput``-compatible.

        Snapshots merge through the batch engine's own
        :meth:`AuditEngine.merge`, in service-spec order, so the final
        snapshot *is* the batch engine output for the corpus consumed
        so far.
        """
        _SNAPSHOTS.inc()
        merged = AuditEngine.merge(
            [
                self._services[spec.key].shard_result()
                for spec in self.config.service_specs()
            ]
        )
        # Classification counters are session-wide (one shared cache),
        # not per-shard; surface them on the merged view for stats.
        # Builder label-table lookups count as hits — they are the
        # per-request resolutions that used to go through the cache.
        merged.cache_hits = self._cache.hits + sum(
            state.builder.lookup_hits for state in self._services.values()
        )
        merged.cache_misses = self._cache.misses
        if isinstance(self.classifier, PersistentClassifier):
            merged.store_hits = self.classifier.store_hits
            merged.store_misses = self.classifier.misses
        return merged

    def result(self) -> DiffAuditResult:
        """The final audit result for everything consumed so far.

        Byte-identical to the batch ``DiffAudit`` result for the same
        complete corpus — downstream analyses run through the shared
        :func:`assemble_result`.
        """
        merged = self.snapshot()
        record_run_stats(
            self.classifier,
            memory_hits=merged.cache_hits,
            store_hits=merged.store_hits,
            misses=merged.store_misses,
        )
        return assemble_result(
            self.config, merged, self.entity_db, self.blocklists
        )

    def run(self, source: PacketSource) -> DiffAuditResult:
        """Consume a source to EOF and return the final result."""
        for _ in self.snapshots(source):
            pass
        return self.result()


def snapshot_summary(output: EngineOutput) -> dict:
    """A small machine-readable digest of one snapshot (JSON-friendly)."""
    return {
        "traces": output.trace_count,
        "packets": output.dataset.total_packets,
        "tcp_flows": output.dataset.total_tcp_flows,
        "flow_observations": len(output.flows),
        "unique_raw_keys": len(output.raw_keys),
        "classified_keys": output.classified_keys,
        "contacted": {
            service: len(hosts) for service, hosts in output.contacted.items()
        },
    }
