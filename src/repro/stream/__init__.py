"""Streaming live-audit subsystem.

Everything the batch pipeline does on a complete, finite corpus, this
package does over an unbounded packet feed: :class:`StreamAudit`
consumes packets one at a time through incremental TCP reassembly,
TLS decryption and HTTP parsing (:mod:`repro.stream.incremental`),
keeps memory bounded with idle-timeout + byte-budget flow eviction,
and emits rolling :class:`repro.pipeline.engine.EngineOutput`
snapshots.  Feeds come from :class:`PacketSource` implementations
(:mod:`repro.stream.sources`): finite files, a still-growing capture
tailed in follow mode, or a synthetic live feed that drives the
traffic generator through the seeded network-impairment injector
(:mod:`repro.stream.impair`).

The contract that keeps it honest: streaming a complete capture to
EOF yields findings byte-identical to the batch ``repro audit`` path
— including under recoverable impairment (reorder/duplication), which
is reassembler-level noise — while peak memory is bounded by the
eviction budget instead of corpus size.
"""

from repro.stream.impair import (
    IMPAIRMENT_PROFILES,
    ImpairmentInjector,
    ImpairmentProfile,
    impair_pcap,
)
from repro.stream.incremental import EvictionPolicy, IncrementalTraceDecoder
from repro.stream.session import StreamAudit, StreamError, snapshot_summary
from repro.stream.sources import (
    ArtifactStreamSource,
    FollowPcapSource,
    KeylogProvider,
    LiveGeneratorSource,
    PacketSource,
    PacketTrace,
    SingleCaptureSource,
    TraceDocument,
)

__all__ = [
    "IMPAIRMENT_PROFILES",
    "ImpairmentInjector",
    "ImpairmentProfile",
    "impair_pcap",
    "EvictionPolicy",
    "IncrementalTraceDecoder",
    "StreamAudit",
    "StreamError",
    "snapshot_summary",
    "ArtifactStreamSource",
    "FollowPcapSource",
    "KeylogProvider",
    "LiveGeneratorSource",
    "PacketSource",
    "PacketTrace",
    "SingleCaptureSource",
    "TraceDocument",
]
