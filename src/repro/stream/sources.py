"""Packet sources: where a streaming audit's feed comes from.

A :class:`PacketSource` yields a sequence of trace events:

* :class:`PacketTrace` — one capture unit delivered packet by packet
  (a mobile PCAP + key log); the session decodes it incrementally;
* :class:`TraceDocument` — one capture unit that arrives whole (a
  web/desktop HAR), parsed exactly as the batch replay path parses it.

Three implementations cover the tentpole workloads:

* :class:`ArtifactStreamSource` — a finite on-disk corpus, streamed
  to EOF through the existing mmap :class:`~repro.net.pcap.PcapReader`
  (and :class:`SingleCaptureSource` for one bare ``.pcap``);
* :class:`FollowPcapSource` — tails a capture file that is still
  being written (``repro stream --follow``, the live-monitoring
  workload), ending after the file stays quiet for a configurable
  wall-clock interval;
* :class:`LiveGeneratorSource` — drives the traffic generator through
  the seeded impairment injector, producing an endless-style feed
  with no artifacts on disk at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol

from repro.capture.base import TraceMeta
from repro.model import Platform
from repro.net.pcap import PcapError, PcapReader, parse_global_header
from repro.net.tls import KeyLog
from repro.pipeline.corpus import CorpusProcessor, ParsedTrace
from repro.pipeline.replay import (
    ReplayCorpus,
    ReplayError,
    TraceUnit,
    load_parsed_trace,
    meta_from_name,
)
from repro.services.generator import CorpusConfig

Packet = tuple[float, "bytes | memoryview"]


@dataclass
class TraceDocument:
    """A trace unit that arrives whole (web/desktop HAR)."""

    parsed: ParsedTrace


@dataclass
class PacketTrace:
    """A trace unit delivered as an incremental packet feed."""

    meta: TraceMeta
    packets: Iterable[Packet]
    keylog: "KeyLog | KeylogProvider" = field(default_factory=KeyLog)


class PacketSource(Protocol):
    """Anything that can feed trace events to a streaming session."""

    def events(self) -> Iterator["TraceDocument | PacketTrace"]:  # pragma: no cover
        ...


@dataclass
class KeylogProvider:
    """Key-log lookup that can re-read a still-growing file.

    In follow mode the capture tool appends secrets while the stream
    is being read; a lookup miss re-reads the file when its mtime
    moved, so secrets logged before their flow's data records arrive
    (the PCAPdroid write order) are always found.  A missing or
    unreadable file degrades to an empty log — every TLS flow then
    surfaces opaque, exactly like a fully pinned capture.
    """

    path: Path | None
    follow: bool = False
    _keylog: KeyLog | None = field(default=None, repr=False)
    _mtime: float = field(default=-1.0, repr=False)

    def _load(self) -> None:
        if self.path is None:
            self._keylog = KeyLog()
            return
        try:
            mtime = Path(self.path).stat().st_mtime
            if self._keylog is not None and mtime == self._mtime:
                return
            self._keylog = KeyLog.read(self.path)
            self._mtime = mtime
        except (OSError, ValueError):
            if self._keylog is None:
                self._keylog = KeyLog()

    def lookup(self, client_random: bytes):
        if self._keylog is None:
            self._load()
        session = self._keylog.lookup(client_random)
        if session is None and self.follow:
            self._load()
            session = self._keylog.lookup(client_random)
        return session


def _mmap_packets(path: Path) -> Iterator[Packet]:
    """Stream one on-disk capture zero-copy (mmap-backed views)."""
    with PcapReader.open(path) as reader:
        for record in reader.iter_packets():
            yield record.timestamp, record.data


@dataclass
class ArtifactStreamSource:
    """Stream a captured artifacts directory to EOF.

    Mirrors the replay engine's unit selection: units come in corpus
    (manifest/generation) order, restricted to the configured
    services, and a configured service with no artifacts on disk is
    an error — a silently empty stream would read as a compliant
    service.
    """

    corpus: ReplayCorpus
    services: tuple[str, ...]

    def __post_init__(self) -> None:
        wanted = set(self.services)
        available = set(self.corpus.services())
        missing = sorted(wanted - available)
        if missing:
            raise ReplayError(
                f"no artifacts for configured service(s) {', '.join(missing)} "
                f"in {self.corpus.directory} "
                f"(found: {', '.join(self.corpus.services())})"
            )

    def events(self) -> Iterator["TraceDocument | PacketTrace"]:
        wanted = set(self.services)
        for unit in self.corpus.units:
            if unit.meta.service not in wanted:
                continue
            yield unit_event(unit)


def unit_event(unit: TraceUnit) -> "TraceDocument | PacketTrace":
    """One replay unit as a stream event (HAR whole, PCAP packet-wise)."""
    if unit.har is not None:
        return TraceDocument(parsed=load_parsed_trace(unit))
    return PacketTrace(
        meta=unit.meta,
        packets=_mmap_packets(unit.pcap),
        keylog=KeylogProvider(path=unit.keylog),
    )


@dataclass
class SingleCaptureSource:
    """One bare ``.pcap`` (+ optional ``.keylog``), streamed to EOF.

    Trace identity comes from the file stem
    (``{service}-{platform}-{kind}-{age}``), the same fallback the
    manifest-less replay scanner uses.
    """

    pcap: Path
    keylog: Path | None = None

    def meta(self) -> TraceMeta:
        return meta_from_name(Path(self.pcap).stem)

    def events(self) -> Iterator[PacketTrace]:
        yield PacketTrace(
            meta=self.meta(),
            packets=_mmap_packets(Path(self.pcap)),
            keylog=KeylogProvider(path=self.keylog),
        )


@dataclass
class FollowPcapSource:
    """Tail a capture file that is still being written.

    Complete records are yielded as soon as they land in the file;
    partial trailing bytes wait for the writer.  The stream ends when
    the file has not grown for ``stop_after_idle`` wall-clock seconds
    — the capture is considered closed.  The sibling key log is read
    through a refreshing :class:`KeylogProvider`, so secrets appended
    during the capture are honored as long as they are written before
    their flow's data records (PCAPdroid's write order).
    """

    pcap: Path
    keylog: Path | None = None
    poll_interval: float = 0.2
    stop_after_idle: float = 5.0
    # Test/interop hook: called once per idle poll (e.g. to stop a
    # stuck follow from a signal handler by raising).
    on_idle: Callable[[], None] | None = None

    def meta(self) -> TraceMeta:
        return meta_from_name(Path(self.pcap).stem)

    def events(self) -> Iterator[PacketTrace]:
        yield PacketTrace(
            meta=self.meta(),
            packets=self._tail_packets(),
            keylog=KeylogProvider(path=self.keylog, follow=True),
        )

    def _tail_packets(self) -> Iterator[Packet]:
        buffer = bytearray()
        wire_format = None
        deadline = time.monotonic() + self.stop_after_idle
        # Wait for the file to exist at all — follow mode may be
        # started before the capture tool creates it.
        handle = None
        try:
            while handle is None:
                try:
                    handle = open(self.pcap, "rb")
                except OSError:
                    if time.monotonic() > deadline:
                        raise PcapError(
                            f"follow: {self.pcap} never appeared"
                        ) from None
                    time.sleep(self.poll_interval)
            while True:
                chunk = handle.read(1 << 16)
                if chunk:
                    deadline = time.monotonic() + self.stop_after_idle
                    buffer += chunk
                    if wire_format is None:
                        if len(buffer) < 24:
                            continue
                        wire_format = parse_global_header(buffer)
                        del buffer[: wire_format.header_size]
                    record = wire_format.record_struct
                    while len(buffer) >= record.size:
                        seconds, fraction, caplen, _orig = record.unpack(
                            bytes(buffer[: record.size])
                        )
                        if len(buffer) < record.size + caplen:
                            break  # partial record: wait for the writer
                        yield (
                            seconds + fraction / wire_format.timestamp_divisor,
                            bytes(buffer[record.size : record.size + caplen]),
                        )
                        del buffer[: record.size + caplen]
                    continue
                if time.monotonic() > deadline:
                    return  # writer went quiet: the capture is closed
                if self.on_idle is not None:
                    self.on_idle()
                time.sleep(self.poll_interval)
        finally:
            if handle is not None:
                handle.close()


@dataclass
class LiveGeneratorSource:
    """Synthetic live feed: the traffic generator behind an impaired link.

    Mobile traces are captured, pushed through the seeded impairment
    injector (via :meth:`CorpusProcessor.capture_mobile`, which both
    this source and the batch path share), serialized to wire bytes
    and re-read through a :class:`PcapReader` — so the streamed
    packets are bit-identical to what ``repro generate --impair``
    would have archived.  Web/desktop traces arrive whole, exactly as
    the batch HAR round trip parses them.
    """

    config: CorpusConfig

    def events(self) -> Iterator["TraceDocument | PacketTrace"]:
        processor = CorpusProcessor(config=self.config)
        for trace in processor.generator.generate_corpus():
            if trace.platform is Platform.MOBILE:
                meta, pcap, keylog_text = processor.capture_mobile(trace)
                yield PacketTrace(
                    meta=meta,
                    packets=self._wire_packets(pcap),
                    keylog=KeyLog.from_text(keylog_text),
                )
            else:
                yield TraceDocument(parsed=processor.process_web(trace))

    @staticmethod
    def _wire_packets(pcap) -> Iterator[Packet]:
        # Round-trip through the serialized form: record timestamps
        # are microsecond-rounded on the wire, and the batch path
        # decodes the serialized bytes — parity requires feeding the
        # same rounded values.
        reader = PcapReader(pcap.to_bytes())
        for record in reader.iter_packets():
            yield record.timestamp, record.data
