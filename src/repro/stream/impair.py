"""Seeded network-impairment injector (drop / reorder / duplicate /
jitter / IP-fragment).

The related chaos-testing repos treat messy network conditions as
first-class (ovs-container-lab injects loss, reordering and
duplication at the switch; cross-dc-simulator shapes latency per
link).  This module brings that to the simulated capture path: an
:class:`ImpairmentInjector` deterministically perturbs a packet
sequence under a named :class:`ImpairmentProfile`, so adversarial
corpora are reproducible from ``(profile, seed)`` alone.

Impairments split into two classes:

* **recoverable** — reordering and duplication.  Displaced packets
  keep their capture timestamps and duplicated packets are bit-exact
  copies, so TCP reassembly (first-copy-wins, seq-ordered) produces
  byte-identical flows; an audit of a reorder-impaired capture equals
  the audit of the clean one.
* **lossy** — drop, jitter and IP fragmentation.  Dropped packets
  leave holes, jitter moves capture clocks, and fragmented packets
  are rejected by the TCP-only decoder (the Wireshark stand-in does
  not reassemble IP fragments), so these change what the audit can
  recover — which is the point: they exercise the incomplete-flow
  accounting.

Both the streaming and the batch path consume the impaired sequence
identically, so stream-vs-batch parity holds under *every* profile;
only the recoverable ones additionally preserve parity against the
clean capture.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.net.packet import ETHERTYPE_IPV4, _U16, internet_checksum
from repro.net.pcap import PcapFile, PcapPacket

Packet = tuple[float, bytes]


@dataclass(frozen=True)
class ImpairmentProfile:
    """One named set of impairment intensities.

    Probabilities are per-packet; ``reorder_depth`` is how many
    subsequent packets a displaced one is held behind (the injector
    draws 1..depth).  ``jitter_s`` is the half-width of a uniform
    timestamp perturbation in seconds.
    """

    name: str
    description: str = ""
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_depth: int = 4
    jitter_s: float = 0.0
    fragment: float = 0.0

    @property
    def recoverable(self) -> bool:
        """True when reassembly fully undoes this profile's damage."""
        return self.drop == 0.0 and self.jitter_s == 0.0 and self.fragment == 0.0


IMPAIRMENT_PROFILES: dict[str, ImpairmentProfile] = {
    "clean": ImpairmentProfile("clean", description="pass-through (no impairment)"),
    "reorder": ImpairmentProfile(
        "reorder",
        reorder=0.25,
        reorder_depth=4,
        description="25% of packets displaced up to 4 positions (recoverable)",
    ),
    "duplicate": ImpairmentProfile(
        "duplicate",
        duplicate=0.2,
        description="20% of packets duplicated bit-exact (recoverable)",
    ),
    "reorder-dup": ImpairmentProfile(
        "reorder-dup",
        reorder=0.2,
        reorder_depth=4,
        duplicate=0.15,
        description="reordering plus duplication combined (recoverable)",
    ),
    "lossy": ImpairmentProfile(
        "lossy",
        drop=0.03,
        reorder=0.1,
        reorder_depth=3,
        description="3% loss with mild reordering (holes expected)",
    ),
    "jittery": ImpairmentProfile(
        "jittery",
        jitter_s=0.02,
        description="±20 ms capture-clock jitter (timestamps move)",
    ),
    "fragmented": ImpairmentProfile(
        "fragmented",
        fragment=0.1,
        description="10% of packets split into IP fragments (decoder-lossy)",
    ),
    "chaos": ImpairmentProfile(
        "chaos",
        drop=0.02,
        duplicate=0.1,
        reorder=0.2,
        reorder_depth=6,
        jitter_s=0.01,
        fragment=0.05,
        description="everything at once — the worst plausible last mile",
    ),
}


def impairment_profile(name: str) -> ImpairmentProfile:
    """Look up a named profile; raise with the known names otherwise."""
    try:
        return IMPAIRMENT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(IMPAIRMENT_PROFILES))
        raise ValueError(
            f"unknown impairment profile {name!r} (known: {known})"
        ) from None


def trace_impair_seed(seed: int, trace_name: str) -> int:
    """The injector seed for one trace unit.

    Derived from the corpus seed and the trace identity, so the live
    streaming source and the batch ``generate --impair`` path perturb
    each trace identically — which is what lets an in-memory impaired
    audit stay byte-identical to a replay of its archived artifacts.
    """
    digest = hashlib.sha256(f"impair|{seed}|{trace_name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _fragment_ipv4(data: bytes, rng: random.Random) -> list[bytes] | None:
    """Split one Ethernet/IPv4 packet into two valid IP fragments.

    Returns None when the packet cannot be fragmented (not IPv4, no
    room to split).  Fragment offsets are 8-byte aligned and both
    headers carry recomputed checksums, so the fragments are
    wire-valid — the decoder rejects them *because they are
    fragments*, not because they are malformed.
    """
    if len(data) < 14 + 20:
        return None
    (ethertype,) = _U16.unpack(data[12:14])
    if ethertype != ETHERTYPE_IPV4:
        return None
    eth = data[:14]
    ip = data[14:]
    version_ihl = ip[0]
    if version_ihl >> 4 != 4:
        return None
    ihl = (version_ihl & 0x0F) * 4
    (total_length,) = _U16.unpack(ip[2:4])
    payload = bytes(ip[ihl:total_length])
    if len(payload) < 16:
        return None  # too small to split into two non-empty fragments
    # Split point: an 8-byte-aligned cut strictly inside the payload.
    blocks = len(payload) // 8
    cut = 8 * rng.randint(1, blocks - 1)

    def rebuild(chunk: bytes, flags_fragment: int) -> bytes:
        header = bytearray(ip[:ihl])
        header[2:4] = _U16.pack(ihl + len(chunk))
        header[6:8] = _U16.pack(flags_fragment)
        header[10:12] = b"\x00\x00"
        header[10:12] = _U16.pack(internet_checksum(bytes(header)))
        return bytes(eth) + bytes(header) + chunk

    first = rebuild(payload[:cut], 0x2000)  # MF set, offset 0
    second = rebuild(payload[cut:], cut // 8)  # offset in 8-byte blocks
    return [first, second]


class ImpairmentInjector:
    """Deterministically impair a packet sequence.

    One injector instance covers one capture: the RNG is seeded once
    and consumed in strict input order, so the output sequence is a
    pure function of ``(profile, seed, input packets)``.
    """

    def __init__(self, profile: ImpairmentProfile, seed: int) -> None:
        self.profile = profile
        self._rng = random.Random(seed)

    def apply(self, packets: Iterable[Packet]) -> Iterator[Packet]:
        """Yield the impaired packet sequence."""
        profile = self.profile
        rng = self._rng
        # Packets displaced by the reorder roll: [countdown, ts, data],
        # released (in holdback order) as later packets pass them.
        held: list[list] = []

        def release_after_emit() -> Iterator[Packet]:
            ready: list[list] = []
            remaining: list[list] = []
            for entry in held:
                entry[0] -= 1
                (ready if entry[0] <= 0 else remaining).append(entry)
            held[:] = remaining
            for _, ts, data in ready:
                yield ts, data

        def emit(ts: float, data: bytes) -> Iterator[Packet]:
            if profile.reorder and rng.random() < profile.reorder:
                held.append([rng.randint(1, profile.reorder_depth), ts, data])
                return
            yield ts, data
            yield from release_after_emit()

        for timestamp, data in packets:
            data = bytes(data)
            if profile.drop and rng.random() < profile.drop:
                continue
            if profile.jitter_s:
                timestamp = max(
                    0.0,
                    timestamp + rng.uniform(-profile.jitter_s, profile.jitter_s),
                )
            copies = [(timestamp, data)]
            if profile.fragment and rng.random() < profile.fragment:
                fragments = _fragment_ipv4(data, rng)
                if fragments is not None:
                    copies = [(timestamp, fragment) for fragment in fragments]
            if profile.duplicate and rng.random() < profile.duplicate:
                copies = copies + copies  # bit-exact retransmit
            for ts, chunk in copies:
                yield from emit(ts, chunk)
        # End of input: flush everything still held back, in order.
        for _, ts, data in held:
            yield ts, data


def impair_pcap(pcap: PcapFile, profile: ImpairmentProfile, seed: int) -> PcapFile:
    """Apply a profile to an in-memory capture, preserving metadata.

    The workhorse behind ``repro generate --impair`` and the live
    streaming source: both derive the seed with
    :func:`trace_impair_seed`, so they produce identical impaired
    captures for the same trace.
    """
    if profile.name == "clean":
        return pcap
    injector = ImpairmentInjector(profile, seed)
    out = PcapFile(linktype=pcap.linktype, snaplen=pcap.snaplen)
    for timestamp, data in injector.apply(
        (packet.timestamp, packet.data) for packet in pcap.packets
    ):
        out.append(PcapPacket(timestamp=timestamp, data=data))
    return out
