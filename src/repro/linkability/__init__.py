"""Data linkability analysis (paper §4.2).

Linkable data: at least one *identifier* and at least one *personal
information* data type sent to the same third party, enabling tracking
and profiling (after Powar & Beresford's linkage-risk SoK).

* :mod:`repro.linkability.analysis` — per-service/per-column linkable
  third-party counts (Figure 3), linkable set sizes (Figure 4), the
  most common linkable set, and the destination census (§4.2 totals);
* :mod:`repro.linkability.alluvial` — the Figure 5 aggregation: top
  third-party ATS organizations receiving linkable data.
"""

from repro.linkability.analysis import (
    DestinationCensus,
    LinkabilityResult,
    analyze_linkability,
    destination_census,
    most_common_linkable_set,
)
from repro.linkability.alluvial import AlluvialEdge, alluvial_edges, top_ats_organizations

__all__ = [
    "DestinationCensus",
    "LinkabilityResult",
    "analyze_linkability",
    "destination_census",
    "most_common_linkable_set",
    "AlluvialEdge",
    "alluvial_edges",
    "top_ats_organizations",
]
