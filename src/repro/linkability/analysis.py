"""Linkable-data analysis over a flow table (Figures 3 & 4, §4.2)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.destinations.party import PartyLabel
from repro.flows.dataflow import FlowTable
from repro.model import ALL_COLUMNS, TraceColumn
from repro.ontology import ONTOLOGY
from repro.ontology.nodes import Level3


def is_linkable(types: set[Level3]) -> bool:
    """≥1 identifier and ≥1 personal-information type (paper §4.2)."""
    has_identifier = any(ONTOLOGY.is_identifier(t) for t in types)
    has_personal_information = any(not ONTOLOGY.is_identifier(t) for t in types)
    return has_identifier and has_personal_information


@dataclass
class LinkabilityResult:
    """Linkability numbers for one (service, column)."""

    service: str
    column: TraceColumn
    linkable_third_parties: int  # Figure 3 bar
    largest_set_size: int  # Figure 4 bar
    largest_set: frozenset[Level3] = frozenset()
    largest_set_fqdn: str = ""
    linkable_fqdns: tuple[str, ...] = ()


def analyze_linkability(
    flows: FlowTable, service: str, column: TraceColumn
) -> LinkabilityResult:
    """Figure 3/4 numbers for one service and trace category."""
    type_sets = flows.third_party_type_sets(service, column)
    linkable = {
        fqdn: types for fqdn, types in type_sets.items() if is_linkable(types)
    }
    largest_fqdn = ""
    largest: set[Level3] = set()
    for fqdn, types in sorted(linkable.items()):
        if len(types) > len(largest):
            largest, largest_fqdn = types, fqdn
    return LinkabilityResult(
        service=service,
        column=column,
        linkable_third_parties=len(linkable),
        largest_set_size=len(largest),
        largest_set=frozenset(largest),
        largest_set_fqdn=largest_fqdn,
        linkable_fqdns=tuple(sorted(linkable)),
    )


def linkability_matrix(
    flows: FlowTable, services: list[str] | None = None
) -> dict[tuple[str, TraceColumn], LinkabilityResult]:
    """The full Figure 3/4 matrix."""
    services = services or flows.services()
    return {
        (service, column): analyze_linkability(flows, service, column)
        for service in services
        for column in ALL_COLUMNS
    }


def most_common_linkable_set(
    flows: FlowTable, services: list[str] | None = None
) -> tuple[frozenset[Level3], int]:
    """The most frequent linkable type set across the dataset (§4.2).

    The paper reports a 5-type set (network connection information,
    language, service information, app or service usage, device
    information).
    """
    counter: Counter[frozenset[Level3]] = Counter()
    services = services or flows.services()
    for service in services:
        for column in ALL_COLUMNS:
            for types in flows.third_party_type_sets(service, column).values():
                if is_linkable(types):
                    counter[frozenset(types)] += 1
    if not counter:
        return frozenset(), 0
    winner, count = counter.most_common(1)[0]
    return winner, count


@dataclass
class DestinationCensus:
    """§4.2 destination totals across the whole dataset.

    Party labels are service-relative, so the same domain may be a
    first party for one service and third party for another — counts
    are unions of per-service labels (which is why the paper's four
    categories sum to slightly more than its unique-domain total).
    """

    first_party: int = 0
    first_party_ats: int = 0
    third_party: int = 0
    third_party_ats: int = 0
    organizations: int = 0
    unknown_owner_domains: int = 0
    per_label_fqdns: dict[PartyLabel, set] = field(default_factory=dict)


def destination_census(
    flows: FlowTable,
    contacted: dict[str, set[str]],
    owner_of,
) -> DestinationCensus:
    """Count destinations per party class and resolve owners.

    ``contacted`` maps service → every FQDN contacted (including
    opaque/undecryptable flows); ``owner_of(service, fqdn)`` resolves
    organization names (None when unknown).
    """
    census = DestinationCensus()
    per_label: dict[PartyLabel, set[str]] = {label: set() for label in PartyLabel}
    owners: set[str] = set()
    unknown: set[str] = set()
    for service, fqdns in contacted.items():
        for fqdn in fqdns:
            party = flows.party_of(service, fqdn)
            if party is not None:
                per_label[party].add(fqdn)
            owner = owner_of(service, fqdn)
            if owner:
                owners.add(owner)
            else:
                unknown.add(fqdn)
    census.first_party = len(per_label[PartyLabel.FIRST_PARTY])
    census.first_party_ats = len(per_label[PartyLabel.FIRST_PARTY_ATS])
    census.third_party = len(per_label[PartyLabel.THIRD_PARTY])
    census.third_party_ats = len(per_label[PartyLabel.THIRD_PARTY_ATS])
    census.organizations = len(owners)
    census.unknown_owner_domains = len(unknown)
    census.per_label_fqdns = per_label
    return census
