"""Figure 5: top third-party ATS organizations sent linkable data.

The paper's alluvial diagram maps trace category → service → owning
organization for the top-10 most contacted third-party ATS domains
that received linkable data.  We compute the same edges: for each
(service, column), the linkable third-party ATS destinations ranked by
contact frequency, rolled up to their organizations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.flows.dataflow import FlowTable
from repro.linkability.analysis import is_linkable
from repro.model import ALL_COLUMNS, TraceColumn


@dataclass(frozen=True)
class AlluvialEdge:
    """One ribbon of the alluvial diagram."""

    column: TraceColumn
    service: str
    organization: str
    weight: int  # linkable flow contact frequency


def alluvial_edges(
    flows: FlowTable,
    owner_of,
    top_n: int = 10,
    services: list[str] | None = None,
) -> list[AlluvialEdge]:
    """The Figure 5 edge list.

    ``owner_of(service, fqdn)`` resolves organizations; unknown owners
    are grouped under ``"(unknown)"`` as the paper could not resolve
    every domain.
    """
    edges: list[AlluvialEdge] = []
    services = services or flows.services()
    wanted = set(services)
    # Group third-party-ATS observations by (service, column) in one
    # pass; each cell below then scans only its own group instead of
    # every observation once per |services × columns| cell.  Group
    # order preserves observation order, so Counter insertion order —
    # the most_common tie-break — is unchanged.
    grouped: dict[tuple, list] = {}
    for observation in flows.observations():
        if observation.service not in wanted:
            continue
        if not observation.party.is_ats or not observation.party.is_third_party:
            continue
        grouped.setdefault(
            (observation.service, observation.column), []
        ).append(observation)
    for service in services:
        for column in ALL_COLUMNS:
            type_sets = flows.third_party_type_sets(service, column)
            linkable = {
                fqdn for fqdn, types in type_sets.items() if is_linkable(types)
            }
            frequency: Counter[str] = Counter()
            for observation in grouped.get((service, column), ()):
                if observation.fqdn in linkable:
                    frequency[observation.fqdn] += 1
            for fqdn, weight in frequency.most_common(top_n):
                organization = owner_of(service, fqdn) or "(unknown)"
                edges.append(
                    AlluvialEdge(
                        column=column,
                        service=service,
                        organization=organization,
                        weight=weight,
                    )
                )
    return edges


def top_ats_organizations(edges: list[AlluvialEdge]) -> list[tuple[str, int]]:
    """Organizations ranked by total linkable-contact weight."""
    totals: Counter[str] = Counter()
    for edge in edges:
        totals[edge.organization] += edge.weight
    return totals.most_common()
