"""Memoizing cache layer over any :class:`Classifier`.

The paper classified its 3,968 unique raw data types once, not its
440K packets (§3.2.2).  :class:`CachingClassifier` makes that economy
a property of the classifier stack instead of every call site: wrap
any classifier and repeated keys are classified exactly once per run,
with hit/miss counters for instrumentation.

Classification here is a pure function of the input text (the GPT-4
substitute derives its randomness from a per-key hash), so memoization
never changes results — only how often the expensive path runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes.base import Classification, Classifier, batch_classify
from repro.obs.metrics import REGISTRY

_CACHE_HITS = REGISTRY.counter("repro_classifier_cache_hits_total")
_CACHE_MISSES = REGISTRY.counter("repro_classifier_cache_misses_total")


@dataclass
class CachingClassifier:
    """Wraps a classifier, classifying each unique text at most once."""

    inner: Classifier
    name: str = field(init=False)
    hits: int = 0
    misses: int = 0
    _cache: dict[str, Classification] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.name = f"cached-{self.inner.name}"

    @classmethod
    def wrap(cls, classifier: Classifier) -> "CachingClassifier":
        """Wrap a classifier, reusing an existing cache layer as-is."""
        if isinstance(classifier, cls):
            return classifier
        return cls(classifier)

    def classify(self, text: str) -> Classification:
        cached = self._cache.get(text)
        if cached is not None:
            self.hits += 1
            _CACHE_HITS.inc()
            return cached
        self.misses += 1
        _CACHE_MISSES.inc()
        verdict = self.inner.classify(text)
        self._cache[text] = verdict
        return verdict

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        """Batched lookup: misses dedupe into ONE inner batched call.

        The single inner call is what lets a persistent layer below
        (:class:`repro.datatypes.store.PersistentClassifier`) answer a
        whole miss set with one disk round-trip instead of one per key.
        A key repeated within the batch counts as a hit, exactly as it
        would have under sequential :meth:`classify` calls.
        """
        missing: list[str] = []
        pending: set[str] = set()
        hits_before = self.hits
        for text in texts:
            if text in self._cache or text in pending:
                self.hits += 1
            else:
                pending.add(text)
                missing.append(text)
                self.misses += 1
        _CACHE_HITS.inc(self.hits - hits_before)
        _CACHE_MISSES.inc(len(missing))
        if missing:
            for verdict in batch_classify(self.inner, missing):
                self._cache[verdict.text] = verdict
        return [self._cache[text] for text in texts]

    # -- instrumentation ------------------------------------------------

    def __len__(self) -> int:
        return len(self._cache)

    def cached_keys(self) -> set[str]:
        return set(self._cache)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
