"""The GPT-4 Chat Completions classifier substitute (paper §3.2.2, App. C).

The paper sends raw data types to GPT-4 with a few-shot prompt built
from the ontology (level-3 labels + level-4 examples) and asks for
``<input> // <category> // <confidence> // <explanation>`` lines,
sweeping temperature over {0, 0.25, 0.5, 0.75, 1.0}.

Offline substitute: a knowledge-based classifier over the ontology
lexicon (token splitting, abbreviation expansion, phrase evidence —
exactly the reasoning the prompt asks GPT-4 to perform), wrapped in an
LLM-shaped behaviour model:

* **temperature noise** — with probability growing in the temperature,
  the model answers its second-best (or a random) label instead of its
  best, reproducing the accuracy-vs-temperature decay of Table 3;
* **confidence** — a function of lexical evidence margin, so opaque
  keys (``bffp``) get low-confidence guesses that the paper's
  confidence thresholds are designed to filter;
* **hallucination guard** — above temperature 1 the real model
  hallucinated; we reproduce that by refusing such configurations.

The substitution preserves what downstream code depends on: the API
shape, the knobs, the correlation between confidence and correctness,
and the ordering of configurations in Table 3.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from repro.datatypes.base import Classification
from repro.ontology import ONTOLOGY, Lexicon, build_default_lexicon
from repro.ontology.nodes import Level3

TEMPERATURES: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

GPT4_PROMPT = (
    "You are a text classifier for network traffic payload data. I am going "
    "to give you some categories and examples for each category. Then I will "
    "give you text sequences that I want you to categorize using the provided "
    "categories. The input texts were collected from network traffic "
    "payloads. Try to determine the meaning of the input texts and use the "
    "similarity of the categories and input texts to do the classification. "
    "For text with acronyms and abbreviations, use the meaning of the "
    "acronyms and abbreviations to do the classification. Provide an "
    "explanation for each classification in 15 words or less. Report a score "
    "of confidence on a scale of 0 to 1 for each categorization. Format your "
    "response exactly like this for each input text: <input text> // "
    "<category> // <score> // <explanation>."
)

# Behaviour calibration (tuned against Table 3's shape; see
# EXPERIMENTS.md for measured-vs-paper numbers).
#
# Noise has two parts.  *Correlated* noise models inputs that mislead
# the model the same way at every temperature (hard keys are hard for
# every run — this is why the paper's majority vote only improves
# accuracy a little, 0.75 vs 0.72).  *Per-model* noise is the sampling
# nondeterminism that grows with temperature and that majority voting
# does cancel.
_CORRELATED_NOISE = 0.10  # shared across all temperature models
_BASE_NOISE = 0.035  # per-model flip probability at temperature 0
_NOISE_SLOPE = 0.095  # extra per-model flip probability per unit temp
_RANDOM_FLIP_SHARE = 0.35  # flips that go fully random vs second-best

# SDK-style decoration tokens an LLM reads past ("ga_email" means
# email); stripped before scoring when informative tokens remain.
_DECORATORS = frozenset(
    {
        "ga",
        "fb",
        "amp",
        "mp",
        "bz",
        "af",
        "adj",
        "sp",
        "ttq",
        "yt",
        "sdk",
        "client",
        "ctx",
        "meta",
        "evt",
        "usr",
        "dev",
        "req",
    }
)


def _prompt_messages(labels: list[str]) -> list[dict]:
    """The Chat Completions message list the paper's API calls used."""
    category_lines = []
    for label in labels:
        examples = ", ".join(ONTOLOGY.examples_for(label)[:6])
        category_lines.append(f"- {label}: {examples}")
    return [
        {"role": "system", "content": GPT4_PROMPT},
        {"role": "user", "content": "Categories and examples:\n" + "\n".join(category_lines)},
    ]


@dataclass
class Gpt4Classifier:
    """One temperature model of the simulated GPT-4 classifier."""

    temperature: float = 0.0
    seed: int = 11
    lexicon: Lexicon = field(default_factory=lambda: build_default_lexicon(ONTOLOGY))
    name: str = field(init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.temperature <= 1.0:
            # The paper observed hallucinatory output above 1.0 and
            # capped the sweep at 1.0; we enforce the cap.
            raise ValueError("temperature must be within [0, 1]")
        self.name = f"gpt4-t{self.temperature:g}"
        self._labels = ONTOLOGY.label_names()

    # -- deterministic per-key randomness ------------------------------

    def _rng(self, text: str) -> random.Random:
        digest = hashlib.sha256(
            f"{self.seed}|{self.temperature}|{text}".encode()
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _shared_rng(self, text: str) -> random.Random:
        """Per-key randomness shared by every temperature model."""
        digest = hashlib.sha256(f"shared|{text}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    # -- the "model" ----------------------------------------------------

    def prompt_messages(self) -> list[dict]:
        """The messages this model would send (for inspection/tests)."""
        return _prompt_messages(self._labels)

    def _score(self, text: str) -> dict:
        """Lexicon scores after reading past SDK decoration prefixes."""
        from repro.ontology.lexicon import split_key

        tokens = split_key(text)
        stripped = [t for t in tokens if t not in _DECORATORS]
        if stripped and len(stripped) < len(tokens):
            scores = self.lexicon.score("_".join(stripped))
            if scores:
                return scores
        return self.lexicon.score(text)

    def _evidence(self, text: str) -> tuple:
        """Ranked lexicon scores and the correlated-flip outcome.

        Both are pure functions of the key given the lexicon: the
        ranked scores come straight from it, and the correlated draws
        come from a per-key RNG every temperature model seeds
        identically.  A sweep shares one lexicon across its five
        models, so both computations are memoized on the lexicon's
        derived cache — computed for the first model, reused by the
        other four — with byte-identical results.
        """
        cached = self.lexicon.derived_cache.get(text)
        if cached is not None:
            return cached
        scores = self._score(text)
        ranked = sorted(scores.items(), key=lambda item: -item[1])
        correlated: tuple[bool, Level3 | None] = (False, None)
        if ranked:
            # Correlated misreads: the same wrong answer at every
            # temperature (majority voting cannot fix these).
            shared = self._shared_rng(text)
            if shared.random() < _CORRELATED_NOISE:
                if len(ranked) > 1 and shared.random() > _RANDOM_FLIP_SHARE:
                    correlated = (True, ranked[1][0])
                else:
                    correlated = (True, Level3(shared.choice(self._labels)))
        cached = (ranked, correlated)
        self.lexicon.derived_cache[text] = cached
        return cached

    def classify(self, text: str) -> Classification:
        ranked, (correlated_flip, correlated_label) = self._evidence(text)
        rng = self._rng(text)

        if not ranked:
            # No lexical evidence at all: the model guesses with the
            # low confidence the paper's thresholds are meant to drop.
            label = Level3(rng.choice(self._labels))
            confidence = round(rng.uniform(0.25, 0.62), 2)
            return Classification(
                text=text,
                label=label,
                confidence=confidence,
                explanation="unclear token; low-confidence guess",
            )

        best_label, best_score = ranked[0]
        second_score = ranked[1][1] if len(ranked) > 1 else 0.0
        margin = (best_score - second_score) / (best_score + 1e-9)
        evidence = min(1.0, best_score / 1.5)

        label = best_label
        flipped = False
        if correlated_flip:
            flipped = True
            label = correlated_label
        # Per-model sampling noise, growing with temperature.
        elif rng.random() < _BASE_NOISE + _NOISE_SLOPE * self.temperature:
            flipped = True
            if len(ranked) > 1 and rng.random() > _RANDOM_FLIP_SHARE:
                label = ranked[1][0]
            else:
                label = Level3(rng.choice(self._labels))

        # Confidence tracks evidence strength and margin; flipped
        # answers hedge only slightly (the model stays plausible even
        # when wrong — that is why the paper's high-confidence bins do
        # not reach perfect accuracy).
        confidence = 0.60 + 0.42 * evidence + 0.07 * margin
        confidence += rng.uniform(-0.05, 0.05) * (1 + self.temperature)
        if flipped:
            confidence *= rng.uniform(0.88, 1.0)
        confidence = round(max(0.05, min(0.99, confidence)), 2)

        explanation = (
            f"matched tokens suggest {label.value.lower()}"
            if not flipped
            else f"interpreted as {label.value.lower()}"
        )
        return Classification(
            text=text, label=label, confidence=confidence, explanation=explanation
        )

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]


def temperature_sweep(seed: int = 11, lexicon: Lexicon | None = None) -> list[Gpt4Classifier]:
    """The five temperature models of the paper's sweep."""
    lexicon = lexicon or build_default_lexicon(ONTOLOGY)
    return [
        Gpt4Classifier(temperature=t, seed=seed + index, lexicon=lexicon)
        for index, t in enumerate(TEMPERATURES)
    ]
