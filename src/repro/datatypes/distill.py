"""Distill the LLM classifier into a small local model (paper §3.2.2).

"Additionally, our method produces a set of labeled network traffic
payload data that can be used to train smaller models that can be run
locally instead."  This module implements that pipeline: take the
majority-vote model's confident labels as (noisy) training data, fit a
multinomial naive-Bayes classifier over the expanded-token features,
and evaluate the student against the teacher and against ground truth.

The student is tiny (a few thousand floats), has no API cost, and —
because its features are the same token expansion the teacher reasons
over — retains most of the teacher's accuracy on keys it saw *and*
generalizes to unseen shape variants of known vocabulary.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.datatypes.base import Classification, Classifier
from repro.ontology import ONTOLOGY
from repro.ontology.lexicon import tokenize_key
from repro.ontology.nodes import Level3


@dataclass
class DistilledClassifier:
    """Multinomial naive Bayes over expanded key tokens."""

    smoothing: float = 0.4
    name: str = "distilled-nb"
    _log_prior: dict[Level3, float] = field(default_factory=dict, repr=False)
    _log_likelihood: dict[Level3, dict[str, float]] = field(
        default_factory=dict, repr=False
    )
    _default_log_likelihood: dict[Level3, float] = field(
        default_factory=dict, repr=False
    )
    _vocabulary: set[str] = field(default_factory=set, repr=False)

    @property
    def trained(self) -> bool:
        return bool(self._log_prior)

    def fit(self, labeled: dict[str, Level3]) -> "DistilledClassifier":
        """Train on (key → label) pairs, e.g. teacher pseudo-labels."""
        if not labeled:
            raise ValueError("cannot distill from an empty label set")
        class_counts: Counter[Level3] = Counter()
        token_counts: dict[Level3, Counter[str]] = defaultdict(Counter)
        for key, label in labeled.items():
            tokens = tokenize_key(key)
            if not tokens:
                continue
            class_counts[label] += 1
            token_counts[label].update(tokens)
            self._vocabulary.update(tokens)

        total = sum(class_counts.values())
        vocabulary_size = max(1, len(self._vocabulary))
        for label, count in class_counts.items():
            self._log_prior[label] = math.log(count / total)
            denominator = (
                sum(token_counts[label].values()) + self.smoothing * vocabulary_size
            )
            self._log_likelihood[label] = {
                token: math.log((token_count + self.smoothing) / denominator)
                for token, token_count in token_counts[label].items()
            }
            self._default_log_likelihood[label] = math.log(
                self.smoothing / denominator
            )
        return self

    def classify(self, text: str) -> Classification:
        if not self.trained:
            raise RuntimeError("distilled model is not fitted")
        tokens = tokenize_key(text)
        if not tokens:
            return Classification(
                text=text, label=None, confidence=0.0, explanation="no tokens"
            )
        scores: dict[Level3, float] = {}
        for label, prior in self._log_prior.items():
            likelihoods = self._log_likelihood[label]
            default = self._default_log_likelihood[label]
            scores[label] = prior + sum(
                likelihoods.get(token, default) for token in tokens
            )
        ranked = sorted(scores.items(), key=lambda item: -item[1])
        best_label, best_score = ranked[0]
        # Softmax over the top candidates as a confidence proxy.
        top = [score for _, score in ranked[:5]]
        shifted = [math.exp(score - best_score) for score in top]
        confidence = round(shifted[0] / sum(shifted), 2)
        return Classification(
            text=text,
            label=best_label,
            confidence=confidence,
            explanation="naive-bayes over expanded tokens",
        )

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]

    def parameter_count(self) -> int:
        """Size of the student (for the 'runs locally' claim)."""
        return sum(len(v) for v in self._log_likelihood.values()) + len(
            self._log_prior
        )


@dataclass
class DistillationReport:
    """Outcome of one distillation run."""

    training_size: int
    student_parameters: int
    teacher_agreement: float  # student vs teacher on held-out keys
    student_accuracy: float | None = None  # vs ground truth, if known
    teacher_accuracy: float | None = None


def distill(
    teacher: Classifier,
    keys: list[str],
    confidence_threshold: float = 0.8,
    holdout_fraction: float = 0.2,
    truth: dict[str, Level3] | None = None,
    seed: int = 13,
) -> tuple[DistilledClassifier, DistillationReport]:
    """Run the §3.2.2 distillation pipeline.

    The teacher labels every key; labels above the confidence threshold
    become training data (minus a held-out slice used for evaluation).
    When ground truth is supplied, the report also scores both models
    against it.
    """
    import random

    if not 0 < holdout_fraction < 1:
        raise ValueError("holdout_fraction must be in (0, 1)")
    rng = random.Random(seed)
    keys = sorted(set(keys))
    rng.shuffle(keys)
    holdout_size = max(1, int(len(keys) * holdout_fraction))
    holdout, training = keys[:holdout_size], keys[holdout_size:]

    teacher_labels: dict[str, Level3] = {}
    for key in training:
        verdict = teacher.classify(key)
        if verdict.label is not None and verdict.confidence >= confidence_threshold:
            teacher_labels[key] = verdict.label

    student = DistilledClassifier().fit(teacher_labels)

    agree = 0
    student_correct = teacher_correct = scored = 0
    for key in holdout:
        teacher_verdict = teacher.classify(key)
        student_verdict = student.classify(key)
        if teacher_verdict.label == student_verdict.label:
            agree += 1
        if truth is not None and key in truth:
            scored += 1
            if student_verdict.label == truth[key]:
                student_correct += 1
            if teacher_verdict.label == truth[key]:
                teacher_correct += 1

    report = DistillationReport(
        training_size=len(teacher_labels),
        student_parameters=student.parameter_count(),
        teacher_agreement=agree / len(holdout),
        student_accuracy=(student_correct / scored) if scored else None,
        teacher_accuracy=(teacher_correct / scored) if scored else None,
    )
    return student, report
