"""Zero-shot classification substitute (bart-large-mnli pipeline).

The paper fed *only the category labels* — no examples — to the
Hugging Face zero-shot pipeline and measured 4% sample accuracy: an
NLI model scoring "this text is about {label}" has almost no purchase
on terse traffic keys.  The substitute reproduces the setup (labels
only) and the weakness: similarity between the key's tokens and the
label's *name* tokens in the same hashed-embedding space the BERT
matcher uses.  Keys rarely share tokens with label names, so accuracy
collapses — the paper's observed failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datatypes.base import Classification
from repro.datatypes.bertsim import cosine, embed_phrase
from repro.ontology import ONTOLOGY
from repro.ontology.nodes import Level3


@dataclass
class ZeroShotClassifier:
    """Label-name-only similarity classifier."""

    name: str = "zero-shot"
    _labels: list[tuple[Level3, list[float]]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        for label in ONTOLOGY.labels():
            self._labels.append((label, embed_phrase(label.value)))

    def classify(self, text: str) -> Classification:
        query = embed_phrase(text)
        scored = [(cosine(query, vector), label) for label, vector in self._labels]
        scored.sort(key=lambda item: -item[0])
        best_score, best_label = scored[0]
        # Softmax-ish entailment probability over labels.
        confidence = round(max(0.0, (best_score + 1) / 2), 2)
        return Classification(
            text=text,
            label=best_label,
            confidence=confidence,
            explanation="entailment with label name",
        )

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]
