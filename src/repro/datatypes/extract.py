"""Raw data type extraction from outgoing requests (paper §3.2.2).

"We extract key-value pairs from the JSON-structured data, and the keys
serve as the raw data types."  We take keys from three places a request
leaks data: the JSON body (recursively — nested object keys count),
URL query parameters, and cookie names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.net.http import HttpRequest


@dataclass(frozen=True)
class ExtractedKey:
    """One raw data type occurrence."""

    key: str
    value: str
    source: str  # "body" | "query" | "cookie"


def _walk_json(node, out: list[ExtractedKey], prefix: str = "") -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            if isinstance(value, (dict, list)):
                out.append(ExtractedKey(key=str(key), value="", source="body"))
                _walk_json(value, out)
            else:
                out.append(
                    ExtractedKey(key=str(key), value=_render(value), source="body")
                )
    elif isinstance(node, list):
        for item in node:
            _walk_json(item, out)


def _render(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def extract_from_request(request: HttpRequest) -> list[ExtractedKey]:
    """All raw data types one request transmits.

    Non-JSON bodies are ignored (the paper's pipeline converts traces
    to JSON and works with structured payloads); malformed JSON is
    treated as opaque rather than raising — real traces contain
    truncated bodies.
    """
    out: list[ExtractedKey] = []
    for key, value in request.url.query_pairs():
        out.append(ExtractedKey(key=key, value=value, source="query"))
    for name, value in request.cookies():
        out.append(ExtractedKey(key=name, value=value, source="cookie"))
    if request.body and request.content_type in ("application/json", "text/json", ""):
        try:
            document = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return out
        _walk_json(document, out)
    return out


def extract_keys(requests: list[HttpRequest]) -> set[str]:
    """The unique raw data types across many requests."""
    keys: set[str] = set()
    for request in requests:
        keys.update(item.key for item in extract_from_request(request))
    return keys
