"""Fuzzy matching over dense "pre-trained" embeddings (PolyFuzz-BERT).

The paper's BERT-based fuzzy matcher reached only 18% sample accuracy:
a generic sentence encoder, never tuned for traffic keys, produces
embeddings whose neighborhoods do not respect the ontology.  Our
substitute models exactly that failure mode with **hashed random
embeddings**: each token maps to a deterministic pseudo-random unit
vector, phrases are mean-pooled, and similarity is cosine.  Identical
tokens still match (so some keys classify correctly), but there is no
semantic generalization — the property that made BERT-without-
fine-tuning weak in the paper.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.datatypes.base import Classification, unique_texts
from repro.ontology import ONTOLOGY
from repro.ontology.lexicon import split_key
from repro.ontology.nodes import Level3

_DIM = 24


@lru_cache(maxsize=65536)
def token_embedding(token: str) -> tuple[float, ...]:
    """Deterministic pseudo-random unit vector for a token.

    Memoized: the corpus's key universe yields a few thousand distinct
    character trigrams that are re-embedded millions of times.  The
    returned tuple is immutable, so the cached instance is shared.
    """
    values: list[float] = []
    counter = 0
    while len(values) < _DIM:
        digest = hashlib.sha256(f"emb|{token}|{counter}".encode()).digest()
        for index in range(0, len(digest) - 1, 2):
            raw = int.from_bytes(digest[index : index + 2], "big")
            values.append(raw / 32768.0 - 1.0)
            if len(values) == _DIM:
                break
        counter += 1
    norm = math.sqrt(sum(v * v for v in values)) or 1.0
    return tuple(v / norm for v in values)


def embed_phrase(text: str) -> list[float]:
    """Mean-pooled character-trigram embeddings of the *raw* string.

    PolyFuzz feeds the raw key to the encoder without the word-level
    normalization our knowledge-based classifier performs — so
    ``IsOptOutEmailShown`` and ``email address`` land far apart.  That
    is precisely the weakness the paper measured (18% accuracy); do
    not "fix" this by splitting tokens here.
    """
    text = text.lower()
    grams = [text[i : i + 3] for i in range(max(1, len(text) - 2))]
    acc = [0.0] * _DIM
    for gram in grams:
        vector = token_embedding(gram)
        for index in range(_DIM):
            acc[index] += vector[index]
    norm = math.sqrt(sum(v * v for v in acc)) or 1.0
    return [v / norm for v in acc]


def cosine(a: list[float], b: list[float]) -> float:
    return sum(x * y for x, y in zip(a, b))


@dataclass
class BertFuzzyClassifier:
    """Nearest ontology example in hashed-embedding space.

    Like the TF-IDF matcher, an input must clear ``min_similarity``
    (cosine) to count as matched — PolyFuzz "match" semantics.
    """

    min_similarity: float = 0.68
    name: str = "fuzzy-bert"
    _examples: list[tuple[str, Level3, list[float]]] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        for node in ONTOLOGY:
            for example in node.examples:
                self._examples.append((example, node.level3, embed_phrase(example)))

    def _verdict(self, text: str, query: list[float]) -> Classification:
        best_score = -2.0
        best_label: Level3 | None = None
        best_example = ""
        for example, label, vector in self._examples:
            score = cosine(query, vector)
            if score > best_score:
                best_score, best_label, best_example = score, label, example
        if best_score < self.min_similarity:
            return Classification(
                text=text,
                label=None,
                confidence=round(max(0.0, (best_score + 1) / 2), 2),
                explanation="no embedding above similarity cutoff",
            )
        return Classification(
            text=text,
            label=best_label,
            confidence=round(max(0.0, (best_score + 1) / 2), 2),
            explanation=f"nearest embedding: {best_example!r}",
        )

    def classify(self, text: str) -> Classification:
        return self._verdict(text, embed_phrase(text))

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        """Embed and match each distinct text once per batch.

        Verdicts are identical to per-item :meth:`classify` calls
        (both run through :meth:`_verdict`); duplicates in the input
        multiset reuse the deduplicated result.
        """
        verdicts = {
            text: self._verdict(text, embed_phrase(text))
            for text in unique_texts(texts)
        }
        return [verdicts[text] for text in texts]
