"""Data type extraction and classification (paper §3.2.2).

* :mod:`repro.datatypes.extract` — pull raw data types (key strings)
  out of request payloads, query strings and cookies;
* :mod:`repro.datatypes.base` — the classifier interface;
* :mod:`repro.datatypes.cache` — a memoizing layer over any
  classifier, so repeated keys are classified once per run;
* :mod:`repro.datatypes.gpt4` — the GPT-4 Chat Completions substitute:
  an offline knowledge-based classifier with the same API shape
  (prompt, temperature, confidence, explanation);
* :mod:`repro.datatypes.majority` — the majority-vote ensemble over
  temperature models (Majority-Max / Majority-Avg, Table 3);
* :mod:`repro.datatypes.tfidf` / :mod:`repro.datatypes.bertsim` /
  :mod:`repro.datatypes.zeroshot` / :mod:`repro.datatypes.fewshot` —
  the alternative classifiers the paper compared against (PolyFuzz
  TF-IDF / BERT, bart-large-mnli zero-shot, SetFit few-shot);
* :mod:`repro.datatypes.validation` — the manually-labeled-sample
  validation harness that regenerates Table 3.
"""

from repro.datatypes.base import Classification, Classifier
from repro.datatypes.cache import CachingClassifier
from repro.datatypes.extract import ExtractedKey, extract_from_request, extract_keys
from repro.datatypes.gpt4 import Gpt4Classifier, GPT4_PROMPT, TEMPERATURES
from repro.datatypes.majority import MajorityVoteClassifier
from repro.datatypes.tfidf import TfidfFuzzyClassifier
from repro.datatypes.bertsim import BertFuzzyClassifier
from repro.datatypes.zeroshot import ZeroShotClassifier
from repro.datatypes.fewshot import FewShotClassifier
from repro.datatypes.validation import ValidationReport, validate_classifier

__all__ = [
    "CachingClassifier",
    "Classification",
    "Classifier",
    "ExtractedKey",
    "extract_from_request",
    "extract_keys",
    "Gpt4Classifier",
    "GPT4_PROMPT",
    "TEMPERATURES",
    "MajorityVoteClassifier",
    "TfidfFuzzyClassifier",
    "BertFuzzyClassifier",
    "ZeroShotClassifier",
    "FewShotClassifier",
    "ValidationReport",
    "validate_classifier",
]
