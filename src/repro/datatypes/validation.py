"""Classifier validation against a manually-labeled sample (Table 3).

The paper manually labeled a random 10% sample (n=397) of the unique
extracted data types and scored every classifier on it, reporting total
accuracy plus accuracy/coverage at confidence thresholds 0.7/0.8/0.9.
Our "manual labels" are the generator's ground-truth key registry —
the label a human annotator who knew the developer's intent would
assign.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datatypes.base import Classification, Classifier
from repro.ontology.nodes import Level3

CONFIDENCE_THRESHOLDS: tuple[float, ...] = (0.7, 0.8, 0.9)


@dataclass(frozen=True)
class ThresholdResult:
    """Accuracy over (and size of) the kept-above-threshold subset."""

    threshold: float
    accuracy: float
    labeled: int


@dataclass
class ValidationReport:
    """One classifier's row of Table 3."""

    classifier: str
    sample_size: int
    accuracy: float
    thresholds: list[ThresholdResult] = field(default_factory=list)

    def at(self, threshold: float) -> ThresholdResult:
        for result in self.thresholds:
            if abs(result.threshold - threshold) < 1e-9:
                return result
        raise KeyError(f"no threshold {threshold}")


def draw_sample(
    truth: dict[str, Level3], fraction: float = 0.10, seed: int = 397
) -> dict[str, Level3]:
    """The manually-labeled random sample (10% of unique data types)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    keys = sorted(truth)
    rng = random.Random(seed)
    count = max(1, round(len(keys) * fraction))
    chosen = rng.sample(keys, count)
    return {key: truth[key] for key in chosen}


def score(
    predictions: list[Classification], truth: dict[str, Level3]
) -> tuple[float, list[ThresholdResult]]:
    """Total accuracy plus per-threshold accuracy/coverage."""
    total = len(predictions)
    if total == 0:
        raise ValueError("empty sample")
    correct = sum(
        1 for prediction in predictions if prediction.label == truth[prediction.text]
    )
    thresholds: list[ThresholdResult] = []
    for threshold in CONFIDENCE_THRESHOLDS:
        kept = [p for p in predictions if p.confidence >= threshold]
        kept_correct = sum(1 for p in kept if p.label == truth[p.text])
        thresholds.append(
            ThresholdResult(
                threshold=threshold,
                accuracy=kept_correct / len(kept) if kept else 0.0,
                labeled=len(kept),
            )
        )
    return correct / total, thresholds


def confusion_matrix(
    predictions: list[Classification], truth: dict[str, Level3]
) -> dict[tuple[Level3, Level3 | None], int]:
    """(true label, predicted label) → count over a prediction set."""
    matrix: dict[tuple[Level3, Level3 | None], int] = {}
    for prediction in predictions:
        key = (truth[prediction.text], prediction.label)
        matrix[key] = matrix.get(key, 0) + 1
    return matrix


def top_confusions(
    matrix: dict[tuple[Level3, Level3 | None], int], n: int = 10
) -> list[tuple[Level3, Level3 | None, int]]:
    """The most frequent *off-diagonal* cells (actual mistakes)."""
    mistakes = [
        (true, predicted, count)
        for (true, predicted), count in matrix.items()
        if predicted is not true
    ]
    mistakes.sort(key=lambda item: -item[2])
    return mistakes[:n]


def per_class_recall(
    matrix: dict[tuple[Level3, Level3 | None], int]
) -> dict[Level3, float]:
    """Recall per true label."""
    totals: dict[Level3, int] = {}
    correct: dict[Level3, int] = {}
    for (true, predicted), count in matrix.items():
        totals[true] = totals.get(true, 0) + count
        if predicted is true:
            correct[true] = correct.get(true, 0) + count
    return {
        label: correct.get(label, 0) / total for label, total in totals.items()
    }


def validate_classifier(
    classifier: Classifier,
    sample: dict[str, Level3],
) -> ValidationReport:
    """Run one classifier over the sample and report its Table 3 row."""
    texts = sorted(sample)
    predictions = classifier.classify_batch(texts)
    accuracy, thresholds = score(predictions, sample)
    return ValidationReport(
        classifier=getattr(classifier, "name", type(classifier).__name__),
        sample_size=len(texts),
        accuracy=accuracy,
        thresholds=thresholds,
    )
