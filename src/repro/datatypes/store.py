"""Persistent, process-safe classification store.

The paper's core economy is classifying ~3,968 unique raw data types
once instead of 440K packets (§3.2.2).  :class:`~repro.datatypes.cache.
CachingClassifier` realizes that within one process and one run; this
module extends it across both:

* :class:`ClassificationStore` — an SQLite-backed key→verdict store
  keyed by ``(classifier_name, text)``, WAL-journaled so concurrent
  shard workers (``--jobs N``) and concurrent runs can read and write
  the same file safely;
* :class:`PersistentClassifier` — a classifier wrapper that answers
  from the store before falling back to the wrapped (expensive) inner
  classifier, writing fresh verdicts through so the next lookup — in
  another worker process or another run — hits disk instead.

Layering is deliberate: the in-memory :class:`CachingClassifier` stays
the top layer (process-local dict lookups), the store sits under it
(cross-process, cross-run), and the inner classifier is the layer of
last resort.  Classification is a pure function of the key, so neither
cache layer can change any result — only how often the expensive path
runs.  The store file is self-contained and relocatable; deleting it
merely makes the next run cold.
"""

from __future__ import annotations

import os
import sqlite3
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.datatypes.base import Classification, Classifier, batch_classify
from repro.obs.metrics import REGISTRY
from repro.ontology.nodes import Level3

_STORE_HITS = REGISTRY.counter("repro_store_hits_total")
_STORE_MISSES = REGISTRY.counter("repro_store_misses_total")
_STORE_GET_SECONDS = REGISTRY.histogram("repro_store_get_seconds")
_STORE_PUT_SECONDS = REGISTRY.histogram("repro_store_put_seconds")
_STORE_DISABLED = REGISTRY.gauge("repro_store_disabled")

STORE_FILENAME = "classifications.sqlite"

# SQLite's default variable limit is 999; stay comfortably under it
# when expanding IN (...) lookups.
_CHUNK = 400

# Result-schema version for per-unit replay results (the incremental
# re-audit cache).  Bump whenever the *meaning* of a stored payload
# changes — a new PackedShardResult layout, a pipeline change that
# alters shard output for identical input bytes.  Rows recorded under
# an older version are never served and are aged out by
# ``prune_unit_results`` (``repro cache prune --unit-results``).
UNIT_RESULT_SCHEMA = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS classifications (
    classifier  TEXT NOT NULL,
    text        TEXT NOT NULL,
    label       TEXT,
    confidence  REAL NOT NULL,
    explanation TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (classifier, text)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    classifier  TEXT NOT NULL,
    memory_hits INTEGER NOT NULL,
    store_hits  INTEGER NOT NULL,
    misses      INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS unit_results (
    digest         TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    epoch          TEXT NOT NULL,
    service        TEXT NOT NULL,
    payload        BLOB NOT NULL,
    PRIMARY KEY (digest, schema_version, epoch)
) WITHOUT ROWID;
"""


def unit_result_epoch(classifier_name: str, confidence_threshold: float) -> str:
    """The invalidation scope one stored unit result is valid under.

    A unit's digest addresses its *input bytes*; the epoch names the
    *processing configuration* those bytes were run through — the
    classifier and the confidence threshold, the two knobs that change
    shard output for identical input.  Kept out of the digest so a
    config switch leaves old rows intact (switching back re-hits them)
    instead of silently orphaning them under unreachable digests.
    """
    return f"{classifier_name}@{confidence_threshold:g}"


class StoreError(Exception):
    """A classification store problem the caller should surface."""


@dataclass(frozen=True)
class RunRecord:
    """Hit/miss counters one pipeline run recorded in the store."""

    id: int
    classifier: str
    memory_hits: int
    store_hits: int
    misses: int

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.store_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered without the inner classifier."""
        total = self.lookups
        return (self.memory_hits + self.store_hits) / total if total else 0.0

    def summary(self) -> str:
        """The one-line form both ``cache stats`` and ``classify
        --verbose`` print (the CI parity job greps its hit rate)."""
        return (
            f"{self.lookups} lookups — {self.memory_hits} memory hits, "
            f"{self.store_hits} store hits, {self.misses} classified "
            f"(hit rate {self.hit_rate:.1%})"
        )


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time summary of one store file."""

    path: Path
    entries: dict[str, int]  # classifier name -> stored verdicts
    run_count: int
    last_run: RunRecord | None
    # Per-unit replay results under the *current* result schema,
    # keyed by service; rows recorded under older schema versions are
    # counted separately (they are prune fodder, never served).
    unit_results: dict[str, int] = field(default_factory=dict)
    stale_unit_results: int = 0

    @property
    def total_entries(self) -> int:
        return sum(self.entries.values())

    @property
    def total_unit_results(self) -> int:
        return sum(self.unit_results.values())


def store_path_for(cache_dir: Path | str) -> Path:
    """The store file a ``--cache-dir`` directory holds."""
    return Path(cache_dir) / STORE_FILENAME


class ClassificationStore:
    """SQLite-backed ``(classifier, text) -> Classification`` store.

    Safe for concurrent readers and writers across processes: WAL
    journaling lets readers proceed during a write, a generous busy
    timeout serializes writers, and inserts are ``OR IGNORE`` —
    classification is pure, so two workers racing on the same key
    write the same verdict and either copy is correct.

    A corrupt store file (truncated disk, garbage bytes) is recovered
    by moving it aside to ``<name>.corrupt`` and starting empty: the
    cache is a performance artifact, never the source of truth, so
    losing it only makes the next run cold.  Corruption can also
    surface mid-operation (a valid header over damaged pages), so
    every query runs under the same quarantine-and-retry.  Pass
    ``recover=False`` to raise :class:`StoreError` instead — for
    inspection commands that must never destroy evidence they were
    asked to report on.
    """

    def __init__(self, path: Path | str, recover: bool = True) -> None:
        self.path = Path(path)
        self.recover = recover
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:  # --cache-dir points at a file, unwritable, …
            raise StoreError(
                f"cannot create classification store directory "
                f"{self.path.parent}: {exc}"
            ) from exc
        try:
            self._conn = self._open()
        except sqlite3.Error as exc:  # unopenable, locked beyond timeout, …
            raise StoreError(
                f"cannot open classification store {self.path}: {exc}"
            ) from exc

    # -- connection lifecycle -------------------------------------------

    @staticmethod
    def _is_corruption(exc: sqlite3.DatabaseError) -> bool:
        """Corruption (SQLITE_CORRUPT/NOTADB) vs. operational errors.

        Locked/busy databases raise OperationalError and must never be
        quarantined — they are healthy files in momentary contention.
        """
        return not isinstance(
            exc,
            (
                sqlite3.OperationalError,
                sqlite3.IntegrityError,
                sqlite3.ProgrammingError,
            ),
        )

    def _open(self) -> sqlite3.Connection:
        try:
            return self._connect()
        except sqlite3.DatabaseError as exc:
            if not self._is_corruption(exc):
                raise  # locked/unopenable is not corruption: keep the file
            if not self.recover:
                raise StoreError(
                    f"classification store {self.path} is corrupt ({exc}); "
                    "delete it (or the --cache-dir) to start cold"
                ) from exc
            return self._recover_connection()

    def _recover_connection(self) -> sqlite3.Connection:
        """Quarantine a corrupt store and reconnect, race-tolerantly.

        Under ``--jobs N`` several workers can hit the same corrupt
        file at once.  Reconnecting first gives whoever lost the race
        the store the winner already rebuilt, instead of moving the
        winner's healthy file aside; a file another process quarantined
        in the meantime counts as handled, not as a new failure.
        """
        try:
            return self._connect()
        except sqlite3.DatabaseError as exc:
            if not self._is_corruption(exc):
                raise
        self._quarantine()
        return self._connect()

    def _execute(self, operation):
        """Run one store operation; nothing escapes but StoreError.

        SQLite failures that survive recovery — lock timeouts, I/O
        errors — are wrapped so callers have one exception type for
        "the store is unusable" and can degrade instead of crashing.
        """
        try:
            return self._execute_with_recovery(operation)
        except sqlite3.Error as exc:
            raise StoreError(
                f"classification store {self.path} operation failed: {exc}"
            ) from exc

    def _execute_with_recovery(self, operation):
        """Run one store operation, quarantining corruption mid-flight.

        ``operation`` is a zero-argument closure reading ``self._conn``
        at call time, so each retry runs against whichever connection
        recovery installed — a fresh one to the intact file, or to the
        rebuilt (empty) store after quarantine.
        """
        try:
            return operation()
        except sqlite3.DatabaseError as exc:
            if not self._is_corruption(exc):
                raise
            if not self.recover:
                raise StoreError(
                    f"classification store {self.path} is corrupt ({exc}); "
                    "delete it (or the --cache-dir) to start cold"
                ) from exc
            self._conn.close()
            # Reconnect and retry first: a racing worker may have
            # already quarantined and rebuilt the store, or the error
            # was transient — quarantining then would discard a healthy
            # file.  Only corruption that survives a fresh connection
            # gets the file moved aside.
            try:
                self._conn = self._connect()
                return operation()
            except sqlite3.DatabaseError as retry_exc:
                if not self._is_corruption(retry_exc):
                    raise
                self._conn.close()
                self._quarantine()
                self._conn = self._connect()
                return operation()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _quarantine(self) -> None:
        """Move a corrupt store aside so a fresh one can be created."""
        corrupt = self.path.with_suffix(self.path.suffix + ".corrupt")
        try:
            os.replace(self.path, corrupt)
        # repro-lint: disable=X-SWALLOW — a racing process already quarantined the file; the recovery goal is met either way
        except FileNotFoundError:
            pass
        except OSError as exc:  # unreadable *and* unmovable: give up
            raise StoreError(
                f"classification store {self.path} is corrupt and could "
                f"not be moved aside: {exc}"
            ) from exc

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ClassificationStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- lookups ---------------------------------------------------------

    def get_many(
        self, classifier: str, texts: list[str]
    ) -> dict[str, Classification]:
        """Stored verdicts for the given keys (missing keys absent)."""

        def lookup() -> dict[str, Classification]:
            found: dict[str, Classification] = {}
            for start in range(0, len(texts), _CHUNK):
                chunk = texts[start : start + _CHUNK]
                placeholders = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT text, label, confidence, explanation "
                    f"FROM classifications WHERE classifier = ? "
                    f"AND text IN ({placeholders})",
                    [classifier, *chunk],
                )
                for text, label, confidence, explanation in rows:
                    found[text] = Classification(
                        text=text,
                        label=Level3(label) if label is not None else None,
                        confidence=confidence,
                        explanation=explanation,
                    )
            return found

        return self._execute(lookup)

    def get(self, classifier: str, text: str) -> Classification | None:
        return self.get_many(classifier, [text]).get(text)

    def put_many(
        self, classifier: str, verdicts: list[Classification]
    ) -> None:
        """Write verdicts through; racing duplicates are ignored."""
        if not verdicts:
            return
        rows = [
            (
                classifier,
                verdict.text,
                verdict.label.value if verdict.label is not None else None,
                verdict.confidence,
                verdict.explanation,
            )
            for verdict in verdicts
        ]

        def write() -> None:
            self._conn.executemany(
                "INSERT OR IGNORE INTO classifications "
                "(classifier, text, label, confidence, explanation) "
                "VALUES (?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()

        self._execute(write)

    # -- per-unit replay results (incremental re-audit) ------------------

    def get_unit_results(
        self, epoch: str, digests: list[str], schema_version: int | None = None
    ) -> dict[str, bytes]:
        """Stored unit payloads for the given digests (missing absent).

        Only rows recorded under the current result schema *and* the
        requested epoch are served — anything else is invisible to
        lookups (and prunable), never silently wrong.
        """
        if schema_version is None:
            schema_version = UNIT_RESULT_SCHEMA

        def lookup() -> dict[str, bytes]:
            found: dict[str, bytes] = {}
            for start in range(0, len(digests), _CHUNK):
                chunk = digests[start : start + _CHUNK]
                placeholders = ",".join("?" * len(chunk))
                rows = self._conn.execute(
                    f"SELECT digest, payload FROM unit_results "
                    f"WHERE schema_version = ? AND epoch = ? "
                    f"AND digest IN ({placeholders})",
                    [schema_version, epoch, *chunk],
                )
                for digest, payload in rows:
                    found[digest] = payload
            return found

        return self._execute(lookup)

    def put_unit_results(
        self,
        epoch: str,
        rows: list[tuple[str, str, bytes]],
        schema_version: int | None = None,
    ) -> None:
        """Write ``(digest, service, payload)`` rows through.

        ``OR REPLACE`` rather than ``OR IGNORE``: a digest being
        rewritten means its previous payload was judged unusable
        (corrupt-row quarantine), and shard processing is deterministic
        — racing writers produce equivalent payloads, so last-write-
        wins is safe.
        """
        if not rows:
            return
        if schema_version is None:
            schema_version = UNIT_RESULT_SCHEMA
        records = [
            (digest, schema_version, epoch, service, payload)
            for digest, service, payload in rows
        ]

        def write() -> None:
            self._conn.executemany(
                "INSERT OR REPLACE INTO unit_results "
                "(digest, schema_version, epoch, service, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                records,
            )
            self._conn.commit()

        self._execute(write)

    def delete_unit_results(self, digests: list[str]) -> int:
        """Drop specific rows (corrupt-payload quarantine); returns count."""
        if not digests:
            return 0

        def delete() -> int:
            removed = 0
            for start in range(0, len(digests), _CHUNK):
                chunk = digests[start : start + _CHUNK]
                placeholders = ",".join("?" * len(chunk))
                cursor = self._conn.execute(
                    f"DELETE FROM unit_results WHERE digest IN ({placeholders})",
                    chunk,
                )
                removed += cursor.rowcount
            self._conn.commit()
            return removed

        return self._execute(delete)

    def prune_unit_results(self, schema_version: int | None = None) -> int:
        """Age out unit results from older result-schema versions.

        Deliberately *not* wall-clock based (determinism contract):
        staleness here means "recorded under a schema this build will
        never serve", which is exactly the set lookups skip over.
        Returns how many rows were removed.
        """
        if schema_version is None:
            schema_version = UNIT_RESULT_SCHEMA

        def delete() -> int:
            cursor = self._conn.execute(
                "DELETE FROM unit_results WHERE schema_version != ?",
                (schema_version,),
            )
            self._conn.commit()
            return cursor.rowcount

        return self._execute(delete)

    # -- instrumentation -------------------------------------------------

    def record_run(
        self, classifier: str, memory_hits: int, store_hits: int, misses: int
    ) -> None:
        """Append one run's hit/miss counters (``cache stats`` history)."""

        def write() -> None:
            self._conn.execute(
                "INSERT INTO runs (classifier, memory_hits, store_hits, misses) "
                "VALUES (?, ?, ?, ?)",
                (classifier, memory_hits, store_hits, misses),
            )
            self._conn.commit()

        self._execute(write)

    def stats(self) -> StoreStats:
        def read() -> StoreStats:
            entries = dict(
                self._conn.execute(
                    "SELECT classifier, COUNT(*) FROM classifications "
                    "GROUP BY classifier ORDER BY classifier"
                )
            )
            run_count = self._conn.execute(
                "SELECT COUNT(*) FROM runs"
            ).fetchone()[0]
            last = self._conn.execute(
                "SELECT id, classifier, memory_hits, store_hits, misses "
                "FROM runs ORDER BY id DESC LIMIT 1"
            ).fetchone()
            unit_results = dict(
                self._conn.execute(
                    "SELECT service, COUNT(*) FROM unit_results "
                    "WHERE schema_version = ? GROUP BY service ORDER BY service",
                    (UNIT_RESULT_SCHEMA,),
                )
            )
            stale = self._conn.execute(
                "SELECT COUNT(*) FROM unit_results WHERE schema_version != ?",
                (UNIT_RESULT_SCHEMA,),
            ).fetchone()[0]
            return StoreStats(
                path=self.path,
                entries=entries,
                run_count=run_count,
                last_run=RunRecord(*last) if last else None,
                unit_results=unit_results,
                stale_unit_results=stale,
            )

        return self._execute(read)

    def entries(
        self, classifier: str | None = None
    ) -> Iterator[tuple[str, Classification]]:
        """Every stored verdict, ``(classifier_name, verdict)`` pairs."""
        query = (
            "SELECT classifier, text, label, confidence, explanation "
            "FROM classifications"
        )
        params: tuple = ()
        if classifier is not None:
            query += " WHERE classifier = ?"
            params = (classifier,)
        query += " ORDER BY classifier, text"
        rows = self._execute(
            lambda: self._conn.execute(query, params).fetchall()
        )
        for name, text, label, confidence, explanation in rows:
            yield name, Classification(
                text=text,
                label=Level3(label) if label is not None else None,
                confidence=confidence,
                explanation=explanation,
            )

    # -- maintenance -----------------------------------------------------

    def prune(
        self, classifier: str | None = None, below: float | None = None
    ) -> int:
        """Delete matching entries; returns how many were removed.

        ``classifier`` restricts to one classifier's entries; ``below``
        removes entries with confidence under the threshold (they would
        be re-asked and re-filtered next run anyway — results cannot
        change, classification is pure).  At least one criterion is
        required: wiping everything is :meth:`clear`'s explicit job.
        """
        if classifier is None and below is None:
            raise StoreError("prune needs a criterion (classifier or below)")
        clauses, params = [], []
        if classifier is not None:
            clauses.append("classifier = ?")
            params.append(classifier)
        if below is not None:
            clauses.append("confidence < ?")
            params.append(below)
        def delete() -> int:
            cursor = self._conn.execute(
                f"DELETE FROM classifications WHERE {' AND '.join(clauses)}",
                params,
            )
            self._conn.commit()
            return cursor.rowcount

        return self._execute(delete)

    def clear(self) -> int:
        """Delete every entry, unit result and the run history;
        returns the classification-entry count (the number the CLI has
        always reported)."""

        def delete() -> int:
            cursor = self._conn.execute("DELETE FROM classifications")
            self._conn.execute("DELETE FROM runs")
            self._conn.execute("DELETE FROM unit_results")
            self._conn.commit()
            return cursor.rowcount

        return self._execute(delete)


@dataclass
class PersistentClassifier:
    """Disk-persistence layer between a cache and the inner classifier.

    Answers from the :class:`ClassificationStore` at ``path`` and
    falls back to ``inner`` (one batched call per miss set), writing
    fresh verdicts through.  Store entries are keyed by ``inner.name``,
    so any wrapper stack over the same inner classifier shares them.

    Instances are picklable: the SQLite connection is process-local
    state, dropped on pickling and lazily reopened in whichever worker
    process the copy lands in (``--jobs N`` shard tasks carry one).

    A store failure mid-run (lock timeout, I/O error, unrecoverable
    corruption) disables the layer for this process with a warning and
    falls through to the inner classifier: the store is a performance
    artifact, and a completed audit must never be discarded over it.
    Opening an *unusable* store in the first place still raises
    :class:`StoreError` — callers that want fail-fast validation of a
    fresh ``--cache-dir`` touch :attr:`store` eagerly.
    """

    inner: Classifier
    path: Path
    name: str = field(init=False)
    store_hits: int = 0
    misses: int = 0
    # Cumulative wall time spent in store round-trips (the profiling
    # layer reports these as the ``store_get``/``store_put`` stages).
    store_get_s: float = 0.0
    store_put_s: float = 0.0
    # Optional fault-injection plan (repro.faults.FaultPlan): when it
    # injects store faults, the opened store is wrapped in a FlakyStore
    # proxy that raises deterministic transient StoreErrors.  Pickles
    # with the classifier so pool workers inject the same schedule.
    faults: object | None = None
    _store: ClassificationStore | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _store_pid: int = field(default=-1, init=False, repr=False, compare=False)
    _disabled: bool = field(default=False, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        self.name = f"persistent-{self.inner.name}"

    @classmethod
    def wrap(
        cls,
        classifier: Classifier,
        path: Path | str,
        faults: object | None = None,
    ) -> "PersistentClassifier":
        """Layer persistence under ``classifier``, idempotently."""
        if (
            isinstance(classifier, cls)
            and classifier.path == Path(path)
            and classifier.faults == faults
        ):
            return classifier
        return cls(classifier, Path(path), faults=faults)

    @property
    def store(self) -> ClassificationStore:
        """The open store, (re)opened per process — connections must
        never cross a fork/pickle boundary."""
        if self._store is None or self._store_pid != os.getpid():
            store: ClassificationStore = ClassificationStore(self.path)
            if self.faults is not None:
                store = self.faults.wrap_store(store)
            self._store = store
            self._store_pid = os.getpid()
        return self._store

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_store"] = None
        state["_store_pid"] = -1
        state["_disabled"] = False  # each process decides for itself
        return state

    def _disable(self, exc: StoreError) -> None:
        self._disabled = True
        _STORE_DISABLED.set(1)
        print(
            f"warning: classification store {self.path} disabled for this "
            f"process: {exc}",
            file=sys.stderr,
        )

    # -- classification --------------------------------------------------

    def classify(self, text: str) -> Classification:
        return self.classify_batch([text])[0]

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        """Answer from disk, draining misses in one batched inner call."""
        unique = list(dict.fromkeys(texts))
        found: dict[str, Classification] = {}
        if not self._disabled:
            start = time.perf_counter()
            try:
                found = self.store.get_many(self.inner.name, unique)
            except StoreError as exc:
                self._disable(exc)
            finally:
                elapsed = time.perf_counter() - start
                self.store_get_s += elapsed
                _STORE_GET_SECONDS.observe(elapsed)
        self.store_hits += len(found)
        _STORE_HITS.inc(len(found))
        missing = [text for text in unique if text not in found]
        if missing:
            self.misses += len(missing)
            _STORE_MISSES.inc(len(missing))
            fresh = batch_classify(self.inner, missing)
            if not self._disabled:
                start = time.perf_counter()
                try:
                    self.store.put_many(self.inner.name, fresh)
                except StoreError as exc:
                    self._disable(exc)
                finally:
                    elapsed = time.perf_counter() - start
                    self.store_put_s += elapsed
                    _STORE_PUT_SECONDS.observe(elapsed)
            found.update((verdict.text, verdict) for verdict in fresh)
        return [found[text] for text in texts]

    # -- instrumentation -------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.store_hits + self.misses
        return self.store_hits / total if total else 0.0
