"""Classifier interface shared by GPT-4 substitute and baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.ontology.nodes import Level3


@dataclass(frozen=True)
class Classification:
    """One classifier verdict for one raw data type.

    Mirrors the paper's required GPT-4 output format
    ``<input text> // <category> // <score> // <explanation>``.
    """

    text: str
    label: Level3 | None  # None: the model declined / hallucinated
    confidence: float  # 0..1
    explanation: str = ""

    def formatted(self) -> str:
        label = self.label.value if self.label else "Unknown"
        return f"{self.text} // {label} // {self.confidence:.2f} // {self.explanation}"


@runtime_checkable
class Classifier(Protocol):
    """Anything that can label raw data types.

    ``classify_batch`` is the bulk entry point the pipeline drives:
    results come back in input order with ``verdict.text`` echoing the
    input key, and a verdict must not depend on what else is in the
    batch (classification is per-key pure).  Plain classifiers loop;
    caching layers (:class:`repro.datatypes.cache.CachingClassifier`,
    :class:`repro.datatypes.store.PersistentClassifier`) dedupe the
    batch and answer the miss set with one batched inner call.
    """

    name: str

    def classify(self, text: str) -> Classification:  # pragma: no cover
        ...

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]


def unique_texts(texts: list[str]) -> list[str]:
    """First-occurrence-ordered unique texts of a batch.

    The shared dedup primitive of every batched classifier path
    (caching layers, the persistent store, the fuzzy matchers): score
    each distinct key once, then fan the verdicts back out to the
    original multiset.  Order is first occurrence, so batch output
    built from the deduplicated results is deterministic.
    """
    return list(dict.fromkeys(texts))


def batch_classify(
    classifier: Classifier, texts: list[str]
) -> list[Classification]:
    """Drive ``classifier`` over ``texts`` in one batch.

    A Protocol's default body is not inherited by duck-typed
    implementations, so classifiers that only define ``classify``
    (tests, ad-hoc stubs) are driven key-by-key here instead.
    """
    batch = getattr(classifier, "classify_batch", None)
    if batch is not None:
        return batch(texts)
    return [classifier.classify(text) for text in texts]
