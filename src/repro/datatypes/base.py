"""Classifier interface shared by GPT-4 substitute and baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.ontology.nodes import Level3


@dataclass(frozen=True)
class Classification:
    """One classifier verdict for one raw data type.

    Mirrors the paper's required GPT-4 output format
    ``<input text> // <category> // <score> // <explanation>``.
    """

    text: str
    label: Level3 | None  # None: the model declined / hallucinated
    confidence: float  # 0..1
    explanation: str = ""

    def formatted(self) -> str:
        label = self.label.value if self.label else "Unknown"
        return f"{self.text} // {label} // {self.confidence:.2f} // {self.explanation}"


@runtime_checkable
class Classifier(Protocol):
    """Anything that can label raw data types."""

    name: str

    def classify(self, text: str) -> Classification:  # pragma: no cover
        ...

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]
