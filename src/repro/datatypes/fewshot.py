"""Few-shot classification substitute (SetFit one-vs-rest).

The paper trained SetFit on the ontology's examples as labeled data
(16% sample accuracy).  The substitute is a nearest-centroid classifier
in the hashed-embedding space: each category's examples are embedded
and mean-pooled into a class prototype, and keys are assigned to the
nearest prototype.  Centroid pooling over semantically-empty embeddings
is slightly better than single-example matching but still far below
the knowledge-based classifier — matching the paper's ordering
(TF-IDF 31% > BERT 18% ≈ SetFit 16% ≫ zero-shot 4%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.datatypes.base import Classification
from repro.datatypes.bertsim import cosine, embed_phrase
from repro.ontology import ONTOLOGY
from repro.ontology.nodes import Level3


@dataclass
class FewShotClassifier:
    """Nearest class-centroid over example embeddings."""

    name: str = "few-shot"
    _centroids: list[tuple[Level3, list[float]]] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        for node in ONTOLOGY:
            vectors = [embed_phrase(example) for example in node.examples]
            if not vectors:
                continue
            dim = len(vectors[0])
            centroid = [
                sum(vector[index] for vector in vectors) / len(vectors)
                for index in range(dim)
            ]
            norm = math.sqrt(sum(v * v for v in centroid)) or 1.0
            self._centroids.append(
                (node.level3, [v / norm for v in centroid])
            )

    def classify(self, text: str) -> Classification:
        query = embed_phrase(text)
        best_score = -2.0
        best_label: Level3 | None = None
        for label, centroid in self._centroids:
            score = cosine(query, centroid)
            if score > best_score:
                best_score, best_label = score, label
        return Classification(
            text=text,
            label=best_label,
            confidence=round(max(0.0, (best_score + 1) / 2), 2),
            explanation="nearest class centroid",
        )

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        return [self.classify(text) for text in texts]
