"""Majority-vote ensemble over the temperature sweep (paper §3.2.2).

"Considering the inherent nondeterminism of GPT-4, we build a
majority-vote model where we take the majority label assigned across
all the different temperature models."  The ensemble's confidence is
either the **maximum** or the **average** of the confidences reported
by the models that voted for the winning label — the Majority-Max and
Majority-Avg rows of Table 3.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datatypes.base import Classification, Classifier, batch_classify, unique_texts
from repro.datatypes.gpt4 import temperature_sweep
from repro.ontology.nodes import Level3


@dataclass
class MajorityVoteClassifier:
    """Ensemble of classifiers with majority-label voting."""

    models: list[Classifier] = field(default_factory=temperature_sweep)
    confidence_mode: str = "avg"  # "avg" or "max"
    name: str = field(init=False)

    def __post_init__(self) -> None:
        if self.confidence_mode not in ("avg", "max"):
            raise ValueError("confidence_mode must be 'avg' or 'max'")
        if not self.models:
            raise ValueError("majority vote needs at least one model")
        self.name = f"gpt4-majority-{self.confidence_mode}"

    def _tally(self, text: str, votes: list[Classification]) -> Classification:
        counts: Counter[Level3 | None] = Counter(vote.label for vote in votes)
        winner, _ = counts.most_common(1)[0]
        agreeing = [vote for vote in votes if vote.label == winner]
        confidences = [vote.confidence for vote in agreeing]
        confidence = (
            max(confidences)
            if self.confidence_mode == "max"
            else sum(confidences) / len(confidences)
        )
        return Classification(
            text=text,
            label=winner,
            confidence=round(confidence, 2),
            explanation=f"majority {len(agreeing)}/{len(votes)} votes",
        )

    def classify(self, text: str) -> Classification:
        return self._tally(text, [model.classify(text) for model in self.models])

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        """One deduplicated batch per sweep model, then tally.

        Votes are zipped in model order, so ``Counter.most_common``
        tie-breaking (insertion order of first appearance) matches the
        per-item path exactly; classification is per-key pure, so
        deduplicating the multiset cannot change any verdict.
        """
        unique = unique_texts(texts)
        per_model = [batch_classify(model, unique) for model in self.models]
        verdicts = {
            text: self._tally(text, [column[i] for column in per_model])
            for i, text in enumerate(unique)
        }
        return [verdicts[text] for text in texts]
