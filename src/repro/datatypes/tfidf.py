"""Fuzzy string matching with TF-IDF character n-grams (PolyFuzz-style).

The paper's best-performing alternative classifier (31% sample
accuracy): match each raw key to the most similar ontology example
using TF-IDF over character 3-grams, and inherit that example's
category.  The weakness the paper observed is inherent to the method —
surface similarity cannot expand abbreviations or read camel-case
compounds — and is reproduced here because the algorithm is real.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.datatypes.base import Classification, unique_texts
from repro.ontology import ONTOLOGY
from repro.ontology.nodes import Level3


def _ngrams(text: str, n: int = 3) -> Counter[str]:
    text = f" {text.lower()} "
    return Counter(text[i : i + n] for i in range(max(1, len(text) - n + 1)))


@dataclass
class TfidfFuzzyClassifier:
    """Nearest-example matcher over TF-IDF character n-gram vectors.

    Mirrors the paper's PolyFuzz setup: an input only *matches* an
    example when similarity clears ``min_similarity``; below that the
    matcher leaves the input unlabeled (counted as wrong in
    validation).  Real traffic keys are heavily decorated, so most
    fall below the cutoff — the effect behind the paper's 31%.
    """

    ngram: int = 3
    min_similarity: float = 0.40
    name: str = "fuzzy-tfidf"
    _examples: list[tuple[str, Level3]] = field(default_factory=list, repr=False)
    _idf: dict[str, float] = field(default_factory=dict, repr=False)
    _vectors: list[dict[str, float]] = field(default_factory=list, repr=False)
    # Inverted index over the example matrix: gram -> [(example index,
    # normalized weight)].  One pass over a query's grams scores every
    # example at once, replacing a per-example sparse dot product.
    _postings: dict[str, list[tuple[int, float]]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        for node in ONTOLOGY:
            for example in node.examples:
                self._examples.append((example, node.level3))
        document_frequency: Counter[str] = Counter()
        counted = [
            _ngrams(example, self.ngram) for example, _ in self._examples
        ]
        for grams in counted:
            document_frequency.update(set(grams))
        n_docs = len(self._examples)
        self._idf = {
            gram: math.log((1 + n_docs) / (1 + freq)) + 1
            for gram, freq in document_frequency.items()
        }
        for grams in counted:
            self._vectors.append(self._vectorize(grams))
        for index, vector in enumerate(self._vectors):
            for gram, weight in vector.items():
                self._postings.setdefault(gram, []).append((index, weight))

    def _vectorize(self, grams: Counter[str]) -> dict[str, float]:
        vector = {
            gram: count * self._idf.get(gram, math.log(1 + len(self._examples)) + 1)
            for gram, count in grams.items()
        }
        norm = math.sqrt(sum(v * v for v in vector.values())) or 1.0
        return {gram: value / norm for gram, value in vector.items()}

    @staticmethod
    def _cosine(a: dict[str, float], b: dict[str, float]) -> float:
        if len(b) < len(a):
            a, b = b, a
        return sum(value * b.get(gram, 0.0) for gram, value in a.items())

    def _best_match(self, query: dict[str, float]) -> tuple[float, int]:
        """(similarity, example index) of the nearest example.

        Scores every example in one pass over the query's grams via
        the inverted index; ties keep the lowest example index, the
        same winner the original per-example scan produced.
        """
        scores = [0.0] * len(self._examples)
        for gram, value in query.items():
            postings = self._postings.get(gram)
            if postings is None:
                continue
            for index, weight in postings:
                scores[index] += value * weight
        best_index = 0
        best_score = scores[0] if scores else -1.0
        for index, score in enumerate(scores):
            if score > best_score:
                best_score, best_index = score, index
        return best_score, best_index

    def _verdict(self, text: str, query: dict[str, float]) -> Classification:
        best_score, best_index = self._best_match(query)
        best_example, best_label = self._examples[best_index]
        if best_score < self.min_similarity:
            return Classification(
                text=text,
                label=None,
                confidence=round(max(0.0, best_score), 2),
                explanation="no example above similarity cutoff",
            )
        return Classification(
            text=text,
            label=best_label,
            confidence=round(max(0.0, best_score), 2),
            explanation=f"nearest example: {best_example!r}",
        )

    def classify(self, text: str) -> Classification:
        return self._verdict(text, self._vectorize(_ngrams(text, self.ngram)))

    def classify_batch(self, texts: list[str]) -> list[Classification]:
        """Score one deduplicated text matrix, then fan verdicts out.

        Each distinct key is vectorized and matched exactly once per
        batch — a shard's whole key multiset costs its unique keys —
        and every verdict is identical to a per-item :meth:`classify`
        call because both run through :meth:`_verdict`.
        """
        verdicts = {
            text: self._verdict(text, self._vectorize(_ngrams(text, self.ngram)))
            for text in unique_texts(texts)
        }
        return [verdicts[text] for text in texts]
