"""Privacy-policy text analysis: quoted statements → disclosure rules.

The paper reads each service's privacy policy by hand and compares
observed flows against the quoted commitments (§4.1.2).  This module
automates the reading for the statement shapes that actually occur in
those policies — a deliberately narrow, pattern-based analyzer in the
PoliCheck/PoliGraph lineage the authors cite, covering:

* negative commitments — "we do **not** share/sell X with/to Y [for
  users under N]";
* positive disclosures — "we [may] share/collect X with Y [for Z]";
* audience scoping — "children", "users under 13/16/18", "teens",
  "all users".

The output is :class:`~repro.audit.policy.PolicyStatement` objects,
directly usable by the audit engine.  Statement shapes outside the
covered grammar are surfaced as ``unparsed`` so the auditor knows what
still requires human reading — the honest failure mode for policy NLP.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.audit.policy import PolicyModel, PolicyStatement
from repro.model import AGE_COLUMNS, FlowCell, TraceColumn
from repro.ontology.nodes import Level2

# ----------------------------------------------------------------------
# Vocabulary: how policies name data categories and recipients.
# ----------------------------------------------------------------------

_CATEGORY_VOCAB: dict[str, tuple[Level2, ...]] = {
    "personal information": (
        Level2.PERSONAL_IDENTIFIERS,
        Level2.PERSONAL_CHARACTERISTICS,
        Level2.PERSONAL_HISTORY,
        Level2.GEOLOCATION,
        Level2.USER_COMMUNICATIONS,
        Level2.SENSORS,
        Level2.USER_INTERESTS_AND_BEHAVIORS,
    ),
    "personal data": (
        Level2.PERSONAL_IDENTIFIERS,
        Level2.PERSONAL_CHARACTERISTICS,
        Level2.GEOLOCATION,
        Level2.USER_COMMUNICATIONS,
        Level2.USER_INTERESTS_AND_BEHAVIORS,
    ),
    "identifiers": (Level2.PERSONAL_IDENTIFIERS, Level2.DEVICE_IDENTIFIERS),
    "personal identifiers": (Level2.PERSONAL_IDENTIFIERS,),
    "device identifiers": (Level2.DEVICE_IDENTIFIERS,),
    "device information": (Level2.DEVICE_IDENTIFIERS,),
    "contact information": (Level2.PERSONAL_IDENTIFIERS,),
    "location": (Level2.GEOLOCATION,),
    "location information": (Level2.GEOLOCATION,),
    "geolocation": (Level2.GEOLOCATION,),
    "usage data": (Level2.USER_INTERESTS_AND_BEHAVIORS,),
    "usage information": (Level2.USER_INTERESTS_AND_BEHAVIORS,),
    "analytics data": (Level2.USER_INTERESTS_AND_BEHAVIORS,),
    "behavioral data": (Level2.USER_INTERESTS_AND_BEHAVIORS,),
    "communications": (Level2.USER_COMMUNICATIONS,),
    "everything": tuple(Level2),
    "any information": tuple(Level2),
    "information": tuple(Level2),
    "data": tuple(Level2),
}

_RECIPIENT_VOCAB: dict[str, tuple[FlowCell, ...]] = {
    "third-party advertisers": (FlowCell.SHARE_3RD_ATS,),
    "third party advertisers": (FlowCell.SHARE_3RD_ATS,),
    "advertisers": (FlowCell.SHARE_3RD_ATS,),
    "advertising partners": (FlowCell.SHARE_3RD_ATS,),
    "ad networks": (FlowCell.SHARE_3RD_ATS,),
    "trackers": (FlowCell.SHARE_3RD_ATS,),
    "advertising and tracking services": (FlowCell.SHARE_3RD_ATS,),
    "third parties": (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
    "third-party": (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
    "service providers": (FlowCell.SHARE_3RD,),
    "processors": (FlowCell.SHARE_3RD,),
    "partners": (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
    "anyone": (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
    "our analytics providers": (FlowCell.COLLECT_1ST_ATS,),
}

_AUDIENCE_PATTERNS: tuple[tuple[str, tuple[TraceColumn, ...]], ...] = (
    (r"children under 13|users under 13|children\b", (TraceColumn.CHILD,)),
    (
        r"users under 16|minors under 16|under the age of 16",
        (TraceColumn.CHILD, TraceColumn.ADOLESCENT),
    ),
    (
        r"users under 18|minors under 18|under the age of 18",
        (TraceColumn.CHILD, TraceColumn.ADOLESCENT),
    ),
    (r"teens|teenagers|adolescents", (TraceColumn.ADOLESCENT,)),
    (r"adults", (TraceColumn.ADULT,)),
    (r"all users|any user|every user", AGE_COLUMNS),
)

_NEGATIVE_RE = re.compile(
    r"\b(?:do|does|will)\s+not\s+(?:sell|share|disclose|provide)\b", re.IGNORECASE
)
_POSITIVE_RE = re.compile(
    r"\b(?:may\s+)?(?:sell|share|disclose|provide|collect)\b", re.IGNORECASE
)
_SENTENCE_SPLIT_RE = re.compile(r"(?<=[.!?])\s+")


@dataclass
class ParsedPolicy:
    """Result of analyzing one policy document."""

    statements: list[PolicyStatement] = field(default_factory=list)
    unparsed: list[str] = field(default_factory=list)

    def to_model(self, service: str) -> PolicyModel:
        return PolicyModel(service=service, statements=tuple(self.statements))


def _match_vocab(sentence: str, vocabulary: dict) -> tuple:
    """Longest matching vocabulary phrase wins."""
    lowered = sentence.lower()
    best: tuple = ()
    best_length = 0
    for phrase, mapped in vocabulary.items():
        if phrase in lowered and len(phrase) > best_length:
            best, best_length = mapped, len(phrase)
    return best


def _match_audience(sentence: str) -> tuple[TraceColumn, ...]:
    lowered = sentence.lower()
    for pattern, columns in _AUDIENCE_PATTERNS:
        if re.search(pattern, lowered):
            return columns
    return AGE_COLUMNS  # unscoped statements apply to everyone


def parse_sentence(sentence: str) -> PolicyStatement | None:
    """Parse one sentence into a statement, or None if out of grammar."""
    categories = _match_vocab(sentence, _CATEGORY_VOCAB)
    recipients = _match_vocab(sentence, _RECIPIENT_VOCAB)
    if not categories or not recipients:
        return None
    audiences = _match_audience(sentence)
    pairs = tuple(
        (level2, cell) for level2 in categories for cell in recipients
    )
    if _NEGATIVE_RE.search(sentence):
        return PolicyStatement(
            quote=sentence.strip(), audiences=audiences, prohibits=pairs
        )
    if _POSITIVE_RE.search(sentence):
        return PolicyStatement(
            quote=sentence.strip(), audiences=audiences, discloses=pairs
        )
    return None


def parse_policy(text: str) -> ParsedPolicy:
    """Analyze a policy document sentence by sentence."""
    parsed = ParsedPolicy()
    for sentence in _SENTENCE_SPLIT_RE.split(text):
        sentence = sentence.strip()
        if not sentence:
            continue
        statement = parse_sentence(sentence)
        if statement is not None:
            parsed.statements.append(statement)
        elif _POSITIVE_RE.search(sentence) or _NEGATIVE_RE.search(sentence):
            # Sharing-shaped sentence we could not ground: surface it.
            parsed.unparsed.append(sentence)
    return parsed
