"""COPPA/CCPA rule engine (paper §2.1, §4.1).

Encodes the audit logic the paper applies to each service's flows:

* **Pre-consent (logged-out)** — COPPA prohibits collecting personal
  information before the user's age is known; CCPA's willful-disregard
  clause means sharing before age determination is treated as sharing
  with actual knowledge.  Any identifier/personal-information flow in
  the logged-out column raises a concern; flows to (third-party) ATS
  raise a high-severity concern.
* **Protected ages (child < 13 under COPPA, under 16 under CCPA)** —
  sharing identifiers or personal information with third-party ATS
  after consent still raises a concern unless the policy discloses it
  (ATS destinations indicate non-internal-operations purposes).
* **Policy consistency** — observed flows a quoted policy commitment
  rules out are inconsistencies; observed flows the policy simply does
  not mention are undisclosed flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.audit.findings import Finding, FindingKind, Severity
from repro.audit.policy import PolicyModel, policy_for
from repro.flows.dataflow import FlowTable
from repro.model import ALL_COLUMNS, FlowCell, Presence, TraceColumn
from repro.ontology.nodes import Level2

_SHARE_CELLS = (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS)
_PROTECTED_COLUMNS = (TraceColumn.CHILD, TraceColumn.ADOLESCENT)


def _law_for(column: TraceColumn) -> str:
    if column is TraceColumn.CHILD:
        return "COPPA/CCPA"
    if column is TraceColumn.ADOLESCENT:
        return "CCPA"
    return "CCPA"


@dataclass
class LawAuditor:
    """Evaluates one service's flow table against COPPA/CCPA + policy."""

    service: str
    policy: PolicyModel | None = None

    def __post_init__(self) -> None:
        if self.policy is None:
            self.policy = policy_for(self.service)

    # -- individual rules ----------------------------------------------

    def pre_consent_findings(self, flows: FlowTable) -> list[Finding]:
        """§4.1.1: any processing while logged out is pre-consent."""
        findings: list[Finding] = []
        column = TraceColumn.LOGGED_OUT
        for level2 in Level2:
            for cell in FlowCell:
                presence = flows.presence(self.service, level2, column, cell)
                if presence is Presence.NONE:
                    continue
                if cell.is_share:
                    kind = FindingKind.PRE_CONSENT_SHARING
                    severity = Severity.HIGH if cell.is_ats else Severity.CONCERN
                    verb = "shared with"
                else:
                    kind = FindingKind.PRE_CONSENT_COLLECTION
                    severity = Severity.CONCERN
                    verb = "collected by"
                party = {
                    FlowCell.COLLECT_1ST: "first parties",
                    FlowCell.COLLECT_1ST_ATS: "first-party ATS",
                    FlowCell.SHARE_3RD: "third parties",
                    FlowCell.SHARE_3RD_ATS: "third-party ATS",
                }[cell]
                findings.append(
                    Finding(
                        kind=kind,
                        severity=severity,
                        law="COPPA/CCPA",
                        service=self.service,
                        column=column,
                        level2=level2,
                        cell=cell,
                        description=(
                            f"{level2.value} {verb} {party} before consent "
                            f"and age disclosure ({presence.value})"
                        ),
                    )
                )
        return findings

    def protected_age_findings(self, flows: FlowTable) -> list[Finding]:
        """Sharing identifiers/PI of under-16 users with third-party ATS."""
        findings: list[Finding] = []
        for column in _PROTECTED_COLUMNS:
            for level2 in Level2:
                presence = flows.presence(
                    self.service, level2, column, FlowCell.SHARE_3RD_ATS
                )
                if presence is Presence.NONE:
                    continue
                findings.append(
                    Finding(
                        kind=FindingKind.PROTECTED_AGE_ATS_SHARING,
                        severity=Severity.HIGH,
                        law=_law_for(column),
                        service=self.service,
                        column=column,
                        level2=level2,
                        cell=FlowCell.SHARE_3RD_ATS,
                        description=(
                            f"{level2.value} of {column.value} users shared "
                            f"with third-party ATS ({presence.value}); ATS "
                            "destinations indicate non-internal-operations "
                            "purposes requiring opt-in consent"
                        ),
                    )
                )
        return findings

    def policy_findings(self, flows: FlowTable) -> list[Finding]:
        """Undisclosed flows and direct policy inconsistencies."""
        findings: list[Finding] = []
        assert self.policy is not None
        for column in ALL_COLUMNS:
            for level2 in Level2:
                for cell in FlowCell:
                    presence = flows.presence(self.service, level2, column, cell)
                    if presence is Presence.NONE:
                        continue
                    if self.policy.prohibited(column, level2, cell):
                        findings.append(
                            Finding(
                                kind=FindingKind.POLICY_INCONSISTENCY,
                                severity=Severity.HIGH,
                                law="policy",
                                service=self.service,
                                column=column,
                                level2=level2,
                                cell=cell,
                                description=(
                                    f"observed {level2.value} → {cell.value} "
                                    f"contradicts a quoted policy commitment"
                                ),
                            )
                        )
                    elif not self.policy.disclosed(column, level2, cell):
                        findings.append(
                            Finding(
                                kind=FindingKind.UNDISCLOSED_FLOW,
                                severity=Severity.CONCERN,
                                law="policy",
                                service=self.service,
                                column=column,
                                level2=level2,
                                cell=cell,
                                description=(
                                    f"observed {level2.value} → {cell.value} "
                                    "not clearly disclosed in the privacy policy"
                                ),
                            )
                        )
        return findings

    def audit(self, flows: FlowTable) -> list[Finding]:
        """All findings for this service."""
        return (
            self.pre_consent_findings(flows)
            + self.protected_age_findings(flows)
            + self.policy_findings(flows)
        )
