"""Differential analyses across age groups, consent states, platforms.

The heart of DiffAudit (paper step 4): compare data flows between the
child/adolescent/adult columns, between logged-in and logged-out
states, and between web and mobile platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flows.dataflow import FlowTable
from repro.model import AGE_COLUMNS, FlowCell, Presence, TraceColumn
from repro.ontology.nodes import Level2

_CELL_COUNT = len(Level2) * len(FlowCell)


@dataclass(frozen=True)
class CellDifference:
    """One grid cell that differs between two columns."""

    level2: Level2
    cell: FlowCell
    left: Presence
    right: Presence


@dataclass
class AgeDifferentialResult:
    """Grid comparison between two audit columns for one service."""

    service: str
    left: TraceColumn
    right: TraceColumn
    differences: list[CellDifference] = field(default_factory=list)
    similarity: float = 1.0  # fraction of identical cells

    @property
    def identical(self) -> bool:
        return not self.differences


def compare_columns(
    flows: FlowTable, service: str, left: TraceColumn, right: TraceColumn
) -> AgeDifferentialResult:
    """Cell-by-cell comparison of two columns' observed grids."""
    result = AgeDifferentialResult(service=service, left=left, right=right)
    same = 0
    for level2 in Level2:
        for cell in FlowCell:
            left_presence = flows.presence(service, level2, left, cell)
            right_presence = flows.presence(service, level2, right, cell)
            if left_presence == right_presence:
                same += 1
            else:
                result.differences.append(
                    CellDifference(
                        level2=level2,
                        cell=cell,
                        left=left_presence,
                        right=right_presence,
                    )
                )
    result.similarity = same / _CELL_COUNT
    return result


def compare_age_groups(flows: FlowTable, service: str) -> list[AgeDifferentialResult]:
    """Child-vs-adult and adolescent-vs-adult comparisons (§4.1.2).

    The paper's headline differential finding is that these come out
    *similar* — services barely differentiate young users.
    """
    return [
        compare_columns(flows, service, TraceColumn.CHILD, TraceColumn.ADULT),
        compare_columns(flows, service, TraceColumn.ADOLESCENT, TraceColumn.ADULT),
    ]


def logged_out_flows(
    flows: FlowTable, service: str
) -> list[tuple[Level2, FlowCell, Presence]]:
    """Everything observed pre-consent (§4.1.1)."""
    out = []
    for level2 in Level2:
        for cell in FlowCell:
            presence = flows.presence(service, level2, TraceColumn.LOGGED_OUT, cell)
            if presence is not Presence.NONE:
                out.append((level2, cell, presence))
    return out


@dataclass
class PlatformDifferenceResult:
    """Web-only and mobile-only flows for one service (§4.1.2)."""

    service: str
    web_only: list[tuple[Level2, TraceColumn, FlowCell]] = field(default_factory=list)
    mobile_only: list[tuple[Level2, TraceColumn, FlowCell]] = field(default_factory=list)

    @property
    def mobile_only_all_third_party(self) -> bool:
        """The paper's observation: mobile-only flows were all shares."""
        return all(cell.is_share for (_, _, cell) in self.mobile_only)


def platform_differences(flows: FlowTable, service: str) -> PlatformDifferenceResult:
    """Flows observed on exactly one platform."""
    result = PlatformDifferenceResult(service=service)
    for level2 in Level2:
        for column in (*AGE_COLUMNS, TraceColumn.LOGGED_OUT):
            for cell in FlowCell:
                presence = flows.presence(service, level2, column, cell)
                if presence is Presence.WEB_ONLY:
                    result.web_only.append((level2, column, cell))
                elif presence is Presence.MOBILE_ONLY:
                    result.mobile_only.append((level2, column, cell))
    return result
