"""Finding records produced by the audit engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model import FlowCell, TraceColumn
from repro.ontology.nodes import Level2


class Severity(str, enum.Enum):
    INFO = "info"
    CONCERN = "concern"  # warrants further investigation (paper's bar)
    HIGH = "high"  # direct tension with a legal requirement


class FindingKind(str, enum.Enum):
    PRE_CONSENT_COLLECTION = "pre_consent_collection"
    PRE_CONSENT_SHARING = "pre_consent_sharing"
    PROTECTED_AGE_ATS_SHARING = "protected_age_ats_sharing"
    UNDISCLOSED_FLOW = "undisclosed_flow"
    POLICY_INCONSISTENCY = "policy_inconsistency"
    NO_AGE_DIFFERENTIATION = "no_age_differentiation"
    LINKABLE_SHARING = "linkable_sharing"


@dataclass(frozen=True)
class Finding:
    """One audit finding with its evidence."""

    kind: FindingKind
    severity: Severity
    law: str  # "COPPA", "CCPA", "COPPA/CCPA", or "policy"
    service: str
    column: TraceColumn
    description: str
    level2: Level2 | None = None
    cell: FlowCell | None = None
    evidence_fqdns: tuple[str, ...] = field(default=())
    evidence_types: tuple[str, ...] = field(default=())

    def one_line(self) -> str:
        scope = f"{self.service}/{self.column.value}"
        where = f" [{self.level2.value}→{self.cell.value}]" if self.level2 and self.cell else ""
        return f"[{self.severity.value.upper()}] {self.law} {scope}{where}: {self.description}"
