"""Audit report assembly: one service, or the whole corpus."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.audit.differential import (
    AgeDifferentialResult,
    PlatformDifferenceResult,
    compare_age_groups,
    logged_out_flows,
    platform_differences,
)
from repro.audit.findings import Finding, FindingKind, Severity
from repro.audit.laws import LawAuditor
from repro.flows.dataflow import FlowTable
from repro.model import FlowCell, Presence, TraceColumn
from repro.ontology.nodes import Level2


@dataclass
class ServiceAuditReport:
    """Everything the audit concludes about one service."""

    service: str
    findings: list[Finding] = field(default_factory=list)
    age_differentials: list[AgeDifferentialResult] = field(default_factory=list)
    platform: PlatformDifferenceResult | None = None
    logged_out: list[tuple[Level2, FlowCell, Presence]] = field(default_factory=list)

    @property
    def processed_before_consent(self) -> bool:
        """Did the service collect/share anything while logged out?"""
        return bool(self.logged_out)

    @property
    def shared_with_ats_before_consent(self) -> bool:
        return any(
            cell is FlowCell.SHARE_3RD_ATS for (_, cell, _) in self.logged_out
        )

    @property
    def has_policy_inconsistency(self) -> bool:
        return any(
            finding.kind
            in (FindingKind.POLICY_INCONSISTENCY, FindingKind.UNDISCLOSED_FLOW)
            for finding in self.findings
        )

    def findings_by_kind(self) -> Counter:
        return Counter(finding.kind for finding in self.findings)

    def findings_by_severity(self) -> Counter:
        return Counter(finding.severity for finding in self.findings)

    def high_severity(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.HIGH]

    def summary_lines(self) -> list[str]:
        counts = self.findings_by_severity()
        lines = [
            f"=== {self.service} ===",
            f"findings: {len(self.findings)} "
            f"(high: {counts.get(Severity.HIGH, 0)}, "
            f"concern: {counts.get(Severity.CONCERN, 0)})",
            f"pre-consent processing: {self.processed_before_consent}",
            f"pre-consent ATS sharing: {self.shared_with_ats_before_consent}",
        ]
        for differential in self.age_differentials:
            lines.append(
                f"grid similarity {differential.left.value} vs "
                f"{differential.right.value}: {differential.similarity:.2f}"
            )
        if self.platform is not None:
            lines.append(
                f"web-only flows: {len(self.platform.web_only)}, "
                f"mobile-only flows: {len(self.platform.mobile_only)} "
                f"(all shares: {self.platform.mobile_only_all_third_party})"
            )
        return lines


def audit_service(flows: FlowTable, service: str, policy=None) -> ServiceAuditReport:
    """Run the full per-service audit (laws + policy + differentials).

    ``policy`` overrides the built-in disclosure model — required when
    auditing a custom (non-catalog) service.
    """
    auditor = LawAuditor(service=service, policy=policy)
    report = ServiceAuditReport(service=service)
    report.findings = auditor.audit(flows)

    # The paper's "no significant differentiation" finding becomes an
    # explicit finding when the age grids are (near-)identical.
    report.age_differentials = compare_age_groups(flows, service)
    for differential in report.age_differentials:
        if differential.similarity >= 0.9 and differential.left is TraceColumn.CHILD:
            report.findings.append(
                Finding(
                    kind=FindingKind.NO_AGE_DIFFERENTIATION,
                    severity=Severity.CONCERN,
                    law="COPPA/CCPA",
                    service=service,
                    column=TraceColumn.CHILD,
                    description=(
                        f"child and adult data flows are "
                        f"{differential.similarity:.0%} identical — no "
                        "meaningful age-specific treatment"
                    ),
                )
            )
    report.platform = platform_differences(flows, service)
    report.logged_out = logged_out_flows(flows, service)
    return report
