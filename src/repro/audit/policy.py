"""Machine-readable privacy-policy disclosure models (paper §4.1.2).

The paper compared observed data flows against what each service's
privacy policy (fall 2023) disclosed.  Each :class:`PolicyModel`
encodes the quoted statements as *disclosure rules*: for a given
audience (audit column), which ``(level-2 category, flow cell)``
combinations the policy can be read to disclose.  Observed flows
outside the disclosed set are *undisclosed*; observed flows directly
contradicting a quoted commitment are *inconsistencies*.

These models intentionally take the services' statements at face value
the way the paper's analysis does — e.g. Duolingo's "third-party
behavioral tracking is disabled" for under-16 users is modelled as "no
share-to-ATS disclosed for child/adolescent".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model import AGE_COLUMNS, FlowCell, TraceColumn
from repro.ontology.nodes import Level2

_ALL_LEVEL2 = tuple(Level2)
_ALL_CELLS = tuple(FlowCell)
_PROTECTED = (TraceColumn.CHILD, TraceColumn.ADOLESCENT)


@dataclass(frozen=True)
class PolicyStatement:
    """One quoted policy statement with its machine reading."""

    quote: str
    audiences: tuple[TraceColumn, ...]
    discloses: tuple[tuple[Level2, FlowCell], ...] = ()
    prohibits: tuple[tuple[Level2, FlowCell], ...] = ()


def _cells(level2s, cells) -> tuple[tuple[Level2, FlowCell], ...]:
    return tuple((l2, cell) for l2 in level2s for cell in cells)


@dataclass
class PolicyModel:
    """Disclosure model for one service."""

    service: str
    statements: tuple[PolicyStatement, ...] = ()
    # Baseline: every policy discloses first-party collection for the
    # operation of the service once the user consents.
    baseline_collect_disclosed: bool = True

    def disclosed(self, column: TraceColumn, level2: Level2, cell: FlowCell) -> bool:
        """Is this flow disclosed for this audience?

        Nothing is disclosed pre-consent (logged out): the policies all
        condition processing on account relationships, and COPPA/CCPA
        condition it on age knowledge.
        """
        if column is TraceColumn.LOGGED_OUT:
            return False
        if self.prohibited(column, level2, cell):
            return False
        if self.baseline_collect_disclosed and cell is FlowCell.COLLECT_1ST:
            return True
        for statement in self.statements:
            if column in statement.audiences and (level2, cell) in statement.discloses:
                return True
        return False

    def prohibited(self, column: TraceColumn, level2: Level2, cell: FlowCell) -> bool:
        """Does a quoted commitment rule this flow out?"""
        for statement in self.statements:
            if column in statement.audiences and (level2, cell) in statement.prohibits:
                return True
        return False


_POLICIES: dict[str, PolicyModel] = {
    "duolingo": PolicyModel(
        service="duolingo",
        statements=(
            PolicyStatement(
                quote=(
                    "For users under 16, advertisements are set to "
                    "non-personalised and third-party behavioral tracking "
                    "is disabled."
                ),
                audiences=_PROTECTED,
                prohibits=_cells(_ALL_LEVEL2, (FlowCell.SHARE_3RD_ATS,)),
            ),
            PolicyStatement(
                quote="We share usage analytics with processors for all users.",
                audiences=AGE_COLUMNS,
                discloses=_cells(
                    (Level2.USER_INTERESTS_AND_BEHAVIORS, Level2.USER_COMMUNICATIONS),
                    (FlowCell.SHARE_3RD,),
                ),
            ),
        ),
    ),
    "minecraft": PolicyModel(
        service="minecraft",
        statements=(
            PolicyStatement(
                quote=(
                    "We do not deliver personalized advertising to children "
                    "whose birthdate in their Microsoft account identifies "
                    "them as under 18 years of age."
                ),
                audiences=_PROTECTED,
                prohibits=_cells(_ALL_LEVEL2, (FlowCell.SHARE_3RD_ATS,)),
            ),
            PolicyStatement(
                quote=(
                    "Microsoft uses the data we collect for analytics and "
                    "to operate our products, including required service "
                    "data shared with processors."
                ),
                audiences=AGE_COLUMNS,
                discloses=_cells(_ALL_LEVEL2, (FlowCell.COLLECT_1ST_ATS,))
                + _cells(
                    (
                        Level2.DEVICE_IDENTIFIERS,
                        Level2.USER_INTERESTS_AND_BEHAVIORS,
                        Level2.USER_COMMUNICATIONS,
                    ),
                    (FlowCell.SHARE_3RD,),
                ),
            ),
        ),
    ),
    "quizlet": PolicyModel(
        service="quizlet",
        statements=(
            PolicyStatement(
                quote=(
                    "We may use aggregated or de-identified information "
                    "about children for research, analysis, marketing and "
                    "other commercial purposes."
                ),
                audiences=(TraceColumn.CHILD,),
                discloses=_cells(
                    (Level2.USER_INTERESTS_AND_BEHAVIORS,),
                    (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
                ),
            ),
            PolicyStatement(
                quote="We share information with advertising partners for adults.",
                audiences=(TraceColumn.ADOLESCENT, TraceColumn.ADULT),
                discloses=_cells(
                    (
                        Level2.USER_INTERESTS_AND_BEHAVIORS,
                        Level2.DEVICE_IDENTIFIERS,
                    ),
                    (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
                ),
            ),
        ),
    ),
    "roblox": PolicyModel(
        service="roblox",
        statements=(
            PolicyStatement(
                quote=(
                    "We may share non-identifying data of all users "
                    "regardless of their age for purposes such as marketing, "
                    "reporting requirements, and service analytics."
                ),
                audiences=(*AGE_COLUMNS,),
                discloses=_cells(
                    (
                        Level2.USER_INTERESTS_AND_BEHAVIORS,
                        Level2.USER_COMMUNICATIONS,
                    ),
                    (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
                )
                + _cells(_ALL_LEVEL2, (FlowCell.COLLECT_1ST_ATS,)),
            ),
            PolicyStatement(
                quote=(
                    "We have no actual knowledge of selling or sharing the "
                    "Personal Information of minors under 16 years of age."
                ),
                audiences=_PROTECTED,
                prohibits=_cells(
                    (
                        Level2.PERSONAL_IDENTIFIERS,
                        Level2.PERSONAL_CHARACTERISTICS,
                        Level2.GEOLOCATION,
                    ),
                    (FlowCell.SHARE_3RD, FlowCell.SHARE_3RD_ATS),
                ),
            ),
        ),
    ),
    "tiktok": PolicyModel(
        service="tiktok",
        statements=(
            PolicyStatement(
                quote=(
                    "We may share the information that we collect with our "
                    "corporate group or service providers as necessary for "
                    "them to support the internal operations of the TikTok "
                    "service."
                ),
                audiences=(*AGE_COLUMNS,),
                discloses=_cells(
                    (
                        Level2.DEVICE_IDENTIFIERS,
                        Level2.USER_COMMUNICATIONS,
                    ),
                    (FlowCell.SHARE_3RD,),
                )
                + _cells(_ALL_LEVEL2, (FlowCell.COLLECT_1ST_ATS,)),
            ),
            PolicyStatement(
                quote=(
                    "TikTok does not sell information from children to third "
                    "parties and does not share such information with third "
                    "parties for the purposes of cross-context behavioral "
                    "advertising."
                ),
                audiences=(TraceColumn.CHILD,),
                prohibits=_cells(_ALL_LEVEL2, (FlowCell.SHARE_3RD_ATS,)),
            ),
        ),
    ),
    "youtube": PolicyModel(
        service="youtube",
        statements=(
            PolicyStatement(
                quote=(
                    "We collect information including device type and "
                    "settings, log information, and unique identifiers for "
                    "internal operational purposes, personalized content, "
                    "and contextual advertising, including ad frequency "
                    "capping."
                ),
                audiences=(*AGE_COLUMNS,),
                discloses=_cells(_ALL_LEVEL2, (FlowCell.COLLECT_1ST, FlowCell.COLLECT_1ST_ATS)),
            ),
        ),
    ),
}


def policy_for(service: str) -> PolicyModel:
    """The disclosure model of one service's fall-2023 privacy policy."""
    try:
        return _POLICIES[service]
    except KeyError:
        raise KeyError(f"no policy model for {service!r}") from None
