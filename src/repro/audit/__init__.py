"""The differential audit (paper §3.2.1, §4.1).

* :mod:`repro.audit.policy` — machine-readable disclosure models of
  each service's privacy policy (fall 2023 wording quoted in §4.1.2);
* :mod:`repro.audit.laws` — the COPPA/CCPA rule engine deciding which
  observed flows raise compliance concerns;
* :mod:`repro.audit.findings` — finding records and severities;
* :mod:`repro.audit.differential` — cross-age, consent-state and
  platform differential analyses;
* :mod:`repro.audit.report` — per-service and corpus audit reports.
"""

from repro.audit.findings import Finding, FindingKind, Severity
from repro.audit.laws import LawAuditor
from repro.audit.policy import PolicyModel, policy_for
from repro.audit.differential import (
    AgeDifferentialResult,
    PlatformDifferenceResult,
    compare_age_groups,
    logged_out_flows,
    platform_differences,
)
from repro.audit.report import ServiceAuditReport, audit_service
from repro.audit.contextual import (
    Appropriateness,
    CiFlow,
    ci_flow_for,
    judge,
    summarize,
)
from repro.audit.policytext import ParsedPolicy, parse_policy

__all__ = [
    "Appropriateness",
    "CiFlow",
    "ci_flow_for",
    "judge",
    "summarize",
    "ParsedPolicy",
    "parse_policy",
    "Finding",
    "FindingKind",
    "Severity",
    "LawAuditor",
    "PolicyModel",
    "policy_for",
    "AgeDifferentialResult",
    "PlatformDifferenceResult",
    "compare_age_groups",
    "logged_out_flows",
    "platform_differences",
    "ServiceAuditReport",
    "audit_service",
]
