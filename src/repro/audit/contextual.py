"""Contextual-integrity framing of data flows (paper §3.2.1).

"We determine the appropriateness of a data flow based on the user's
age and logged-in/out status (i.e., indicating consent) in context
with COPPA and CCPA.  This can be thought of as a special case of
appropriate information flows in the contextual integrity framework."

Contextual integrity (Nissenbaum 2009) judges information flows by
five parameters: *sender*, *recipient*, *subject*, *information type*,
and *transmission principle*.  This module maps DiffAudit flow
observations into CI tuples and evaluates them against the
COPPA/CCPA-derived norm set, yielding per-flow appropriateness
judgments that complement the audit engine's findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.destinations.party import PartyLabel
from repro.flows.dataflow import FlowObservation
from repro.model import TraceColumn
from repro.ontology import ONTOLOGY


class Recipient(str, enum.Enum):
    """CI recipient roles, derived from the destination's party label."""

    SERVICE_PROVIDER = "service provider"  # first party
    SERVICE_ANALYTICS = "service analytics"  # first-party ATS
    THIRD_PARTY_PROCESSOR = "third-party processor"  # third party
    ADVERTISING_TRACKER = "advertising/tracking service"  # third-party ATS

    @classmethod
    def from_party(cls, party: PartyLabel) -> "Recipient":
        return {
            PartyLabel.FIRST_PARTY: cls.SERVICE_PROVIDER,
            PartyLabel.FIRST_PARTY_ATS: cls.SERVICE_ANALYTICS,
            PartyLabel.THIRD_PARTY: cls.THIRD_PARTY_PROCESSOR,
            PartyLabel.THIRD_PARTY_ATS: cls.ADVERTISING_TRACKER,
        }[party]


class TransmissionPrinciple(str, enum.Enum):
    """Under which principle the flow occurred."""

    NO_CONSENT = "without consent or age knowledge"  # logged out
    PARENTAL_OPT_IN_REQUIRED = "parental opt-in required"  # child
    TEEN_OPT_IN_REQUIRED = "consumer opt-in required"  # adolescent
    NOTICE_AND_CHOICE = "notice and choice"  # adult

    @classmethod
    def from_column(cls, column: TraceColumn) -> "TransmissionPrinciple":
        return {
            TraceColumn.LOGGED_OUT: cls.NO_CONSENT,
            TraceColumn.CHILD: cls.PARENTAL_OPT_IN_REQUIRED,
            TraceColumn.ADOLESCENT: cls.TEEN_OPT_IN_REQUIRED,
            TraceColumn.ADULT: cls.NOTICE_AND_CHOICE,
        }[column]


class Appropriateness(str, enum.Enum):
    APPROPRIATE = "appropriate"
    CONDITIONAL = "conditional"  # appropriate only with valid opt-in
    INAPPROPRIATE = "inappropriate"


@dataclass(frozen=True)
class CiFlow:
    """One information flow as a contextual-integrity tuple."""

    sender: str  # the user's device/app
    recipient: Recipient
    subject: str  # whose information: "child user", "adult user", …
    information_type: str  # level-3 ontology label
    principle: TransmissionPrinciple

    def as_tuple(self) -> tuple[str, str, str, str, str]:
        return (
            self.sender,
            self.recipient.value,
            self.subject,
            self.information_type,
            self.principle.value,
        )


def ci_flow_for(observation: FlowObservation) -> CiFlow:
    """Map a DiffAudit flow observation to its CI tuple."""
    subject = (
        "user of unknown age"
        if observation.column is TraceColumn.LOGGED_OUT
        else f"{observation.column.value} user"
    )
    return CiFlow(
        sender=f"{observation.service} {observation.platform.value} client",
        recipient=Recipient.from_party(observation.party),
        subject=subject,
        information_type=observation.level3.value,
        principle=TransmissionPrinciple.from_column(observation.column),
    )


# Data types plausibly covered by COPPA's "support for internal
# operations" exception when kept first-party.
_INTERNAL_OPERATIONS_TYPES = frozenset(
    {"Network Connection Information", "Service Information"}
)


def judge(flow: CiFlow) -> Appropriateness:
    """COPPA/CCPA-derived norm set over CI tuples.

    * Flows without consent or age knowledge: only internal-operations
      data to the service provider itself is appropriate; identifiers
      and personal information are at best conditional — and any flow
      leaving the first party is inappropriate.
    * Flows about protected-age users to advertising/tracking
      recipients are inappropriate absent opt-in (ATS recipients
      indicate purposes beyond internal operations).
    * First-party flows post-consent are appropriate (notice given);
      third-party processor flows are conditional on disclosures.
    """
    operational = flow.information_type in _INTERNAL_OPERATIONS_TYPES
    if flow.principle is TransmissionPrinciple.NO_CONSENT:
        if flow.recipient in (
            Recipient.ADVERTISING_TRACKER,
            Recipient.THIRD_PARTY_PROCESSOR,
        ):
            return Appropriateness.INAPPROPRIATE
        if flow.recipient is Recipient.SERVICE_ANALYTICS:
            return (
                Appropriateness.CONDITIONAL
                if operational
                else Appropriateness.INAPPROPRIATE
            )
        return (
            Appropriateness.APPROPRIATE
            if operational
            else Appropriateness.CONDITIONAL
        )
    protected = flow.principle in (
        TransmissionPrinciple.PARENTAL_OPT_IN_REQUIRED,
        TransmissionPrinciple.TEEN_OPT_IN_REQUIRED,
    )
    if flow.recipient is Recipient.ADVERTISING_TRACKER:
        return Appropriateness.INAPPROPRIATE if protected else Appropriateness.CONDITIONAL
    if flow.recipient is Recipient.THIRD_PARTY_PROCESSOR:
        return Appropriateness.CONDITIONAL
    return Appropriateness.APPROPRIATE


@dataclass
class CiSummary:
    """Aggregate appropriateness across a service's flows."""

    appropriate: int = 0
    conditional: int = 0
    inappropriate: int = 0

    @property
    def total(self) -> int:
        return self.appropriate + self.conditional + self.inappropriate

    @property
    def inappropriate_fraction(self) -> float:
        return self.inappropriate / self.total if self.total else 0.0


def summarize(observations: list[FlowObservation]) -> CiSummary:
    """Judge every observation and aggregate."""
    summary = CiSummary()
    for observation in observations:
        verdict = judge(ci_flow_for(observation))
        if verdict is Appropriateness.APPROPRIATE:
            summary.appropriate += 1
        elif verdict is Appropriateness.CONDITIONAL:
            summary.conditional += 1
        else:
            summary.inappropriate += 1
    return summary
