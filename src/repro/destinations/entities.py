"""Entity database — the DuckDuckGo Tracker Radar substitute.

Tracker Radar maps commonly contacted third-party domains to their
owning organizations with category and fingerprinting metadata.  Our
:class:`EntityDatabase` offers the same lookups over the simulated
universe; like the real dataset it is *incomplete* — a configurable
fraction of long-tail domains is deliberately absent so the pipeline's
"owner unknown" path is exercised (the paper could not determine the
owner of some domains, §4.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.destinations.dataset import DomainUniverse, Organization, default_universe
from repro.net.psl import esld as esld_of


@dataclass(frozen=True)
class EntityRecord:
    """What Tracker Radar knows about one eSLD."""

    domain: str
    owner_name: str
    categories: tuple[str, ...]
    fingerprinting: int


class EntityDatabase:
    """eSLD → organization lookups with deliberate long-tail gaps."""

    def __init__(
        self,
        universe: DomainUniverse | None = None,
        coverage: float = 0.9,
        seed: int = 7,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be within [0, 1]")
        self._universe = universe or default_universe()
        rng = random.Random(seed)
        self._records: dict[str, EntityRecord] = {}
        for domain in self._universe.eslds():
            org = self._universe.org_of_esld(domain)
            if org is None:
                continue
            # Named orgs are always covered; only the synthesized tail
            # can be missing, mirroring Tracker Radar's head-heavy
            # coverage.
            in_tail = org in self._universe.tail_ats_orgs
            if in_tail and rng.random() > coverage:
                continue
            self._records[domain] = EntityRecord(
                domain=domain,
                owner_name=org.name,
                categories=org.categories,
                fingerprinting=org.fingerprinting,
            )

    def __len__(self) -> int:
        return len(self._records)

    def lookup_esld(self, domain: str) -> EntityRecord | None:
        return self._records.get(domain)

    def lookup_fqdn(self, fqdn: str) -> EntityRecord | None:
        return self.lookup_esld(esld_of(fqdn))

    def owner_of(self, fqdn: str) -> str | None:
        record = self.lookup_fqdn(fqdn)
        return record.owner_name if record else None

    def organizations(self) -> set[str]:
        return {record.owner_name for record in self._records.values()}


@lru_cache(maxsize=1)
def default_entity_db() -> EntityDatabase:
    return EntityDatabase()


def resolve_owner(
    fqdn: str,
    entity_db: EntityDatabase,
    whois_client: "WhoisClient | None" = None,
) -> str | None:
    """Paper §3.2.3 resolution order: Tracker Radar first, whois second."""
    owner = entity_db.owner_of(fqdn)
    if owner is not None:
        return owner
    if whois_client is not None:
        return whois_client.registrant(esld_of(fqdn))
    return None


# Imported late to avoid a cycle in type checkers; whois only needs the
# universe, not the entity DB.
from repro.destinations.whois import WhoisClient  # noqa: E402

__all__ = [
    "EntityDatabase",
    "EntityRecord",
    "default_entity_db",
    "resolve_owner",
    "WhoisClient",
]
