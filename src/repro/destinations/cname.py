"""CNAME-cloaking detection — an extension of the paper's §3.2.3.

The paper labels destinations by the FQDN seen in traffic.  A known
blind spot of FQDN-level labeling (studied by Dimova et al., "The
CNAME of the Game") is *CNAME cloaking*: a tracker served from a
first-party subdomain via a DNS alias — ``metrics.shop.example``
CNAME ``collect.trackerco.net``.  The request looks first-party and
evades FQDN block lists; only resolving the alias reveals the tracker.

This module adds the uncloaking pass: resolve each destination, check
every name on the CNAME chain against the block lists and entity
database, and reclassify.  A synthetic cloaked zone over the simulated
universe exercises the analysis end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.destinations.blocklists import BlockListCollection, default_blocklists
from repro.destinations.dataset import DomainUniverse, default_universe
from repro.destinations.party import DestinationLabeler, PartyLabel
from repro.net.dns import Resolver
from repro.net.psl import esld as esld_of


@dataclass(frozen=True)
class CloakingVerdict:
    """Result of uncloaking one destination."""

    fqdn: str
    cloaked: bool
    chain: tuple[str, ...]
    hidden_target: str | None  # the tracker name the alias hides
    apparent_party: PartyLabel
    effective_party: PartyLabel

    @property
    def evaded_blocklists(self) -> bool:
        """True when FQDN-level labeling missed a tracker."""
        return self.cloaked and not self.apparent_party.is_ats


def uncloak(
    fqdn: str,
    resolver: Resolver,
    labeler: DestinationLabeler,
    blocklists: BlockListCollection | None = None,
) -> CloakingVerdict:
    """Resolve ``fqdn`` and re-label it using its whole CNAME chain."""
    blocklists = blocklists or default_blocklists()
    apparent = labeler.label(fqdn)
    answer = resolver.resolve(fqdn)
    hidden: str | None = None
    for name in answer.chain:
        # A chain hop on a *different* eSLD that the block lists flag
        # is a cloaked tracker.
        if esld_of(name) != (apparent.esld or esld_of(fqdn)) and blocklists.is_ats(name):
            hidden = name
            break
    if hidden is None:
        return CloakingVerdict(
            fqdn=fqdn,
            cloaked=False,
            chain=answer.chain,
            hidden_target=None,
            apparent_party=apparent.party,
            effective_party=apparent.party,
        )
    effective = (
        PartyLabel.FIRST_PARTY_ATS
        if apparent.party.is_first_party
        else PartyLabel.THIRD_PARTY_ATS
    )
    return CloakingVerdict(
        fqdn=fqdn,
        cloaked=True,
        chain=answer.chain,
        hidden_target=hidden,
        apparent_party=apparent.party,
        effective_party=effective,
    )


# ----------------------------------------------------------------------
# Synthetic cloaked zone over the universe.
# ----------------------------------------------------------------------

# First-party-looking subdomain labels trackers typically hide behind.
_CLOAK_LABELS = ("smetrics", "stats", "insight", "telemetry-fp", "trk")


@dataclass
class CloakedZone:
    """The universe's DNS zone, including cloaked tracker aliases."""

    resolver: Resolver = field(default_factory=Resolver)
    cloaked_hosts: dict[str, str] = field(default_factory=dict)  # alias -> tracker


def build_cloaked_zone(
    universe: DomainUniverse | None = None, per_service: int = 3
) -> CloakedZone:
    """Create cloaked aliases under each service's primary domain.

    Each service gets ``per_service`` first-party-subdomain aliases
    pointing (sometimes through a CDN hop) at named ATS trackers —
    the Adobe/Criteo-style setups seen in the wild.
    """
    universe = universe or default_universe()
    zone = CloakedZone()
    trackers = [
        fqdn
        for org in universe.named_ats_orgs
        for fqdn in universe.ats_fqdns()
        if esld_of(fqdn) in org.eslds
    ]
    index = 0
    for service_key, infra in universe.first_party_infra.items():
        primary = infra.organization.eslds[0]
        for position in range(per_service):
            alias = f"{_CLOAK_LABELS[(index + position) % len(_CLOAK_LABELS)]}.{primary}"
            tracker = trackers[(index * 7 + position * 3) % len(trackers)]
            if position % 2:
                # Indirect: alias -> CDN edge -> tracker.
                edge = f"edge{position}.fastly.net"
                zone.resolver.add_cname(alias, edge)
                zone.resolver.add_cname(edge, tracker)
            else:
                zone.resolver.add_cname(alias, tracker)
            zone.cloaked_hosts[alias] = tracker
        index += 1
    return zone


@lru_cache(maxsize=1)
def default_cloaked_zone() -> CloakedZone:
    return build_cloaked_zone()


def audit_cloaking(
    labeler_for,
    zone: CloakedZone | None = None,
) -> list[CloakingVerdict]:
    """Uncloak every alias in the zone.

    ``labeler_for(service_key)`` supplies the per-service labeler; the
    service is inferred from the alias's registered domain.
    """
    zone = zone or default_cloaked_zone()
    universe = default_universe()
    esld_to_service = {
        infra.organization.eslds[0]: key
        for key, infra in universe.first_party_infra.items()
    }
    verdicts = []
    for alias in sorted(zone.cloaked_hosts):
        service_key = esld_to_service[esld_of(alias)]
        verdicts.append(uncloak(alias, zone.resolver, labeler_for(service_key)))
    return verdicts
