"""Simulated whois lookups.

The paper falls back to ``whois`` when Tracker Radar has no entry for
an eSLD (§3.2.3).  Real whois is rate-limited, flaky, and frequently
privacy-redacted; the simulation reproduces those behaviours so the
resolution pipeline handles them: a per-domain deterministic outcome of
*answer*, *redacted*, or *timeout*.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.destinations.dataset import DomainUniverse, default_universe


class WhoisTimeout(TimeoutError):
    """Raised when the simulated registry does not answer."""


@dataclass
class WhoisRecord:
    """Parsed registrant fields of a whois response."""

    domain: str
    registrant_org: str | None
    registrar: str
    redacted: bool


_REGISTRARS = (
    "MarkMonitor Inc.",
    "CSC Corporate Domains",
    "GoDaddy.com, LLC",
    "Namecheap, Inc.",
    "Gandi SAS",
)


@dataclass
class WhoisClient:
    """Deterministic whois: the same domain always behaves the same.

    ``redaction_rate`` and ``timeout_rate`` partition the hash space of
    domain names; large, named organizations always answer (they use
    corporate registrars that publish registrant organizations).
    """

    universe: DomainUniverse = field(default_factory=default_universe)
    redaction_rate: float = 0.25
    timeout_rate: float = 0.05

    def _bucket(self, domain: str) -> float:
        digest = hashlib.sha256(b"whois|" + domain.encode("ascii")).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def query(self, domain: str) -> WhoisRecord:
        """Look a single eSLD up; may raise :class:`WhoisTimeout`."""
        org = self.universe.org_of_esld(domain)
        bucket = self._bucket(domain)
        if org is None:
            raise WhoisTimeout(f"no route to registry for {domain!r}")
        is_tail = org in self.universe.tail_ats_orgs
        if is_tail and bucket < self.timeout_rate:
            raise WhoisTimeout(f"whois query for {domain!r} timed out")
        redacted = is_tail and bucket < self.timeout_rate + self.redaction_rate
        registrar = _REGISTRARS[
            int(self._bucket("registrar|" + domain) * len(_REGISTRARS))
        ]
        return WhoisRecord(
            domain=domain,
            registrant_org=None if redacted else org.name,
            registrar=registrar,
            redacted=redacted,
        )

    def registrant(self, domain: str) -> str | None:
        """Best-effort registrant organization (None on redaction or
        timeout) — the shape the resolution pipeline consumes."""
        try:
            return self.query(domain).registrant_org
        except WhoisTimeout:
            return None
