"""ATS block-list engine (the Firebog collection substitute).

The paper labels a domain as an advertising & tracking service when
*any* of several block lists would block it (§3.2.3).  We implement the
two formats those lists actually use:

* **hosts format** — ``0.0.0.0 ads.example.com`` lines; exact-FQDN
  matches only;
* **domain format** — bare eSLDs/domains, matching the domain itself
  and every subdomain (Pi-hole wildcard semantics).

The default collection is derived from the simulated universe's ground
truth, split across several lists with overlapping but distinct
coverage — like the real Firebog collection, no single list is
complete, and the "any list blocks ⇒ ATS" rule matters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.destinations.dataset import DomainUniverse, default_universe
from repro.net.psl import esld as esld_of


class BlockListParseError(ValueError):
    """Raised for lines that match neither supported format."""


@dataclass
class BlockList:
    """One parsed block list."""

    name: str
    exact_hosts: set[str] = field(default_factory=set)
    domain_rules: set[str] = field(default_factory=set)

    @classmethod
    def from_text(cls, name: str, text: str, fmt: str = "auto") -> "BlockList":
        """Parse hosts-format or domain-format list text.

        ``fmt`` may be ``"hosts"``, ``"domains"``, or ``"auto"`` (sniff
        per line).  Comments (``#``) and blanks are ignored.
        """
        blocklist = cls(name=name)
        for line_number, raw_line in enumerate(text.splitlines(), start=1):
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) == 2 and fmt in ("hosts", "auto"):
                address, host = parts
                if address not in ("0.0.0.0", "127.0.0.1", "::", "::1"):
                    raise BlockListParseError(
                        f"{name}:{line_number}: unexpected address {address!r}"
                    )
                blocklist.exact_hosts.add(host.lower())
            elif len(parts) == 1 and fmt in ("domains", "auto"):
                blocklist.domain_rules.add(parts[0].lower().lstrip("*."))
            else:
                raise BlockListParseError(f"{name}:{line_number}: bad line {raw_line!r}")
        return blocklist

    def blocks(self, fqdn: str) -> bool:
        """Block decision for one FQDN."""
        fqdn = fqdn.lower().rstrip(".")
        if fqdn in self.exact_hosts:
            return True
        # Domain rules block the domain and all its subdomains.
        labels = fqdn.split(".")
        for start in range(len(labels) - 1):
            if ".".join(labels[start:]) in self.domain_rules:
                return True
        return False

    def __len__(self) -> int:
        return len(self.exact_hosts) + len(self.domain_rules)


@dataclass
class BlockListCollection:
    """Several lists with the paper's any-list decision rule."""

    lists: list[BlockList] = field(default_factory=list)

    def is_ats(self, fqdn: str) -> bool:
        """True when *any* list blocks the FQDN (paper §3.2.3)."""
        return any(blocklist.blocks(fqdn) for blocklist in self.lists)

    def blocking_lists(self, fqdn: str) -> list[str]:
        """Names of every list that blocks the FQDN (for reporting)."""
        return [blocklist.name for blocklist in self.lists if blocklist.blocks(fqdn)]

    def is_ats_majority(self, fqdn: str) -> bool:
        """Ablation rule: a majority of lists must agree."""
        if not self.lists:
            return False
        votes = sum(1 for blocklist in self.lists if blocklist.blocks(fqdn))
        return votes * 2 > len(self.lists)

    def __len__(self) -> int:
        return len(self.lists)


def render_hosts_format(hosts: list[str]) -> str:
    """Render FQDNs as a hosts-format list body."""
    lines = ["# repro synthetic hosts list", "# generated from universe ground truth"]
    lines.extend(f"0.0.0.0 {host}" for host in hosts)
    return "\n".join(lines) + "\n"


def render_domain_format(domains: list[str]) -> str:
    lines = ["# repro synthetic domain list"]
    lines.extend(domains)
    return "\n".join(lines) + "\n"


def build_collection(
    universe: DomainUniverse,
    n_lists: int = 5,
    per_list_coverage: float = 0.75,
    seed: int = 99,
) -> BlockListCollection:
    """Derive a Firebog-like collection from universe ground truth.

    Each synthetic list independently samples ``per_list_coverage`` of
    the blocklisted hosts, so individual lists are incomplete but their
    union is (almost surely) complete — the property that makes the
    paper's any-list rule the right call and the majority rule an
    interesting ablation.

    Lists alternate formats: even indices are hosts-format (exact
    FQDNs), odd indices are domain-format over eSLDs (catching every
    subdomain).  Domain-format lists never include first-party-ATS
    eSLDs (``roblox.com`` must not be wholesale-blocked just because
    ``metrics.roblox.com`` is tracking), mirroring how real lists
    handle mixed-use domains with exact host entries instead.
    """
    rng = random.Random(seed)
    ground_truth_hosts = sorted(set(universe.all_blocklisted_hosts()))
    ats_eslds = sorted(set(universe.ats_eslds()))
    first_party_eslds = {
        domain
        for infra in universe.first_party_infra.values()
        for domain in infra.organization.eslds
    }
    # Google's ad domains are first-party for YouTube but must still be
    # block-listed as domains (they are dedicated ATS eSLDs).
    safe_domain_rules = [
        domain
        for domain in ats_eslds
        if domain not in first_party_eslds
        or domain in ("doubleclick.net", "google-analytics.com", "googlesyndication.com",
                      "googletagmanager.com", "googleadservices.com", "admob.com",
                      "clarity.ms")
    ]
    # Dedicated ad eSLDs owned by first parties are blockable as domains.
    extra_domain_rules = [
        "doubleclick.net",
        "google-analytics.com",
        "googlesyndication.com",
        "googletagmanager.com",
        "googleadservices.com",
        "admob.com",
        "clarity.ms",
    ]
    safe_domain_rules = sorted(set(safe_domain_rules) | set(extra_domain_rules))

    names = (
        "AdguardDNS",
        "EasyPrivacy",
        "Prigent-Ads",
        "AdAway",
        "FirebogTick-W3KBL",
        "NoTrack-Trackers",
    )
    lists: list[BlockList] = []
    for index in range(n_lists):
        name = names[index % len(names)]
        # The first list is the "big" aggregate (AdguardDNS-style):
        # complete over our universe, like the union of the Firebog
        # collection over popular trackers.  The rest are independently
        # incomplete, which is what makes the any-list rule (vs the
        # majority-rule ablation) matter.
        coverage = 1.0 if index == 0 else per_list_coverage
        if index % 2 == 0:
            sample = [h for h in ground_truth_hosts if rng.random() < coverage]
            text = render_hosts_format(sample)
            lists.append(BlockList.from_text(name, text, fmt="hosts"))
        else:
            sample = [d for d in safe_domain_rules if rng.random() < coverage]
            text = render_domain_format(sample)
            lists.append(BlockList.from_text(name, text, fmt="domains"))
    return BlockListCollection(lists=lists)


@lru_cache(maxsize=1)
def default_blocklists() -> BlockListCollection:
    return build_collection(default_universe())


def is_ats(fqdn: str) -> bool:
    """Module-level convenience using the default collection."""
    return default_blocklists().is_ats(fqdn)


__all__ = [
    "BlockList",
    "BlockListCollection",
    "BlockListParseError",
    "build_collection",
    "default_blocklists",
    "is_ats",
    "render_hosts_format",
    "render_domain_format",
    "esld_of",
]
