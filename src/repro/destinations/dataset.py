"""The simulated domain universe — Tracker Radar / whois substitute data.

The paper resolves destination ownership with ``whois`` plus the
DuckDuckGo Tracker Radar dataset and labels ATS domains with the
Firebog block-list collection (§3.2.3).  Offline, we embed an
equivalent universe:

* six **first-party organizations** (the audited services) with their
  real-world eSLDs and realistic subdomain fan-out, including the
  blocklisted first-party analytics hosts the paper observed
  (``metrics.roblox.com``, ``clarity.ms``, ``doubleclick.net`` for
  YouTube, …);
* ~60 **named ATS organizations** taken from the paper's Figure 5
  alluvial diagram (PubMatic, MediaMath, Adform, Adjust, Braze, Tapad,
  Index Exchange, …) plus the canonical tracking domains its §4.2
  examples cite (``google-analytics.com``, ``doubleclick.net``,
  ``amazon-adsystem.com``);
* deterministically synthesized **long-tail ATS organizations** so the
  universe reaches the paper's scale (485 third-party ATS domains, 326
  eSLDs, 964 FQDNs across services — Table 1 / §4.2);
* **non-ATS third parties**: CDNs, API platforms, payment and support
  widgets (``cloudfront.net``, ``googleapis.com``, ``vimeocdn.com``…).

Everything is generated with a fixed seed at import, so the universe is
identical across runs and platforms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.net.psl import esld as esld_of


@dataclass(frozen=True)
class Organization:
    """An owning entity, as Tracker Radar models it."""

    name: str
    eslds: tuple[str, ...]
    is_ats: bool = False
    categories: tuple[str, ...] = ()
    fingerprinting: int = 0  # 0-3, Tracker Radar's scale
    country: str = "US"


# --------------------------------------------------------------------
# First-party organizations (the six audited services).
# Subdomain lists model the services' real infrastructure shape; hosts
# listed in `ats_hosts` are the first-party ATS endpoints the paper's
# blocklists flag (Table 4 "Collect 1st ATS" column).
# --------------------------------------------------------------------


@dataclass(frozen=True)
class FirstPartyInfra:
    organization: Organization
    subdomains: dict[str, tuple[str, ...]]  # esld -> subdomain labels
    ats_hosts: tuple[str, ...] = ()  # fully qualified blocklisted hosts

    def fqdns(self) -> list[str]:
        out: list[str] = []
        for domain, labels in self.subdomains.items():
            for label in labels:
                out.append(f"{label}.{domain}" if label else domain)
        return out


_DUOLINGO = FirstPartyInfra(
    organization=Organization(
        name="Duolingo, Inc.", eslds=("duolingo.com", "duolingo.cn"), categories=("Education",)
    ),
    subdomains={
        "duolingo.com": (
            "",
            "www",
            "api",
            "accounts",
            "stories",
            "events",
            "forum",
            "schools",
            "podcast",
            "preview",
            "static",
            "d2",
            "invite",
            "birdbrain",
            "sessions",
            "goals",
            "leaderboards",
            "friends",
            "achievements",
            "notifications",
            "ab",
            "experiments",
            "images",
            "sounds",
            "tts",
        ),
        "duolingo.cn": ("", "www"),
    },
)

_MICROSOFT = FirstPartyInfra(
    organization=Organization(
        name="Microsoft Corporation",
        eslds=(
            "minecraft.net",
            "mojang.com",
            "microsoft.com",
            "xboxlive.com",
            "live.com",
            "clarity.ms",
            "msftconnecttest.com",
        ),
        categories=("Gaming", "Platform"),
    ),
    subdomains={
        "minecraft.net": (
            "",
            "www",
            "api",
            "launcher",
            "launchermeta",
            "session",
            "textures",
            "libraries",
            "resources",
            "education",
            "feedback",
            "bugs",
            "account",
            "profile",
            "realms",
            "pc",
            "marketplace",
            "store",
        ),
        "mojang.com": ("", "www", "api", "authserver", "sessionserver", "account", "skins"),
        "microsoft.com": (
            "www",
            "login",
            "account",
            "graph",
            "vortex.data",
            "browser.events.data",
            "self.events.data",
            "settings-win.data",
            "watson.telemetry",
            "activity.windows",
            "arc.msn",
        ),
        "xboxlive.com": ("", "user.auth", "xsts.auth", "profile", "presence", "achievements"),
        "live.com": ("login", "account", "outlook"),
        "clarity.ms": ("", "www", "c", "i"),
        "msftconnecttest.com": ("www",),
    },
    ats_hosts=(
        "vortex.data.microsoft.com",
        "browser.events.data.microsoft.com",
        "self.events.data.microsoft.com",
        "settings-win.data.microsoft.com",
        "watson.telemetry.microsoft.com",
        "clarity.ms",
        "www.clarity.ms",
        "c.clarity.ms",
        "i.clarity.ms",
    ),
)

_QUIZLET = FirstPartyInfra(
    organization=Organization(
        name="Quizlet, Inc.", eslds=("quizlet.com", "qzlt.io"), categories=("Education",)
    ),
    subdomains={
        "quizlet.com": (
            "",
            "www",
            "api",
            "assets",
            "images",
            "up",
            "sets",
            "folders",
            "classes",
            "live",
            "test",
            "match",
            "learn",
            "flashcards",
            "search",
            "profile",
            "notifications",
            "billing",
            "checkout",
            "events",
            "ab",
            "static",
        ),
        "qzlt.io": ("", "cdn", "api"),
    },
)

_ROBLOX = FirstPartyInfra(
    organization=Organization(
        name="Roblox Corporation",
        eslds=("roblox.com", "rbxcdn.com", "robloxlabs.com"),
        categories=("Gaming",),
    ),
    subdomains={
        "roblox.com": (
            "",
            "www",
            "web",
            "api",
            "apis",
            "auth",
            "accountsettings",
            "accountinformation",
            "avatar",
            "badges",
            "catalog",
            "chat",
            "contacts",
            "develop",
            "economy",
            "economycreatorstats",
            "engagementpayouts",
            "followings",
            "friends",
            "games",
            "gamejoin",
            "gameinternationalization",
            "groups",
            "groupsmoderation",
            "inventory",
            "itemconfiguration",
            "locale",
            "localizationtables",
            "metrics",
            "midas",
            "notifications",
            "points",
            "premiumfeatures",
            "presence",
            "privatemessages",
            "publish",
            "search",
            "share",
            "thumbnails",
            "thumbnailsresizer",
            "trades",
            "translationroles",
            "translations",
            "twostepverification",
            "usermoderation",
            "users",
            "voice",
            "assetdelivery",
            "clientsettings",
            "clientsettingscdn",
            "gamepersistence",
            "adconfiguration",
            "abtesting",
            "realtime",
            "textfilter",
            "teleport",
        ),
        "rbxcdn.com": (
            "c0",
            "c1",
            "c2",
            "c3",
            "c4",
            "c5",
            "c6",
            "c7",
            "t0",
            "t1",
            "t2",
            "t3",
            "t4",
            "t5",
            "tr",
            "images",
            "js",
            "css",
            "static",
            "setup",
            "setup-ak",
            "roblox-setup",
            "assets",
            "contentstore",
            "media",
        ),
        "robloxlabs.com": ("", "www", "api"),
    },
    ats_hosts=(
        "metrics.roblox.com",
        "abtesting.roblox.com",
        "adconfiguration.roblox.com",
        "realtime.roblox.com",
    ),
)

_TIKTOK = FirstPartyInfra(
    organization=Organization(
        name="TikTok Ltd.",
        eslds=(
            "tiktok.com",
            "tiktokv.com",
            "tiktokcdn.com",
            "musical.ly",
            "byteoversea.com",
            "ibytedtos.com",
        ),
        categories=("Social Media",),
        country="CN",
    ),
    subdomains={
        "tiktok.com": (
            "",
            "www",
            "m",
            "api",
            "api16-normal-c-useast1a",
            "api19-normal-useast1a",
            "webcast",
            "mon",
            "mon-va",
            "log",
            "log-va",
            "mcs",
            "ads",
            "analytics",
            "business-api",
            "seller",
            "effects",
            "sf16-website-login",
            "libraweb",
            "starling",
        ),
        "tiktokv.com": ("api16-normal-useast5", "api22-normal-useast2a", "log16-normal-useast5", "mon16-normal-useast5"),
        "tiktokcdn.com": ("p16-sign-va", "p19-sign-va", "v16m-default", "v19-default", "sf16-fe", "lf16-tiktok-web", "obj"),
        "musical.ly": ("", "www", "api2"),
        "byteoversea.com": ("log", "mon", "api", "sdk"),
        "ibytedtos.com": ("p16-tiktokcdn-com.akamaized", "lf16-cdn-tos", "sf16-scmcdn", "im-api"),
    },
    ats_hosts=(
        "mon.tiktok.com",
        "mon-va.tiktok.com",
        "log.tiktok.com",
        "log-va.tiktok.com",
        "mcs.tiktok.com",
        "ads.tiktok.com",
        "analytics.tiktok.com",
        "log.byteoversea.com",
        "mon.byteoversea.com",
        "log16-normal-useast5.tiktokv.com",
        "mon16-normal-useast5.tiktokv.com",
    ),
)

_GOOGLE = FirstPartyInfra(
    organization=Organization(
        name="Google LLC",
        eslds=(
            "youtube.com",
            "youtubekids.com",
            "ytimg.com",
            "googlevideo.com",
            "google.com",
            "gstatic.com",
            "googleapis.com",
            "googleusercontent.com",
            "ggpht.com",
            "gvt1.com",
            "google-analytics.com",
            "doubleclick.net",
            "googletagmanager.com",
            "googlesyndication.com",
            "googleadservices.com",
            "admob.com",
        ),
        categories=("Platform", "Advertising"),
    ),
    subdomains={
        "youtube.com": (
            "",
            "www",
            "m",
            "api",
            "youtubei",
            "accounts",
            "studio",
            "music",
            "tv",
            "kids",
            "consent",
            "feedback",
            "upload",
            "s",
        ),
        "youtubekids.com": ("", "www", "api"),
        "ytimg.com": ("i", "s", "i9", "yt3"),
        "googlevideo.com": (
            "r1---sn-vgqsknez",
            "r2---sn-vgqskne6",
            "r3---sn-vgqsrn76",
            "r4---sn-vgqsrnls",
            "manifest",
        ),
        "google.com": (
            "www",
            "accounts",
            "apis",
            "play",
            "clients1",
            "clients2",
            "clients4",
            "clients6",
            "safebrowsing",
            "update",
            "fonts",
            "id",
            "ogs",
            "lh3",
        ),
        "gstatic.com": ("www", "ssl", "fonts", "encrypted-tbn0"),
        "googleapis.com": (
            "www",
            "fonts",
            "storage",
            "youtubei",
            "oauth2",
            "content",
            "firebaseinstallations",
            "android",
        ),
        "googleusercontent.com": ("lh3", "lh4", "lh5", "yt3"),
        "ggpht.com": ("yt3", "lh3"),
        "gvt1.com": ("redirector", "edgedl"),
        "google-analytics.com": ("www", "ssl", "region1", "analytics"),
        "doubleclick.net": ("", "ad", "static", "stats", "cm", "googleads", "securepubads", "pubads"),
        "googletagmanager.com": ("www",),
        "googlesyndication.com": ("pagead2", "tpc", "googleads"),
        "googleadservices.com": ("www",),
        "admob.com": ("", "www", "e"),
    },
    ats_hosts=(
        "www.google-analytics.com",
        "ssl.google-analytics.com",
        "region1.google-analytics.com",
        "analytics.google-analytics.com",
        "doubleclick.net",
        "ad.doubleclick.net",
        "static.doubleclick.net",
        "stats.doubleclick.net",
        "cm.doubleclick.net",
        "googleads.doubleclick.net",
        "securepubads.doubleclick.net",
        "pubads.doubleclick.net",
        "www.googletagmanager.com",
        "pagead2.googlesyndication.com",
        "tpc.googlesyndication.com",
        "googleads.googlesyndication.com",
        "www.googleadservices.com",
        "e.admob.com",
        "www.admob.com",
        "admob.com",
    ),
)

FIRST_PARTY_INFRA: dict[str, FirstPartyInfra] = {
    "duolingo": _DUOLINGO,
    "minecraft": _MICROSOFT,
    "quizlet": _QUIZLET,
    "roblox": _ROBLOX,
    "tiktok": _TIKTOK,
    "youtube": _GOOGLE,
}

# --------------------------------------------------------------------
# Named third-party ATS organizations (Figure 5 + §4.2 examples).
# --------------------------------------------------------------------

_ATS_SUBDOMAINS = (
    "www",
    "ads",
    "pixel",
    "sync",
    "events",
    "track",
    "cdn",
    "api",
    "collect",
    "beacon",
    "tags",
    "metrics",
    "rtb",
    "bid",
    "match",
    "stats",
    "log",
    "telemetry",
    "ingest",
    "edge",
    "sdk",
    "id",
)

_NAMED_ATS: tuple[tuple[str, tuple[str, ...], tuple[str, ...], int], ...] = (
    # (org name, eslds, categories, fingerprinting)
    ("PubMatic, Inc.", ("pubmatic.com",), ("Ad Motivated Tracking",), 2),
    ("MediaMath, Inc.", ("mathtag.com",), ("Ad Motivated Tracking",), 2),
    ("Adform A/S", ("adform.net", "adformdsp.net"), ("Ad Motivated Tracking",), 2),
    ("Adjust GmbH", ("adjust.com", "adjust.io"), ("Analytics",), 1),
    ("Exponential Interactive", ("exponential.com", "tribalfusion.com"), ("Ad Motivated Tracking",), 1),
    ("Braze, Inc.", ("braze.com", "appboy.com"), ("Analytics",), 1),
    ("Tapad, Inc.", ("tapad.com",), ("Ad Motivated Tracking",), 3),
    ("ProfitWell", ("profitwell.com",), ("Analytics",), 0),
    ("Integral Ad Science", ("adsafeprotected.com", "iasds01.com"), ("Ad Verification",), 2),
    ("ClickTale", ("clicktale.net",), ("Session Replay",), 2),
    ("OpenX Technologies", ("openx.net",), ("Ad Motivated Tracking",), 2),
    ("Snap Inc.", ("snapchat.com", "sc-static.net"), ("Ad Motivated Tracking",), 1),
    ("Index Exchange", ("casalemedia.com", "indexww.com"), ("Ad Motivated Tracking",), 2),
    ("Crownpeak Technology", ("evidon.com", "betrad.com"), ("Consent Management",), 0),
    ("OneTrust", ("onetrust.com", "cookielaw.org"), ("Consent Management",), 0),
    ("NSONE Inc", ("nsone.net",), ("Infrastructure",), 0),
    ("Functional Software", ("sentry.io", "sentry-cdn.com"), ("Error Reporting",), 0),
    ("TripleLift", ("3lift.com", "triplelift.com"), ("Ad Motivated Tracking",), 2),
    ("Ad Lightning, Inc.", ("adlightning.com",), ("Ad Verification",), 1),
    ("AppsFlyer", ("appsflyer.com", "appsflyersdk.com"), ("Attribution",), 2),
    ("Akamai Technologies", ("akamai.net", "akstat.io", "go-mpulse.net"), ("CDN", "Analytics"), 1),
    ("Media.net Advertising", ("media.net",), ("Ad Motivated Tracking",), 2),
    ("Magnite, Inc.", ("rubiconproject.com", "magnite.com"), ("Ad Motivated Tracking",), 2),
    ("Sharethrough, Inc.", ("sharethrough.com", "btlr.com"), ("Ad Motivated Tracking",), 2),
    ("Snowplow Analytics", ("snowplowanalytics.com", "snplow.net"), ("Analytics",), 1),
    ("Apptimize, Inc.", ("apptimize.com",), ("A/B Testing",), 1),
    ("OneSoon Ltd", ("adkernel.com",), ("Ad Motivated Tracking",), 2),
    ("Lemon Inc", ("pangle.io", "pangleglobal.com"), ("Ad Motivated Tracking",), 2),
    ("Amazon Technologies", ("amazon-adsystem.com", "amazonpay.com"), ("Ad Motivated Tracking",), 2),
    ("Adobe Inc.", ("demdex.net", "omtrdc.net", "everesttech.net", "adobedtm.com"), ("Analytics", "Ad Motivated Tracking"), 2),
    ("Meta Platforms, Inc.", ("facebook.com", "facebook.net", "fbcdn.net"), ("Ad Motivated Tracking",), 3),
    ("Criteo SA", ("criteo.com", "criteo.net"), ("Ad Motivated Tracking",), 3),
    ("The Trade Desk", ("adsrvr.org",), ("Ad Motivated Tracking",), 3),
    ("LiveRamp", ("rlcdn.com", "pippio.com"), ("Identity Graph",), 3),
    ("Quantcast", ("quantserve.com", "quantcount.com"), ("Audience Measurement",), 2),
    ("Comscore", ("scorecardresearch.com", "zqtk.net"), ("Audience Measurement",), 2),
    ("Nielsen", ("imrworldwide.com",), ("Audience Measurement",), 2),
    ("Taboola", ("taboola.com",), ("Native Advertising",), 2),
    ("Outbrain", ("outbrain.com",), ("Native Advertising",), 2),
    ("AppLovin", ("applovin.com", "applvn.com"), ("Mobile Advertising",), 2),
    ("Unity Technologies", ("unity3d.com", "unityads.com"), ("Mobile Advertising",), 1),
    ("ironSource", ("ironsrc.com", "supersonicads.com"), ("Mobile Advertising",), 2),
    ("Vungle", ("vungle.com",), ("Mobile Advertising",), 1),
    ("Chartboost", ("chartboost.com",), ("Mobile Advertising",), 1),
    ("InMobi", ("inmobi.com", "inmobicdn.net"), ("Mobile Advertising",), 2),
    ("Smaato", ("smaato.net",), ("Mobile Advertising",), 2),
    ("Mixpanel", ("mixpanel.com", "mxpnl.com"), ("Analytics",), 1),
    ("Amplitude", ("amplitude.com",), ("Analytics",), 1),
    ("Segment.io", ("segment.io", "segment.com"), ("Analytics",), 1),
    ("Branch Metrics", ("branch.io", "app.link"), ("Attribution",), 2),
    ("Kochava", ("kochava.com",), ("Attribution",), 2),
    ("Singular Labs", ("singular.net",), ("Attribution",), 1),
    ("Bugsnag", ("bugsnag.com",), ("Error Reporting",), 0),
    ("New Relic", ("newrelic.com", "nr-data.net"), ("Performance Monitoring",), 1),
    ("Datadog", ("datadoghq.com", "datadoghq-browser-agent.com"), ("Performance Monitoring",), 0),
    ("Hotjar", ("hotjar.com", "hotjar.io"), ("Session Replay",), 2),
    ("FullStory", ("fullstory.com",), ("Session Replay",), 2),
    ("Heap", ("heap.io", "heapanalytics.com"), ("Analytics",), 1),
    ("Pendo", ("pendo.io",), ("Analytics",), 1),
    ("Optimizely", ("optimizely.com",), ("A/B Testing",), 1),
    ("LaunchDarkly", ("launchdarkly.com",), ("A/B Testing",), 0),
    ("Moat (Oracle)", ("moatads.com", "moatpixel.com"), ("Ad Verification",), 2),
    ("DoubleVerify", ("doubleverify.com", "dvtps.com"), ("Ad Verification",), 2),
    ("ID5", ("id5-sync.com",), ("Identity Graph",), 3),
    ("33Across", ("33across.com",), ("Ad Motivated Tracking",), 2),
    ("Lotame", ("crwdcntrl.net",), ("Ad Motivated Tracking",), 3),
    ("BlueKai (Oracle)", ("bluekai.com", "bkrtx.com"), ("Ad Motivated Tracking",), 3),
    ("Permutive", ("permutive.com", "permutive.app"), ("Audience Measurement",), 1),
    ("Parse.ly", ("parsely.com",), ("Analytics",), 1),
    ("Chartbeat", ("chartbeat.com", "chartbeat.net"), ("Analytics",), 1),
)

# --------------------------------------------------------------------
# Named non-ATS third parties (CDNs, APIs, widgets) — §4.2 examples.
# --------------------------------------------------------------------

_CDN_SUBDOMAINS = ("", "www", "cdn", "static", "assets", "edge", "img", "media")

_NAMED_NON_ATS: tuple[tuple[str, tuple[str, ...], tuple[str, ...]], ...] = (
    ("Amazon Web Services", ("cloudfront.net", "amazonaws.com"), ("CDN", "Cloud")),
    ("Vimeo, Inc.", ("vimeocdn.com", "vimeo.com"), ("Video CDN",)),
    ("Cloudflare, Inc.", ("cloudflare.com", "cdnjs.com", "jsdelivr.net"), ("CDN",)),
    ("Fastly, Inc.", ("fastly.net", "fastlylb.net"), ("CDN",)),
    ("jQuery Foundation", ("jquery.com",), ("CDN",)),
    ("Bootstrap", ("bootstrapcdn.com",), ("CDN",)),
    ("Fonticons, Inc.", ("fontawesome.com",), ("CDN",)),
    ("Stripe, Inc.", ("stripe.com", "stripe.network"), ("Payments",)),
    ("PayPal, Inc.", ("paypal.com", "paypalobjects.com"), ("Payments",)),
    ("Braintree", ("braintreegateway.com",), ("Payments",)),
    ("Zendesk", ("zendesk.com", "zdassets.com"), ("Support",)),
    ("Intercom", ("intercom.io", "intercomcdn.com"), ("Support",)),
    ("Twilio", ("twilio.com",), ("Messaging",)),
    ("SendGrid", ("sendgrid.net",), ("Messaging",)),
    ("hCaptcha", ("hcaptcha.com",), ("Security",)),
    ("GeeTest", ("geetest.com",), ("Security",)),
    ("Arkose Labs", ("arkoselabs.com", "funcaptcha.com"), ("Security",)),
    ("MaxMind", ("maxmind.com",), ("Geolocation API",)),
    ("ipify", ("ipify.org",), ("Geolocation API",)),
    ("JW Player", ("jwplayer.com", "jwpcdn.com"), ("Video",)),
    ("Brightcove", ("brightcove.com", "brightcove.net"), ("Video",)),
    ("Wistia", ("wistia.com", "wistia.net"), ("Video",)),
    ("Imgix", ("imgix.net",), ("Image CDN",)),
    ("Cloudinary", ("cloudinary.com",), ("Image CDN",)),
    ("Algolia", ("algolia.net", "algolianet.com"), ("Search API",)),
    ("Contentful", ("contentful.com", "ctfassets.net"), ("CMS",)),
    ("Firebase (Google)", ("firebaseio.com",), ("Cloud",)),
    ("GitHub, Inc.", ("githubusercontent.com", "github.io"), ("Hosting",)),
    ("Typekit (Adobe)", ("typekit.net",), ("Fonts",)),
    ("Unpkg", ("unpkg.com",), ("CDN",)),
    ("Gravatar (Automattic)", ("gravatar.com",), ("Avatars",)),
    ("Giphy", ("giphy.com",), ("Media API",)),
    ("Tenor (Google)", ("tenor.com",), ("Media API",)),
    ("OpenWeather", ("openweathermap.org",), ("API",)),
    ("RecurlyJS", ("recurly.com",), ("Payments",)),
    ("StatusPage", ("statuspage.io",), ("Status",)),
    ("PagerDuty", ("pagerduty.com",), ("Status",)),
    ("Let's Encrypt OCSP", ("lencr.org",), ("PKI",)),
    ("DigiCert OCSP", ("digicert.com",), ("PKI",)),
    ("Apple, Inc.", ("apple.com", "mzstatic.com"), ("Platform",)),
)

# Word lists for the deterministic long-tail ATS synthesizer.
_TAIL_PREFIXES = (
    "ad", "pix", "trk", "aud", "bid", "tag", "data", "sig", "metric", "conv",
    "reach", "spark", "pulse", "quant", "vector", "prism", "nova", "zephyr",
    "atlas", "orbit", "lumen", "cipher", "vertex", "matrix", "echo", "flux",
    "drift", "ember", "onyx", "argo", "helix", "krypto", "meteor", "quark",
    "raven", "sable", "tundra", "umbra", "vortex", "wisp", "xenon", "yonder",
    "zenith", "alpha", "beacon", "cobalt", "delta", "epsilon", "fathom",
)
_TAIL_SUFFIXES = (
    "metrics", "signal", "track", "audience", "exchange", "media", "ads",
    "pixel", "graph", "lift", "serve", "sync", "mind", "wise", "ology",
    "scope", "grid", "works", "labs", "dsp", "ssp", "tag", "data", "iq",
)
_TAIL_TLDS = ("com", "net", "io", "co", "ai", "tv", "me")
_TAIL_COMPANY_SUFFIXES = (" Inc.", " Ltd.", " GmbH", " LLC", ", Inc.", " SA", " Corp.")
_TAIL_CATEGORIES = (
    ("Ad Motivated Tracking",),
    ("Analytics",),
    ("Audience Measurement",),
    ("Mobile Advertising",),
    ("Attribution",),
    ("Session Replay",),
)

_UNIVERSE_SEED = 20231001  # fall 2023, when the paper collected data
_N_TAIL_ATS_ORGS = 280


def _synthesize_tail_ats(rng: random.Random) -> list[Organization]:
    """Deterministically build the long-tail ATS organizations."""
    organizations: list[Organization] = []
    seen_domains: set[str] = set()
    while len(organizations) < _N_TAIL_ATS_ORGS:
        prefix = rng.choice(_TAIL_PREFIXES)
        suffix = rng.choice(_TAIL_SUFFIXES)
        tld = rng.choice(_TAIL_TLDS)
        base = f"{prefix}{suffix}"
        domain = f"{base}.{tld}"
        if domain in seen_domains:
            continue
        seen_domains.add(domain)
        eslds = [domain]
        if rng.random() < 0.15:  # some orgs own a second, CDN-ish domain
            alt = f"{base}-cdn.{rng.choice(_TAIL_TLDS)}"
            if alt not in seen_domains:
                seen_domains.add(alt)
                eslds.append(alt)
        name = base.capitalize() + rng.choice(_TAIL_COMPANY_SUFFIXES)
        organizations.append(
            Organization(
                name=name,
                eslds=tuple(eslds),
                is_ats=True,
                categories=rng.choice(_TAIL_CATEGORIES),
                fingerprinting=rng.randint(0, 3),
            )
        )
    return organizations


class DomainUniverse:
    """All organizations, eSLDs and FQDNs in the simulated internet.

    Exposes the pools the traffic generator draws from and the ground
    truth the entity database / blocklists are derived from.
    """

    def __init__(self, seed: int = _UNIVERSE_SEED) -> None:
        rng = random.Random(seed)
        self.first_party_infra = dict(FIRST_PARTY_INFRA)

        self.named_ats_orgs = [
            Organization(name=name, eslds=eslds, is_ats=True, categories=cats, fingerprinting=fp)
            for name, eslds, cats, fp in _NAMED_ATS
        ]
        self.tail_ats_orgs = _synthesize_tail_ats(rng)
        self.non_ats_orgs = [
            Organization(name=name, eslds=eslds, is_ats=False, categories=cats)
            for name, eslds, cats in _NAMED_NON_ATS
        ]

        self._org_by_esld: dict[str, Organization] = {}
        for infra in self.first_party_infra.values():
            for domain in infra.organization.eslds:
                self._org_by_esld[domain] = infra.organization
        for org in (*self.named_ats_orgs, *self.tail_ats_orgs, *self.non_ats_orgs):
            for domain in org.eslds:
                self._org_by_esld.setdefault(domain, org)

        # FQDN pools -------------------------------------------------
        self._ats_fqdns: list[str] = []
        for org in (*self.named_ats_orgs, *self.tail_ats_orgs):
            for domain in org.eslds:
                count = rng.randint(3, 6)
                labels = rng.sample(_ATS_SUBDOMAINS, count)
                self._ats_fqdns.extend(f"{label}.{domain}" for label in labels)
        self._non_ats_fqdns: list[str] = []
        for org in self.non_ats_orgs:
            for domain in org.eslds:
                count = rng.randint(2, 4)
                labels = rng.sample(_CDN_SUBDOMAINS, count)
                self._non_ats_fqdns.extend(
                    f"{label}.{domain}" if label else domain for label in labels
                )
        self._first_party_fqdns: dict[str, list[str]] = {
            service: infra.fqdns() for service, infra in self.first_party_infra.items()
        }
        self._first_party_ats_hosts: dict[str, tuple[str, ...]] = {
            service: infra.ats_hosts for service, infra in self.first_party_infra.items()
        }

    # -- organization lookups ----------------------------------------

    def organizations(self) -> list[Organization]:
        seen: dict[str, Organization] = {}
        for org in self._org_by_esld.values():
            seen.setdefault(org.name, org)
        return list(seen.values())

    def org_of_esld(self, domain: str) -> Organization | None:
        return self._org_by_esld.get(domain)

    def org_of_fqdn(self, fqdn: str) -> Organization | None:
        return self.org_of_esld(esld_of(fqdn))

    def eslds(self) -> list[str]:
        return list(self._org_by_esld)

    # -- FQDN pools ---------------------------------------------------

    def ats_fqdns(self) -> list[str]:
        """Third-party ATS FQDN pool (stable order)."""
        return list(self._ats_fqdns)

    def non_ats_third_party_fqdns(self) -> list[str]:
        return list(self._non_ats_fqdns)

    def first_party_fqdns(self, service: str) -> list[str]:
        return list(self._first_party_fqdns[service])

    def first_party_ats_hosts(self, service: str) -> tuple[str, ...]:
        """First-party hosts that the blocklists flag as ATS."""
        return self._first_party_ats_hosts[service]

    def all_blocklisted_hosts(self) -> list[str]:
        """Everything the block lists should flag: all third-party ATS
        FQDNs (and their eSLDs, as domain rules) plus first-party ATS
        hosts."""
        hosts: list[str] = list(self._ats_fqdns)
        for service in self._first_party_ats_hosts:
            hosts.extend(self._first_party_ats_hosts[service])
        return hosts

    def ats_eslds(self) -> list[str]:
        out: list[str] = []
        for org in (*self.named_ats_orgs, *self.tail_ats_orgs):
            out.extend(org.eslds)
        return out


@lru_cache(maxsize=1)
def default_universe() -> DomainUniverse:
    """The process-wide deterministic universe."""
    return DomainUniverse()
