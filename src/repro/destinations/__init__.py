"""Destination analysis (paper §3.2.3).

Given a packet destination FQDN this package answers, in order:

1. what is the eSLD? (:mod:`repro.net.psl` via :mod:`repro.destinations.esld`)
2. who owns it? (:mod:`repro.destinations.entities` — the DuckDuckGo
   Tracker Radar substitute — with :mod:`repro.destinations.whois` as
   fallback)
3. is it an advertising & tracking service? (:mod:`repro.destinations.blocklists`)
4. is it first or third party relative to the audited service?
   (:mod:`repro.destinations.party`)

The simulated domain universe itself (organizations, eSLDs, FQDNs)
lives in :mod:`repro.destinations.dataset` and is shared with the
traffic generator.
"""

from repro.destinations.dataset import (
    DomainUniverse,
    Organization,
    default_universe,
)
from repro.destinations.entities import EntityDatabase, default_entity_db
from repro.destinations.blocklists import BlockList, BlockListCollection, default_blocklists
from repro.destinations.party import DestinationLabel, DestinationLabeler, PartyLabel
from repro.destinations.whois import WhoisClient

__all__ = [
    "DomainUniverse",
    "Organization",
    "default_universe",
    "EntityDatabase",
    "default_entity_db",
    "BlockList",
    "BlockListCollection",
    "default_blocklists",
    "DestinationLabel",
    "DestinationLabeler",
    "PartyLabel",
    "WhoisClient",
]
