"""Tranco-style popularity ranking of the domain universe (paper §2.2).

"The websites of these six services are among the most popular on the
top 1M Tranco list at the time this work was conducted (Fall 2023):
Roblox, TikTok, and YouTube were among the top 100."

A deterministic popularity ranking over every eSLD in the simulated
universe: service eSLDs at their real-world-shaped ranks, big shared
trackers high, long-tail trackers spread across the remainder of the
top 1M.  Used by selection/reporting and as a popularity prior for
anything that wants one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from repro.destinations.dataset import default_universe

_TOP_LIST_SIZE = 1_000_000

# Fall-2023-shaped ranks for the audited services' primary domains.
_PINNED_RANKS: dict[str, int] = {
    "youtube.com": 2,
    "google.com": 1,
    "tiktok.com": 36,
    "roblox.com": 64,
    "duolingo.com": 890,
    "quizlet.com": 480,
    "minecraft.net": 1_850,
    "googleapis.com": 7,
    "doubleclick.net": 22,
    "google-analytics.com": 18,
    "googletagmanager.com": 15,
    "facebook.com": 3,
    "gstatic.com": 9,
    "cloudfront.net": 30,
    "amazonaws.com": 25,
    "googlevideo.com": 11,
    "microsoft.com": 5,
    "live.com": 16,
    "xboxlive.com": 940,
    "mojang.com": 2_600,
}


@dataclass(frozen=True)
class TrancoEntry:
    domain: str
    rank: int


class TrancoList:
    """Rank lookups over the universe's eSLDs."""

    def __init__(self) -> None:
        universe = default_universe()
        self._ranks: dict[str, int] = {}
        taken = set(_PINNED_RANKS.values())
        for domain in universe.eslds():
            pinned = _PINNED_RANKS.get(domain)
            if pinned is not None:
                self._ranks[domain] = pinned
                continue
            # Deterministic spread across 1K..1M, skipping collisions.
            digest = hashlib.sha256(b"tranco|" + domain.encode()).digest()
            rank = 1_000 + int.from_bytes(digest[:4], "big") % (_TOP_LIST_SIZE - 1_000)
            while rank in taken:
                rank += 1
            taken.add(rank)
            self._ranks[domain] = rank

    def rank_of(self, domain: str) -> int | None:
        """The domain's rank, or None when outside the top 1M."""
        return self._ranks.get(domain)

    def top(self, n: int) -> list[TrancoEntry]:
        entries = sorted(self._ranks.items(), key=lambda item: item[1])[:n]
        return [TrancoEntry(domain=d, rank=r) for d, r in entries]

    def in_top(self, domain: str, n: int) -> bool:
        rank = self.rank_of(domain)
        return rank is not None and rank <= n

    def __len__(self) -> int:
        return len(self._ranks)


@lru_cache(maxsize=1)
def default_tranco() -> TrancoList:
    return TrancoList()
