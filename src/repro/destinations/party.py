"""First/third-party and ATS labeling of packet destinations.

Paper §3.2.3: a domain is *first party* when it matches the audited
service's name or its parent organization owns it; otherwise it is a
*third party*.  Independently, block lists decide whether it is an ATS.
The cross product yields the four destination classes of Table 4:
first party, first party ATS, third party, third party ATS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.destinations.blocklists import BlockListCollection, default_blocklists
from repro.destinations.entities import EntityDatabase, default_entity_db
from repro.destinations.whois import WhoisClient
from repro.net.psl import esld as esld_of


class PartyLabel(str, enum.Enum):
    FIRST_PARTY = "first party"
    FIRST_PARTY_ATS = "first party ATS"
    THIRD_PARTY = "third party"
    THIRD_PARTY_ATS = "third party ATS"

    @property
    def is_first_party(self) -> bool:
        return self in (PartyLabel.FIRST_PARTY, PartyLabel.FIRST_PARTY_ATS)

    @property
    def is_third_party(self) -> bool:
        return not self.is_first_party

    @property
    def is_ats(self) -> bool:
        return self in (PartyLabel.FIRST_PARTY_ATS, PartyLabel.THIRD_PARTY_ATS)


@dataclass(frozen=True)
class DestinationLabel:
    """Full destination annotation for one FQDN."""

    fqdn: str
    esld: str
    party: PartyLabel
    owner: str | None

    @property
    def is_ats(self) -> bool:
        return self.party.is_ats


@dataclass
class DestinationLabeler:
    """Labels destinations relative to one audited service.

    ``service_names`` are name fragments matched against the eSLD
    (``roblox`` matches ``roblox.com`` *and* ``rbxcdn.com`` only via
    the owner check, which is why both signals exist, as in the paper).
    """

    service_names: tuple[str, ...]
    first_party_owner: str
    entity_db: EntityDatabase = field(default_factory=default_entity_db)
    blocklists: BlockListCollection = field(default_factory=default_blocklists)
    whois_client: WhoisClient | None = None

    def __post_init__(self) -> None:
        self._cache: dict[str, DestinationLabel] = {}

    def _owner_of(self, fqdn: str) -> str | None:
        owner = self.entity_db.owner_of(fqdn)
        if owner is None and self.whois_client is not None:
            owner = self.whois_client.registrant(esld_of(fqdn))
        return owner

    def _is_first_party(self, fqdn: str, owner: str | None) -> bool:
        domain = esld_of(fqdn) or fqdn
        base_label = domain.split(".")[0]
        for fragment in self.service_names:
            fragment = fragment.lower()
            if fragment and (fragment in base_label or base_label in fragment):
                return True
        return owner is not None and owner == self.first_party_owner

    def label(self, fqdn: str) -> DestinationLabel:
        """Label one destination; results are memoized per labeler."""
        fqdn = fqdn.lower().rstrip(".")
        cached = self._cache.get(fqdn)
        if cached is not None:
            return cached
        owner = self._owner_of(fqdn)
        first = self._is_first_party(fqdn, owner)
        ats = self.blocklists.is_ats(fqdn)
        if first and ats:
            party = PartyLabel.FIRST_PARTY_ATS
        elif first:
            party = PartyLabel.FIRST_PARTY
        elif ats:
            party = PartyLabel.THIRD_PARTY_ATS
        else:
            party = PartyLabel.THIRD_PARTY
        result = DestinationLabel(fqdn=fqdn, esld=esld_of(fqdn), party=party, owner=owner)
        self._cache[fqdn] = result
        return result

    def label_many(self, fqdns: list[str]) -> dict[str, DestinationLabel]:
        return {fqdn: self.label(fqdn) for fqdn in fqdns}
