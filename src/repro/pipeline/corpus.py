"""Corpus processing: generate → capture → parse back.

The pipeline's contract with the simulator is artifact-shaped: traces
cross the boundary as HAR JSON and binary PCAP + key-log bytes, so the
analysis side exercises exactly the parsing the paper's pipeline ran
on its real captures.  Traces stream one at a time to keep memory flat
at full scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.capture.base import TraceMeta
from repro.capture.decrypt import decrypt_mobile_artifact
from repro.capture.devtools import DevToolsCapture
from repro.capture.pcapdroid import PcapdroidCapture
from repro.capture.proxyman import ProxymanCapture
from repro.fsutil import atomic_write_bytes, atomic_write_text
from repro.model import Platform
from repro.net.har import Har, har_from_json, har_to_json, write_har
from repro.net.http import HttpRequest
from repro.services.generator import CorpusConfig, RawTrace, TrafficGenerator


@dataclass
class ParsedTrace:
    """One trace unit after the capture → parse round trip."""

    meta: TraceMeta
    requests: list[HttpRequest] = field(default_factory=list)
    opaque_hosts: list[str] = field(default_factory=list)  # SNI of undecryptable flows
    packet_count: int = 0
    flow_count: int = 0
    undecryptable_flows: int = 0

    def contacted_hosts(self) -> set[str]:
        hosts = {request.url.host for request in self.requests}
        hosts.update(host for host in self.opaque_hosts if host)
        return hosts


def parsed_trace_from_har(meta: TraceMeta, har: Har) -> ParsedTrace:
    """Interpret a parsed HAR document as one trace unit.

    Shared by the in-memory round trip and the artifact replay path,
    so both count packets (HAR entries) and TCP flows (distinct
    ``connection`` ids) identically.
    """
    connections = {entry.connection for entry in har.entries if entry.connection}
    return ParsedTrace(
        meta=meta,
        requests=har.outgoing_requests(),
        packet_count=len(har.entries),
        flow_count=len(connections),
    )


def parsed_trace_from_mobile(
    meta: TraceMeta, pcap_source, keylog_text: str
) -> ParsedTrace:
    """Decrypt and parse a PCAP + key-log pair into one trace unit.

    Shared by the in-memory round trip and the artifact replay path.
    ``pcap_source`` is anything :func:`decrypt_mobile_artifact`
    accepts — raw bytes (streamed zero-copy) or a filesystem path
    (memory-mapped, so replay never reads whole captures into Python
    byte strings).  An empty key log is valid: every TLS flow then
    surfaces as an opaque contact, the way fully pinned traffic does.
    """
    decryption = decrypt_mobile_artifact(pcap_source, keylog_text)
    return ParsedTrace(
        meta=meta,
        requests=[item.request for item in decryption.requests],
        opaque_hosts=[contact.host for contact in decryption.opaque],
        packet_count=decryption.packet_count,
        flow_count=decryption.flow_count,
        undecryptable_flows=decryption.undecryptable_flows,
    )


@dataclass
class CorpusProcessor:
    """Streams :class:`ParsedTrace` records for a corpus config.

    With ``artifacts_dir`` set, every capture artifact is also written
    to disk (``<trace>.har`` / ``<trace>.pcap`` + ``<trace>.keylog``)
    the way the study archived its raw data.
    """

    config: CorpusConfig = field(default_factory=CorpusConfig)
    artifacts_dir: Path | None = None
    # Contiguous [start, stop) slice of each configured service's trace
    # units (the engine's sub-shard unit); None processes everything.
    # Skipped units still advance cross-unit generator state, so a
    # sliced run's traces are byte-identical to a whole run's.
    unit_range: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        self.generator = TrafficGenerator(self.config)
        self._devtools = DevToolsCapture()
        self._proxyman = ProxymanCapture()
        self._pcapdroid = PcapdroidCapture()
        if self.artifacts_dir is not None:
            self.artifacts_dir = Path(self.artifacts_dir)
            self.artifacts_dir.mkdir(parents=True, exist_ok=True)

    # -- per-platform round trips ---------------------------------------

    def process_web(self, trace: RawTrace) -> ParsedTrace:
        capture = (
            self._proxyman if trace.platform is Platform.DESKTOP else self._devtools
        )
        artifact = capture.capture(trace)
        if self.artifacts_dir is not None:
            write_har(artifact.har, self.artifacts_dir / f"{artifact.meta.name}.har")
        # Round-trip through HAR JSON: the analysis side reads the
        # serialized form, never the in-memory capture objects.
        har = har_from_json(har_to_json(artifact.har))
        return parsed_trace_from_har(artifact.meta, har)

    def capture_mobile(self, trace: RawTrace):
        """Capture (and, when configured, impair) one mobile trace.

        Returns ``(meta, pcap, keylog_text)`` — the wire-level view
        shared by the batch round trip below and the live streaming
        source, so both see bit-identical capture bytes.
        """
        artifact = self._pcapdroid.capture(trace)
        pcap = artifact.pcap
        if self.config.impair is not None:
            # Same per-trace seed derivation as the live streaming
            # source, so `generate --impair` artifacts replay to the
            # exact result an in-memory impaired audit produces.
            from repro.stream.impair import (
                impair_pcap,
                impairment_profile,
                trace_impair_seed,
            )

            pcap = impair_pcap(
                pcap,
                impairment_profile(self.config.impair),
                trace_impair_seed(self.config.seed, artifact.meta.name),
            )
        return artifact.meta, pcap, artifact.keylog_text()

    def _process_mobile(self, trace: RawTrace) -> ParsedTrace:
        meta, pcap, keylog_text = self.capture_mobile(trace)
        pcap_bytes = pcap.to_bytes()
        if self.artifacts_dir is not None:
            atomic_write_bytes(self.artifacts_dir / f"{meta.name}.pcap", pcap_bytes)
            atomic_write_text(self.artifacts_dir / f"{meta.name}.keylog", keylog_text)
        return parsed_trace_from_mobile(meta, pcap_bytes, keylog_text)

    def process_trace(self, trace: RawTrace) -> ParsedTrace:
        if trace.platform is Platform.MOBILE:
            return self._process_mobile(trace)
        return self.process_web(trace)

    def __iter__(self) -> Iterator[ParsedTrace]:
        for trace in self.generator.generate_corpus(unit_range=self.unit_range):
            yield self.process_trace(trace)
