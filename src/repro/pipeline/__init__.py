"""End-to-end DiffAudit pipeline (paper Figure 1).

* :mod:`repro.pipeline.corpus` — generate traces, capture them into
  HAR/PCAP artifacts, and parse them back (steps 1–2);
* :mod:`repro.pipeline.dataset` — the Table 1 dataset summary;
* :mod:`repro.pipeline.engine` — the parallel sharded engine running
  steps 1–3 per service (sequential, thread-pool or process-pool
  executors);
* :mod:`repro.pipeline.profile` — stage-level wall-time attribution
  for the audit hot path (``--profile-out`` / ``repro bench``);
* :mod:`repro.pipeline.replay` — artifact replay: scan a captured
  HAR/PCAP corpus on disk and feed it through the same engine;
* :mod:`repro.pipeline.diffaudit` — the full audit run: flows,
  classification, destination analysis, differential audit,
  linkability (steps 3–5).
"""

from repro.pipeline.corpus import (
    CorpusProcessor,
    ParsedTrace,
    parsed_trace_from_har,
    parsed_trace_from_mobile,
)
from repro.pipeline.dataset import DatasetSummary, ServiceDatasetStats
from repro.pipeline.diffaudit import DiffAudit, DiffAuditResult
from repro.pipeline.engine import (
    EXECUTOR_KINDS,
    AuditEngine,
    EngineOutput,
    PackedShardResult,
    ProcessPoolShardExecutor,
    SequentialExecutor,
    ShardResult,
    ShardTask,
    ThreadPoolShardExecutor,
    executor_for,
    generate_corpus_artifacts,
    pack_shard_result,
    process_shard,
)
from repro.pipeline.profile import (
    PROFILE_VERSION,
    StageTimer,
    profile_document,
    validate_profile,
    write_profile,
)
from repro.pipeline.replay import (
    ReplayCorpus,
    ReplayError,
    ReplayProvenance,
    TraceUnit,
    load_parsed_trace,
    merge_manifest_traces,
    read_manifest,
    replay_config,
    write_manifest,
)

__all__ = [
    "CorpusProcessor",
    "ParsedTrace",
    "parsed_trace_from_har",
    "parsed_trace_from_mobile",
    "DatasetSummary",
    "ServiceDatasetStats",
    "DiffAudit",
    "DiffAuditResult",
    "AuditEngine",
    "EngineOutput",
    "EXECUTOR_KINDS",
    "PackedShardResult",
    "ProcessPoolShardExecutor",
    "SequentialExecutor",
    "ShardResult",
    "ShardTask",
    "ThreadPoolShardExecutor",
    "executor_for",
    "generate_corpus_artifacts",
    "pack_shard_result",
    "process_shard",
    "PROFILE_VERSION",
    "StageTimer",
    "profile_document",
    "validate_profile",
    "write_profile",
    "ReplayCorpus",
    "ReplayError",
    "ReplayProvenance",
    "TraceUnit",
    "load_parsed_trace",
    "merge_manifest_traces",
    "read_manifest",
    "replay_config",
    "write_manifest",
]
