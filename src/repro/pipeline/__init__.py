"""End-to-end DiffAudit pipeline (paper Figure 1).

* :mod:`repro.pipeline.corpus` — generate traces, capture them into
  HAR/PCAP artifacts, and parse them back (steps 1–2);
* :mod:`repro.pipeline.dataset` — the Table 1 dataset summary;
* :mod:`repro.pipeline.diffaudit` — the full audit run: flows,
  classification, destination analysis, differential audit,
  linkability (steps 3–5).
"""

from repro.pipeline.corpus import CorpusProcessor, ParsedTrace
from repro.pipeline.dataset import DatasetSummary, ServiceDatasetStats
from repro.pipeline.diffaudit import DiffAudit, DiffAuditResult

__all__ = [
    "CorpusProcessor",
    "ParsedTrace",
    "DatasetSummary",
    "ServiceDatasetStats",
    "DiffAudit",
    "DiffAuditResult",
]
