"""End-to-end DiffAudit pipeline (paper Figure 1).

* :mod:`repro.pipeline.corpus` — generate traces, capture them into
  HAR/PCAP artifacts, and parse them back (steps 1–2);
* :mod:`repro.pipeline.dataset` — the Table 1 dataset summary;
* :mod:`repro.pipeline.engine` — the parallel sharded engine running
  steps 1–3 per service (sequential or process-pool executors);
* :mod:`repro.pipeline.replay` — artifact replay: scan a captured
  HAR/PCAP corpus on disk and feed it through the same engine;
* :mod:`repro.pipeline.diffaudit` — the full audit run: flows,
  classification, destination analysis, differential audit,
  linkability (steps 3–5).
"""

from repro.pipeline.corpus import (
    CorpusProcessor,
    ParsedTrace,
    parsed_trace_from_har,
    parsed_trace_from_mobile,
)
from repro.pipeline.dataset import DatasetSummary, ServiceDatasetStats
from repro.pipeline.diffaudit import DiffAudit, DiffAuditResult
from repro.pipeline.engine import (
    AuditEngine,
    EngineOutput,
    ProcessPoolShardExecutor,
    SequentialExecutor,
    ShardResult,
    ShardTask,
    executor_for,
    generate_corpus_artifacts,
    process_shard,
)
from repro.pipeline.replay import (
    ReplayCorpus,
    ReplayError,
    ReplayProvenance,
    TraceUnit,
    load_parsed_trace,
    merge_manifest_traces,
    read_manifest,
    replay_config,
    write_manifest,
)

__all__ = [
    "CorpusProcessor",
    "ParsedTrace",
    "parsed_trace_from_har",
    "parsed_trace_from_mobile",
    "DatasetSummary",
    "ServiceDatasetStats",
    "DiffAudit",
    "DiffAuditResult",
    "AuditEngine",
    "EngineOutput",
    "ProcessPoolShardExecutor",
    "SequentialExecutor",
    "ShardResult",
    "ShardTask",
    "executor_for",
    "generate_corpus_artifacts",
    "process_shard",
    "ReplayCorpus",
    "ReplayError",
    "ReplayProvenance",
    "TraceUnit",
    "load_parsed_trace",
    "merge_manifest_traces",
    "read_manifest",
    "replay_config",
    "write_manifest",
]
