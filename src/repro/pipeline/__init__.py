"""End-to-end DiffAudit pipeline (paper Figure 1).

* :mod:`repro.pipeline.corpus` — generate traces, capture them into
  HAR/PCAP artifacts, and parse them back (steps 1–2);
* :mod:`repro.pipeline.dataset` — the Table 1 dataset summary;
* :mod:`repro.pipeline.engine` — the parallel sharded engine running
  steps 1–3 per service (sequential or process-pool executors);
* :mod:`repro.pipeline.diffaudit` — the full audit run: flows,
  classification, destination analysis, differential audit,
  linkability (steps 3–5).
"""

from repro.pipeline.corpus import CorpusProcessor, ParsedTrace
from repro.pipeline.dataset import DatasetSummary, ServiceDatasetStats
from repro.pipeline.diffaudit import DiffAudit, DiffAuditResult
from repro.pipeline.engine import (
    AuditEngine,
    EngineOutput,
    ProcessPoolShardExecutor,
    SequentialExecutor,
    ShardResult,
    ShardTask,
    executor_for,
    process_shard,
)

__all__ = [
    "CorpusProcessor",
    "ParsedTrace",
    "DatasetSummary",
    "ServiceDatasetStats",
    "DiffAudit",
    "DiffAuditResult",
    "AuditEngine",
    "EngineOutput",
    "ProcessPoolShardExecutor",
    "SequentialExecutor",
    "ShardResult",
    "ShardTask",
    "executor_for",
    "process_shard",
]
